"""Tests for repro.storage.scaling."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.storage.scaling import FixedPointScaler, scale_to_int64


class TestFixedPointScaler:
    def test_integers_need_no_scaling(self):
        scaler = FixedPointScaler.fit(np.array([1.0, 2.0, 3.0]))
        assert scaler.decimals == 0
        assert scaler.factor == 1

    def test_two_decimal_prices(self):
        values = np.array([12.34, 0.99, 100.00])
        scaler = FixedPointScaler.fit(values)
        assert scaler.decimals == 2
        assert scaler.transform(values).tolist() == [1234, 99, 10000]

    def test_smallest_power_of_ten_chosen(self):
        scaler = FixedPointScaler.fit(np.array([0.5, 1.5]))
        assert scaler.decimals == 1

    def test_roundtrip(self):
        values = np.array([3.14, 2.72, 0.01])
        scaler = FixedPointScaler.fit(values)
        assert np.allclose(scaler.inverse(scaler.transform(values)), values)

    def test_transform_scalar(self):
        scaler = FixedPointScaler.fit(np.array([1.25]))
        assert scaler.transform_scalar(2.5) == 250

    def test_non_finite_rejected(self):
        with pytest.raises(SchemaError):
            FixedPointScaler.fit(np.array([1.0, float("inf")]))

    def test_too_many_decimals_rejected(self):
        with pytest.raises(SchemaError):
            FixedPointScaler.fit(np.array([0.1234567891234]))

    def test_empty_array(self):
        scaler = FixedPointScaler.fit(np.array([]))
        assert scaler.decimals == 0


class TestScaleToInt64:
    def test_returns_scaler_and_values(self):
        scaled, scaler = scale_to_int64(np.array([1.5, 2.5]))
        assert scaled.dtype == np.int64
        assert scaled.tolist() == [15, 25]
        assert scaler.decimals == 1
