"""Tests for repro.core.skeleton (partitioning strategies and their restrictions)."""

import pytest

from repro.common.errors import OptimizationError
from repro.core.skeleton import (
    ConditionalCDFStrategy,
    FunctionalMappingStrategy,
    IndependentCDFStrategy,
    Skeleton,
)


class TestSkeletonValidation:
    def test_all_independent(self):
        skeleton = Skeleton.all_independent(["x", "y", "z"])
        assert skeleton.grid_dimensions == ["x", "y", "z"]
        assert skeleton.mapped_dimensions == []

    def test_paper_example_skeleton(self):
        # [X, Y|X, Z] from Table 2.
        skeleton = Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": ConditionalCDFStrategy(base="x"),
                "z": IndependentCDFStrategy(),
            }
        )
        assert skeleton.num_conditional_cdfs == 1
        assert skeleton.grid_dimensions == ["x", "y", "z"]

    def test_mapping_removes_dimension_from_grid(self):
        skeleton = Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": FunctionalMappingStrategy(target="x"),
            }
        )
        assert skeleton.grid_dimensions == ["x"]
        assert skeleton.mapped_dimensions == ["y"]
        assert skeleton.num_functional_mappings == 1

    def test_target_must_not_be_mapped(self):
        # [X->Z, Y|X, Z] style violation: X is referenced but not independent.
        with pytest.raises(OptimizationError):
            Skeleton(
                {
                    "x": FunctionalMappingStrategy(target="z"),
                    "y": ConditionalCDFStrategy(base="x"),
                    "z": IndependentCDFStrategy(),
                }
            )

    def test_base_must_not_be_dependent(self):
        with pytest.raises(OptimizationError):
            Skeleton(
                {
                    "x": ConditionalCDFStrategy(base="y"),
                    "y": ConditionalCDFStrategy(base="x"),
                }
            )

    def test_self_reference_rejected(self):
        with pytest.raises(OptimizationError):
            Skeleton({"x": FunctionalMappingStrategy(target="x")})

    def test_unknown_reference_rejected(self):
        with pytest.raises(OptimizationError):
            Skeleton({"x": ConditionalCDFStrategy(base="missing")})

    def test_strategy_for_unknown_dimension(self):
        skeleton = Skeleton.all_independent(["x"])
        with pytest.raises(OptimizationError):
            skeleton.strategy_for("y")


class TestSkeletonOperations:
    def test_describe_matches_table2_notation(self):
        skeleton = Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": ConditionalCDFStrategy(base="x"),
                "z": FunctionalMappingStrategy(target="x"),
            }
        )
        description = skeleton.describe()
        assert "y|x" in description and "z->x" in description

    def test_replace(self):
        skeleton = Skeleton.all_independent(["x", "y"])
        replaced = skeleton.replace("y", ConditionalCDFStrategy(base="x"))
        assert replaced != skeleton
        assert isinstance(skeleton.strategy_for("y"), IndependentCDFStrategy)

    def test_equality_and_hash(self):
        a = Skeleton.all_independent(["x", "y"])
        b = Skeleton.all_independent(["x", "y"])
        assert a == b and hash(a) == hash(b)
        assert a != a.replace("y", FunctionalMappingStrategy(target="x"))

    def test_candidate_strategies_respect_restrictions(self):
        skeleton = Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": FunctionalMappingStrategy(target="x"),
                "z": IndependentCDFStrategy(),
            }
        )
        # Candidates for z may reference x or z's other independent partner,
        # but never the mapped dimension y.
        candidates = skeleton.candidate_strategies("z")
        referenced = {c.references for c in candidates if c.references}
        assert "y" not in referenced
        assert "x" in referenced


class TestOneHopNeighbours:
    def test_all_neighbours_valid_and_distinct(self):
        skeleton = Skeleton.all_independent(["x", "y", "z"])
        neighbours = list(skeleton.one_hop_neighbours())
        assert len(neighbours) == len(set(neighbours))
        assert skeleton not in neighbours
        assert len(neighbours) > 0

    def test_neighbour_count_for_three_independent_dims(self):
        # Each of 3 dims can switch to 2 strategies × 2 partners = 4 options.
        skeleton = Skeleton.all_independent(["x", "y", "z"])
        assert len(list(skeleton.one_hop_neighbours())) == 12

    def test_neighbours_differ_in_exactly_one_dimension(self):
        skeleton = Skeleton.all_independent(["x", "y", "z"])
        for neighbour in skeleton.one_hop_neighbours():
            differences = [
                dim
                for dim in skeleton.dimensions
                if skeleton.strategy_for(dim) != neighbour.strategy_for(dim)
            ]
            assert len(differences) == 1

    def test_invalid_neighbours_skipped(self):
        # When y is mapped to x, x cannot itself become mapped or conditional.
        skeleton = Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": FunctionalMappingStrategy(target="x"),
            }
        )
        for neighbour in skeleton.one_hop_neighbours():
            # Every yielded neighbour must satisfy the validation rules.
            assert isinstance(neighbour, Skeleton)
