"""Tests for repro.core.drift (workload-shift detection, §8 extension)."""

import numpy as np
import pytest

from repro.core.drift import WorkloadDriftDetector
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_arrays(
        "t",
        {"time": rng.integers(0, 100_000, 20_000), "load": rng.integers(0, 1_000, 20_000)},
    )


def recent_time_queries(count: int, seed: int) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        low = int(rng.integers(85_000, 98_000))
        queries.append(Query.from_ranges({"time": (low, low + 2_000)}, query_type=0))
    return queries


def high_load_queries(count: int, seed: int) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        low = int(rng.integers(850, 950))
        queries.append(Query.from_ranges({"load": (low, low + 50)}, query_type=1))
    return queries


@pytest.fixture(scope="module")
def detector(table) -> WorkloadDriftDetector:
    workload = Workload(recent_time_queries(50, 1) + high_load_queries(50, 2))
    return WorkloadDriftDetector().fit(table, workload)


class TestNoDrift:
    def test_same_workload_is_not_drift(self, detector):
        report = detector.observe(recent_time_queries(25, 3) + high_load_queries(25, 4))
        assert not report.drifted
        assert report.new_type_fraction < 0.25
        assert "no significant" in report.describe()

    def test_empty_window(self, detector):
        report = detector.observe([])
        assert not report.drifted


class TestDriftDetection:
    def test_new_query_type_detected(self, detector):
        rng = np.random.default_rng(5)
        novel = [
            Query.from_ranges(
                {"time": (int(low := rng.integers(0, 5_000)), int(low) + 40_000)}
            )
            for _ in range(40)
        ]
        report = detector.observe(novel)
        assert report.drifted
        assert report.new_type_fraction > 0.5

    def test_disappeared_type_detected(self, detector):
        report = detector.observe(recent_time_queries(50, 6))
        assert 1 in report.disappeared_types
        assert report.drifted

    def test_frequency_shift_detected(self, detector):
        report = detector.observe(recent_time_queries(45, 7) + high_load_queries(5, 8))
        assert report.frequency_shift > 0.3
        assert report.drifted

    def test_describe_mentions_reason(self, detector):
        report = detector.observe(recent_time_queries(50, 9))
        assert "disappeared" in report.describe()


class TestFittingContract:
    def test_unfitted_detector_rejected(self):
        with pytest.raises(ValueError):
            WorkloadDriftDetector().observe([Query.from_ranges({"time": (0, 1)})])

    def test_empty_workload_rejected(self, table):
        with pytest.raises(ValueError):
            WorkloadDriftDetector().fit(table, Workload([]))

    def test_unlabelled_workload_is_clustered_automatically(self, table):
        workload = Workload(
            [q.with_type(None) if False else Query(q.predicates) for q in recent_time_queries(30, 10)]
        )
        detector = WorkloadDriftDetector().fit(table, workload)
        report = detector.observe(recent_time_queries(10, 11))
        assert not report.drifted
