"""Chaos tests for the sharded fan-out's fault isolation (repro.core.sharding).

Injected faults (repro.common.faults) drive every defense deterministically:
per-shard timeouts, bounded retry, circuit breakers, and the strict/degraded
degradation modes — and the fault-free guarded path must stay bit-identical
to an unguarded fan-out.
"""

import time

import numpy as np
import pytest

from repro.common import faults
from repro.common.errors import InjectedFault, PartialResultError
from repro.common.faults import FaultPlan, FaultSpec
from repro.common.resilience import FaultPolicy, RetryPolicy
from repro.core.delta import DeltaBufferedIndex
from repro.core.sharding import ShardedIndex
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.storage.table import Table

CONFIG = TsunamiConfig(optimizer_iterations=1)


def tsunami_factory():
    return TsunamiIndex(CONFIG)


def delta_factory():
    return DeltaBufferedIndex(tsunami_factory, merge_threshold=1_000_000)


def make_table(num_rows: int = 3_000, seed: int = 23) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 10_000, num_rows)
    y = x * 2 + rng.integers(-40, 41, num_rows)
    z = rng.integers(0, 1_000, num_rows)
    return Table.from_arrays("chaos", {"x": x, "y": y, "z": z})


def make_queries() -> list[Query]:
    """Wide queries that hit every shard plus narrow ones that prune."""
    queries = [
        Query.from_ranges({"x": (0, 10_000)}),
        Query.from_ranges({"x": (0, 10_000)}, aggregate="sum", aggregate_column="y"),
        Query.from_ranges({"x": (0, 10_000)}, aggregate="avg", aggregate_column="y"),
        Query.from_ranges({"z": (0, 500)}),
    ]
    for low in (100, 4_000, 9_000):
        queries.append(Query.from_ranges({"x": (low, low + 400)}))
    return queries


def build_sharded(policy: FaultPolicy | None = None, parallelism: int = 0) -> ShardedIndex:
    table = make_table()
    index = ShardedIndex(
        tsunami_factory,
        num_shards=4,
        shard_dimension="x",
        parallelism=parallelism,
        fault_policy=policy,
    )
    index.build(table)
    return index


@pytest.fixture(scope="module")
def expected():
    """Ground-truth values for make_queries over make_table (full scan)."""
    table = make_table()
    return [execute_full_scan(table, query)[0] for query in make_queries()]


class TestFaultFreeParity:
    def test_guarded_path_is_bit_identical_without_faults(self, expected):
        """A non-default policy must not change fault-free results at all."""
        policy = FaultPolicy(
            shard_timeout_seconds=30.0,
            retry=RetryPolicy(max_retries=2, backoff_seconds=0.0),
            breaker_failure_threshold=2,
            degradation="degraded",
        )
        guarded = build_sharded(policy)
        plain = build_sharded(None)
        queries = make_queries()
        try:
            guarded_results = guarded.execute_batch(queries)
            plain_results = plain.execute_batch(queries)
        finally:
            guarded.close()
            plain.close()
        for got, reference, truth in zip(guarded_results, plain_results, expected):
            assert got.value == reference.value
            assert got.value == truth
        assert guarded.fault_stats.as_dict() == {
            "shard_failures": 0,
            "shard_timeouts": 0,
            "shard_retries": 0,
            "shards_skipped_open": 0,
            "partial_serves": 0,
        }


class TestStrictDegradation:
    def test_persistent_shard_failure_raises_partial_result_error(self):
        index = build_sharded(FaultPolicy(degradation="strict"))
        queries = make_queries()
        plan = FaultPlan([FaultSpec(site="shard.execute", key=1)])
        with faults.active(plan):
            with pytest.raises(PartialResultError) as excinfo:
                index.execute_batch(queries)
        error = excinfo.value
        assert error.failed_shards == [1]
        assert error.skipped_shards == []
        assert "InjectedFault" in error.failure_reasons[1]
        # Partial aggregates for the whole batch ride on the exception.
        assert len(error.partial_results) == len(queries)
        assert index.fault_stats.shard_failures == 1
        assert index.fault_stats.partial_serves == 1

    def test_execute_single_query_raises_with_partial(self):
        index = build_sharded(FaultPolicy(degradation="strict"))
        plan = FaultPlan([FaultSpec(site="shard.execute", key=0)])
        with faults.active(plan):
            with pytest.raises(PartialResultError) as excinfo:
                index.execute(Query.from_ranges({"x": (0, 10_000)}))
        assert len(excinfo.value.partial_results) == 1

    def test_explain_reports_last_failure_accounting(self):
        index = build_sharded(FaultPolicy(degradation="strict"))
        wide = Query.from_ranges({"x": (0, 10_000)})
        plan = FaultPlan([FaultSpec(site="shard.execute", key=2, max_triggers=1)])
        with faults.active(plan):
            with pytest.raises(PartialResultError):
                index.execute(wide)
        explanation = index.explain(wide)
        assert explanation["degradation"] == "strict"
        assert explanation["shards_failed"] == [2]
        assert explanation["shards_skipped_open"] == []
        assert len(explanation["circuit_breakers"]) == 4


class TestDegradedMode:
    def test_partial_answer_over_surviving_shards(self, expected):
        index = build_sharded(FaultPolicy(degradation="degraded"))
        queries = make_queries()
        plan = FaultPlan([FaultSpec(site="shard.execute", key=1)])
        with faults.active(plan):
            degraded = index.execute_batch(queries)
        # The count over the full domain is missing exactly shard 1's rows.
        missing = index.shards[1].table.num_rows
        assert degraded[0].value == expected[0] - missing
        assert index.fault_stats.partial_serves == 1
        assert index.explain(queries[0])["shards_failed"] == [1]
        # Once the fault clears, answers return to exact.
        recovered = index.execute_batch(queries)
        for got, truth in zip(recovered, expected):
            assert got.value == truth
        assert index.explain(queries[0])["shards_failed"] == []

    def test_describe_carries_fault_stats_and_breakers(self):
        index = build_sharded(FaultPolicy(degradation="degraded"))
        plan = FaultPlan([FaultSpec(site="shard.execute", key=3, max_triggers=2)])
        with faults.active(plan):
            index.execute(Query.from_ranges({"x": (0, 10_000)}))
        info = index.describe()
        assert info["degradation"] == "degraded"
        assert info["fault_stats"]["shard_failures"] == 1
        assert len(info["circuit_breakers"]) == 4
        assert info["circuit_breakers"][3]["consecutive_failures"] == 1


class TestRetries:
    def test_transient_failure_is_absorbed_by_retry(self, expected):
        policy = FaultPolicy(
            retry=RetryPolicy(max_retries=2, backoff_seconds=0.001, seed=5),
            degradation="strict",
        )
        index = build_sharded(policy)
        queries = make_queries()
        plan = FaultPlan([FaultSpec(site="shard.execute", key=2, max_triggers=1)])
        with faults.active(plan):
            results = index.execute_batch(queries)  # must not raise
        for got, truth in zip(results, expected):
            assert got.value == truth
        assert index.fault_stats.shard_retries == 1
        assert index.fault_stats.shard_failures == 0
        # A retry-survived flake must not creep the breaker toward open.
        assert index.describe()["circuit_breakers"][2]["consecutive_failures"] == 0

    def test_retries_exhausted_counts_one_failure(self):
        policy = FaultPolicy(
            retry=RetryPolicy(max_retries=2, backoff_seconds=0.0),
            degradation="degraded",
        )
        index = build_sharded(policy)
        plan = FaultPlan([FaultSpec(site="shard.execute", key=0)])
        with faults.active(plan):
            index.execute(Query.from_ranges({"x": (0, 10_000)}))
        assert plan.injected("shard.execute") == 3  # initial try + 2 retries
        assert index.fault_stats.shard_retries == 2
        assert index.fault_stats.shard_failures == 1
        assert index.describe()["circuit_breakers"][0]["consecutive_failures"] == 1


class TestCircuitBreaker:
    def test_open_breaker_skips_without_executing_then_recovers(self, expected):
        policy = FaultPolicy(
            breaker_failure_threshold=2,
            breaker_cooldown_seconds=0.05,
            degradation="degraded",
        )
        index = build_sharded(policy)
        wide = Query.from_ranges({"x": (0, 10_000)})
        plan = FaultPlan([FaultSpec(site="shard.execute", key=1)])
        with faults.active(plan):
            index.execute(wide)
            index.execute(wide)
            assert index.explain(wide)["circuit_breakers"][1] == "open"
            executed_before_skip = plan.injected("shard.execute")
            index.execute(wide)  # breaker open: shard 1 never executed
            assert plan.injected("shard.execute") == executed_before_skip
        assert index.fault_stats.shards_skipped_open == 1
        assert index.explain(wide)["shards_skipped_open"] == [1]
        # Fault cleared and cooldown elapsed: the half-open probe succeeds,
        # the breaker closes, and answers return to exact.
        time.sleep(0.06)
        recovered = index.execute(wide)
        assert recovered.value == expected[0]
        assert index.explain(wide)["circuit_breakers"][1] == "closed"

    def test_strict_mode_reports_skipped_shards(self):
        policy = FaultPolicy(
            breaker_failure_threshold=1,
            breaker_cooldown_seconds=60.0,
            degradation="strict",
        )
        index = build_sharded(policy)
        wide = Query.from_ranges({"x": (0, 10_000)})
        plan = FaultPlan([FaultSpec(site="shard.execute", key=2, max_triggers=1)])
        with faults.active(plan):
            with pytest.raises(PartialResultError) as first:
                index.execute(wide)
            assert first.value.failed_shards == [2]
            with pytest.raises(PartialResultError) as second:
                index.execute(wide)
        assert second.value.failed_shards == []
        assert second.value.skipped_shards == [2]
        assert "CircuitOpenError" in second.value.failure_reasons[2]


class TestTimeouts:
    def test_hung_shard_is_timed_out_and_accounted(self, expected):
        policy = FaultPolicy(
            shard_timeout_seconds=0.2,
            degradation="degraded",
        )
        index = build_sharded(policy)
        wide = Query.from_ranges({"x": (0, 10_000)})
        plan = FaultPlan(
            [FaultSpec(site="shard.execute", key=0, kind="hang", delay_seconds=30.0)]
        )
        try:
            with faults.active(plan):
                start = time.monotonic()
                result = index.execute(wide)
                elapsed = time.monotonic() - start
            # Partial answer, delivered near the budget — not after 30s.
            assert elapsed < 5.0
            missing = index.shards[0].table.num_rows
            assert result.value == expected[0] - missing
            assert index.fault_stats.shard_timeouts == 1
            assert "ShardTimeoutError" in index._last_fan_out["failure_reasons"][0]
        finally:
            index.close()

    def test_timeout_forces_pool_even_when_serial(self):
        policy = FaultPolicy(shard_timeout_seconds=5.0)
        index = build_sharded(policy, parallelism=0)
        try:
            index.execute(Query.from_ranges({"x": (0, 10_000)}))
            assert index._pool is not None
        finally:
            index.close()


class TestMergeFaults:
    def test_shard_merge_site_fires_per_shard(self):
        table = make_table()
        index = ShardedIndex(delta_factory, num_shards=3, shard_dimension="x")
        index.build(table)
        index.insert({"x": 5, "y": 10, "z": 1})
        plan = FaultPlan([FaultSpec(site="shard.merge", key=1)])
        with faults.active(plan):
            with pytest.raises(InjectedFault):
                index.merge()
        # Shard 0 merged before the fault hit shard 1's call site.
        assert plan.injections[0].key == 1


class TestCloseSafety:
    def test_close_is_idempotent_and_index_survives(self):
        index = build_sharded(FaultPolicy(shard_timeout_seconds=5.0))
        wide = Query.from_ranges({"x": (0, 10_000)})
        first = index.execute(wide)
        index.close()
        index.close()  # idempotent
        again = index.execute(wide)  # pool lazily recreated
        assert again.value == first.value
        index.close()
