"""Tests for repro.query.selectivity."""

import numpy as np
import pytest

from repro.query.query import Query
from repro.query.selectivity import (
    average_dimension_selectivity,
    dimension_selectivity,
    query_selectivity,
    selectivity_vector,
)
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    return Table.from_arrays(
        "t", {"a": np.arange(100), "b": np.repeat(np.arange(10), 10)}
    )


class TestDimensionSelectivity:
    def test_exact_fraction(self, table):
        assert dimension_selectivity(table, "a", 0, 24) == pytest.approx(0.25)

    def test_no_match(self, table):
        assert dimension_selectivity(table, "a", 1000, 2000) == 0.0

    def test_full_domain(self, table):
        assert dimension_selectivity(table, "a", 0, 99) == 1.0


class TestQuerySelectivity:
    def test_conjunction(self, table):
        query = Query.from_ranges({"a": (0, 49), "b": (0, 4)})
        assert query_selectivity(table, query) == pytest.approx(0.5)

    def test_empty_query_selects_all(self, table):
        assert query_selectivity(table, Query(predicates=())) == 1.0

    def test_vector_per_dimension(self, table):
        query = Query.from_ranges({"a": (0, 9), "b": (0, 0)})
        vector = selectivity_vector(table, query)
        assert vector["a"] == pytest.approx(0.10)
        assert vector["b"] == pytest.approx(0.10)


class TestAverageDimensionSelectivity:
    def test_unfiltered_counts_as_one(self, table):
        queries = [Query.from_ranges({"a": (0, 9)}), Query.from_ranges({"b": (0, 0)})]
        average = average_dimension_selectivity(table, queries, "a")
        assert average == pytest.approx((0.1 + 1.0) / 2)

    def test_empty_queries(self, table):
        assert average_dimension_selectivity(table, [], "a") == 1.0
