"""Tests for repro.common.rng."""

import numpy as np
import pytest

from repro.common.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_none_seed_is_deterministic(self):
        assert make_rng(None).integers(0, 1 << 30) == make_rng(None).integers(0, 1 << 30)

    def test_same_seed_same_stream(self):
        assert make_rng(5).integers(0, 1 << 30) == make_rng(5).integers(0, 1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(0, 1 << 30, 8)
        draws_b = make_rng(2).integers(0, 1 << 30, 8)
        assert not np.array_equal(draws_a, draws_b)

    def test_existing_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(7, 2)
        assert children[0].integers(0, 1 << 30) != children[1].integers(0, 1 << 30)

    def test_deterministic_across_calls(self):
        first = [g.integers(0, 1 << 30) for g in spawn_rngs(3, 3)]
        second = [g.integers(0, 1 << 30) for g in spawn_rngs(3, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert len(children) == 2
