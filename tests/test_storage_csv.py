"""Tests for CSV ingestion and export (repro.storage.csv_io)."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.table import Table

CSV_TEXT = """order_id,amount,mode,weight
1,100,air,1.5
2,250,ship,10.25
3,75,air,0.5
4,400,truck,3.0
"""


def write_sample(tmp_path, text: str = CSV_TEXT, name: str = "orders.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestReadCsv:
    def test_type_inference(self, tmp_path):
        table = read_csv(write_sample(tmp_path))
        assert table.name == "orders"
        assert table.num_rows == 4
        assert table.column("order_id").dictionary is None
        assert table.column("order_id").scaler is None
        assert table.column("mode").dictionary is not None
        assert table.column("weight").scaler is not None

    def test_values_round_trip_through_encodings(self, tmp_path):
        table = read_csv(write_sample(tmp_path))
        assert table.column("mode").to_user(int(table.values("mode")[1])) == "ship"
        assert table.column("weight").to_user(int(table.values("weight")[1])) == pytest.approx(10.25)
        assert int(table.values("amount")[3]) == 400

    def test_column_subset_and_order(self, tmp_path):
        table = read_csv(write_sample(tmp_path), columns=["mode", "amount"])
        assert table.column_names == ["mode", "amount"]

    def test_max_rows_caps_ingest(self, tmp_path):
        table = read_csv(write_sample(tmp_path), max_rows=2)
        assert table.num_rows == 2

    def test_custom_table_name(self, tmp_path):
        table = read_csv(write_sample(tmp_path), table_name="lineitem")
        assert table.name == "lineitem"

    def test_mixed_int_float_column_becomes_float(self, tmp_path):
        path = write_sample(tmp_path, "a,b\n1,2\n2,2.5\n", name="mixed.csv")
        table = read_csv(path)
        assert table.column("b").scaler is not None
        assert table.column("a").scaler is None

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            read_csv(tmp_path / "nope.csv")

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            read_csv(write_sample(tmp_path, "", name="empty.csv"))

    def test_header_only_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            read_csv(write_sample(tmp_path, "a,b\n", name="header.csv"))

    def test_duplicate_header_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            read_csv(write_sample(tmp_path, "a,a\n1,2\n", name="dup.csv"))

    def test_unknown_requested_column_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            read_csv(write_sample(tmp_path), columns=["amount", "missing"])

    def test_ragged_row_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            read_csv(write_sample(tmp_path, "a,b\n1,2\n3\n", name="ragged.csv"))


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        original = read_csv(write_sample(tmp_path))
        out_path = write_csv(original, tmp_path / "out" / "copy.csv")
        reloaded = read_csv(out_path)
        assert reloaded.num_rows == original.num_rows
        assert reloaded.column_names == original.column_names
        for name in original.column_names:
            first_original = original.column(name).to_user(int(original.values(name)[0]))
            first_reloaded = reloaded.column(name).to_user(int(reloaded.values(name)[0]))
            assert first_reloaded == pytest.approx(first_original)

    def test_clustered_order_is_preserved_in_file(self, tmp_path):
        rng = np.random.default_rng(0)
        table = Table.from_arrays(
            "t", {"x": rng.integers(0, 100, 50), "y": rng.integers(0, 100, 50)}
        )
        permutation = rng.permutation(50)
        table.reorder(permutation)
        path = write_csv(table, tmp_path / "clustered.csv")
        reloaded = read_csv(path)
        assert np.array_equal(reloaded.values("x"), table.values("x"))
