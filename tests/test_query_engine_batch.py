"""Tests for the batched execution pipeline and the QueryEngine entry point.

Batch execution must be a pure optimization: identical answers and identical
per-query work counters, in input order, for any batch size — with the plan
cache warming on repeats and invalidating when the layout is re-organized.
"""

import numpy as np
import pytest

from repro.baselines import FloodIndex
from repro.common.errors import QueryError
from repro.core.tsunami import make_tsunami
from repro.query.engine import QueryEngine, execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


def make_table(num_rows: int = 4000, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 10_000, num_rows)
    y = x * 2 + rng.integers(-40, 41, num_rows)
    z = rng.integers(0, 500, num_rows)
    return Table.from_arrays("batch", {"x": x, "y": y, "z": z})


def make_workload(num_queries: int = 30, seed: int = 1) -> Workload:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        low = int(rng.integers(0, 9_000))
        queries.append(
            Query.from_ranges(
                {"x": (low, low + 800), "z": (0, int(rng.integers(50, 400)))}
            )
        )
    return Workload(queries, name="batch")


@pytest.fixture()
def built_tsunami():
    table = make_table()
    workload = make_workload()
    index = make_tsunami(optimizer_iterations=2)
    index.build(table, workload)
    return table, workload, index


class TestExecuteBatchOrdering:
    def test_batch_matches_single_in_order(self, built_tsunami):
        _, workload, index = built_tsunami
        queries = list(workload)
        single = [index.execute(query) for query in queries]
        batched = index.execute_batch(queries)
        assert len(batched) == len(single)
        for one, many in zip(single, batched):
            assert one.value == many.value
            assert one.stats.points_scanned == many.stats.points_scanned
            assert one.stats.cell_ranges == many.stats.cell_ranges
            assert one.stats.rows_matched == many.stats.rows_matched

    def test_batch_with_duplicates_preserves_positions(self, built_tsunami):
        _, workload, index = built_tsunami
        queries = [workload[0], workload[1], workload[0], workload[2], workload[0]]
        batched = index.execute_batch(queries)
        assert batched[0].value == batched[2].value == batched[4].value
        assert batched[1].value == index.execute(workload[1]).value

    def test_empty_batch(self, built_tsunami):
        _, _, index = built_tsunami
        assert index.execute_batch([]) == []

    def test_baseline_index_inherits_batch_path(self):
        table = make_table(seed=5)
        workload = make_workload(seed=6)
        index = FloodIndex()
        index.build(table, workload)
        queries = list(workload)[:10]
        single = [index.execute(query).value for query in queries]
        batched = [result.value for result in index.execute_batch(queries)]
        assert batched == single


class TestQueryEngine:
    def test_requires_index_or_table(self):
        with pytest.raises(QueryError):
            QueryEngine()

    def test_rejects_unbuilt_index(self):
        with pytest.raises(QueryError):
            QueryEngine(index=make_tsunami())

    def test_full_scan_fallback(self):
        table = make_table(seed=7)
        engine = QueryEngine(table=table)
        query = Query.from_ranges({"x": (0, 4_000)})
        expected, _ = execute_full_scan(table, query)
        assert engine.run(query).value == expected
        assert [r.value for r in engine.run_batch([query, query])] == [expected] * 2

    def test_run_batch_chunks_match_single(self, built_tsunami):
        _, workload, index = built_tsunami
        engine = QueryEngine(index=index)
        queries = list(workload)
        expected = [engine.run(query).value for query in queries]
        for batch_size in (1, 7, None):
            values = [r.value for r in engine.run_batch(queries, batch_size=batch_size)]
            assert values == expected

    def test_invalid_batch_size_rejected(self, built_tsunami):
        _, workload, index = built_tsunami
        with pytest.raises(QueryError):
            QueryEngine(index=index).run_batch(list(workload), batch_size=0)

    def test_full_scan_fallback_reuses_one_executor(self, monkeypatch):
        # The index-less engine used to construct a fresh ScanExecutor on
        # every run() call; it must allocate exactly one per engine instead.
        import repro.query.engine as engine_module

        constructed = []
        real_executor = engine_module.ScanExecutor

        class CountingExecutor(real_executor):
            def __init__(self, table):
                constructed.append(table)
                super().__init__(table)

        monkeypatch.setattr(engine_module, "ScanExecutor", CountingExecutor)
        table = make_table(seed=7)
        engine = QueryEngine(table=table)
        queries = [Query.from_ranges({"x": (0, i * 500)}) for i in range(1, 6)]
        for query in queries:
            engine.run(query)
        engine.run_batch(queries)
        assert len(constructed) == 1

    def test_indexed_engine_skips_fallback_executor(self, built_tsunami):
        _, _, index = built_tsunami
        engine = QueryEngine(index=index)
        assert engine._scan_executor is None


class TestPlanCacheLifecycle:
    def test_repeated_queries_hit_cache(self, built_tsunami):
        _, workload, index = built_tsunami
        queries = list(workload)
        index.execute_batch(queries)
        before = index.plan_cache_stats()
        index.execute_batch(queries)
        after = index.plan_cache_stats()
        assert after.hits > before.hits
        assert after.misses == before.misses  # second pass plans nothing anew

    def test_reoptimize_invalidates_cache(self, built_tsunami):
        _, workload, index = built_tsunami
        queries = list(workload)
        index.execute_batch(queries)
        assert index.plan_cache_entries() > 0
        index.reoptimize(workload)
        stats = index.plan_cache_stats()
        assert index.plan_cache_entries() == 0
        assert stats.hits == 0 and stats.misses == 0
        # Correctness after invalidation: answers still match full scans.
        table = index.table
        for query in queries[:5]:
            expected, _ = execute_full_scan(table, query)
            assert index.execute(query).value == expected

    def test_cache_disabled_by_config(self):
        table = make_table(seed=9)
        workload = make_workload(seed=10)
        index = make_tsunami(optimizer_iterations=2, plan_cache_entries=0)
        index.build(table, workload)
        index.execute_batch(list(workload))
        assert index.plan_cache_entries() == 0
        assert index.plan_cache_stats().misses == 0


class TestGridTreeBatchRouting:
    def test_regions_for_queries_matches_per_query(self, built_tsunami):
        _, workload, index = built_tsunami
        if index.grid_tree is None:
            pytest.skip("workload produced no grid tree")
        queries = list(workload)
        routed = index.grid_tree.regions_for_queries(queries)
        for query, nodes in zip(queries, routed):
            expected = index.grid_tree.regions_for_query(query)
            assert [n.region_id for n in nodes] == [n.region_id for n in expected]


class TestEngineWriteAndClose:
    def test_insert_many_forwards_to_updatable_index(self):
        from repro.core.delta import DeltaBufferedIndex

        table = make_table()
        workload = make_workload()
        index = DeltaBufferedIndex(
            lambda: make_tsunami(optimizer_iterations=1), merge_threshold=100_000
        )
        index.build(table, workload)
        engine = QueryEngine(index)
        probe = Query.from_ranges({"x": (500, 520)})
        before = engine.run(probe).value
        engine.insert({"x": 510, "y": 1020, "z": 3})
        engine.insert_many([{"x": 505, "y": 1010, "z": 4}] * 2)
        assert engine.run(probe).value == before + 3

    def test_insert_rejected_for_read_only_index(self, built_tsunami):
        _, _, index = built_tsunami
        with pytest.raises(QueryError):
            QueryEngine(index).insert_many([{"x": 1, "y": 2, "z": 3}])

    def test_insert_rejected_for_full_scan_fallback(self):
        engine = QueryEngine(table=make_table(num_rows=100))
        with pytest.raises(QueryError):
            engine.insert({"x": 1, "y": 2, "z": 3})

    def test_close_reaches_index_and_is_context_managed(self, built_tsunami):
        _, workload, index = built_tsunami
        closes = []
        index.close = lambda: closes.append(True)  # duck-typed hook
        try:
            with QueryEngine(index) as engine:
                engine.run(list(workload)[0])
            assert closes == [True]
        finally:
            del index.close

    def test_close_without_index_close_is_a_noop(self, built_tsunami):
        _, _, index = built_tsunami
        QueryEngine(index).close()  # TsunamiIndex has no close; must not raise
        QueryEngine(table=make_table(num_rows=50)).close()
