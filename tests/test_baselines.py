"""Tests for the baseline indexes (§6.1): correctness and per-index behaviour."""

import numpy as np
import pytest

from repro.baselines import (
    FloodIndex,
    FullScanIndex,
    HyperOctreeIndex,
    KdTreeIndex,
    SingleDimensionIndex,
    ZOrderIndex,
)
from repro.baselines.base import BuildReport, containment_exactness
from repro.common.errors import IndexBuildError
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table

INDEX_FACTORIES = {
    "full-scan": FullScanIndex,
    "single-dim": SingleDimensionIndex,
    "z-order": lambda: ZOrderIndex(page_size=256),
    "kd-tree": lambda: KdTreeIndex(page_size=512),
    "hyperoctree": lambda: HyperOctreeIndex(page_size=512),
    "flood": lambda: FloodIndex(optimizer_iterations=1, sample_rows=3_000),
}


def extra_queries(seed: int = 0) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(20):
        low_x = int(rng.integers(0, 9_000))
        low_y = int(rng.integers(0, 25_000))
        queries.append(
            Query.from_ranges({"x": (low_x, low_x + 700), "y": (low_y, low_y + 4_000)})
        )
    queries.append(Query.from_ranges({"c": (2, 2)}))
    queries.append(Query.from_ranges({"x": (0, 10_000), "z": (0, 0)}))
    queries.append(Query.from_ranges({"x": (90_000, 99_000)}))  # empty
    queries.append(Query(predicates=()))  # unfiltered
    return queries


class TestCorrectnessAgainstFullScan:
    @pytest.mark.parametrize("name", list(INDEX_FACTORIES))
    def test_workload_and_extra_queries(self, name, fresh_table, fresh_workload):
        index = INDEX_FACTORIES[name]()
        index.build(fresh_table, fresh_workload)
        for query in list(fresh_workload) + extra_queries():
            expected, _ = execute_full_scan(fresh_table, query)
            assert index.execute(query).value == expected, f"{name} wrong on {query}"

    @pytest.mark.parametrize("name", list(INDEX_FACTORIES))
    def test_sum_aggregation(self, name, fresh_table, fresh_workload):
        index = INDEX_FACTORIES[name]()
        index.build(fresh_table, fresh_workload)
        query = Query.from_ranges({"x": (0, 5_000)}, aggregate="sum", aggregate_column="z")
        expected, _ = execute_full_scan(fresh_table, query)
        assert index.execute(query).value == expected

    @pytest.mark.parametrize("name", list(INDEX_FACTORIES))
    def test_build_without_workload(self, name, fresh_table):
        index = INDEX_FACTORIES[name]()
        index.build(fresh_table, None)
        query = Query.from_ranges({"x": (1_000, 2_000)})
        expected, _ = execute_full_scan(fresh_table, query)
        assert index.execute(query).value == expected


class TestCommonContract:
    def test_empty_table_rejected(self):
        empty = Table.from_arrays("e", {"x": np.array([], dtype=np.int64)})
        with pytest.raises(IndexBuildError):
            KdTreeIndex().build(empty, None)

    def test_execute_before_build_raises(self):
        with pytest.raises(IndexBuildError):
            ZOrderIndex().execute(Query.from_ranges({"x": (0, 1)}))

    def test_execute_workload_accumulates_stats(self, fresh_table, fresh_workload):
        index = KdTreeIndex(page_size=512)
        index.build(fresh_table, fresh_workload)
        results, total = index.execute_workload(fresh_workload)
        assert len(results) == len(fresh_workload)
        assert total.points_scanned == sum(r.stats.points_scanned for r in results)

    def test_build_report_timings(self, fresh_table, fresh_workload):
        index = FloodIndex(optimizer_iterations=1, sample_rows=2_000)
        index.build(fresh_table, fresh_workload)
        report = index.build_report
        assert isinstance(report, BuildReport)
        assert report.optimize_seconds > 0
        assert report.total_seconds >= report.sort_seconds

    def test_describe_contains_name_and_size(self, fresh_table, fresh_workload):
        index = ZOrderIndex(page_size=256)
        index.build(fresh_table, fresh_workload)
        info = index.describe()
        assert info["name"] == "z-order"
        assert info["size_bytes"] == index.index_size_bytes()


class TestContainmentExactness:
    def test_contained_cell_is_exact(self):
        query = Query.from_ranges({"x": (0, 100)})
        assert containment_exactness({"x": (10, 90)}, query)

    def test_straddling_cell_is_not_exact(self):
        query = Query.from_ranges({"x": (0, 100)})
        assert not containment_exactness({"x": (50, 150)}, query)

    def test_unbounded_dimension_blocks_exactness(self):
        query = Query.from_ranges({"x": (0, 100), "y": (0, 10)})
        assert not containment_exactness({"x": (10, 90)}, query)


class TestSingleDimensionIndex:
    def test_picks_most_selective_dimension(self, fresh_table, fresh_workload):
        index = SingleDimensionIndex()
        index.build(fresh_table, fresh_workload)
        assert index.sort_dimension in fresh_table.column_names

    def test_explicit_dimension_respected(self, fresh_table, fresh_workload):
        index = SingleDimensionIndex(sort_dimension="z")
        index.build(fresh_table, fresh_workload)
        assert index.sort_dimension == "z"
        values = fresh_table.values("z")
        assert np.all(values[:-1] <= values[1:])

    def test_unknown_dimension_rejected(self, fresh_table):
        with pytest.raises(IndexBuildError):
            SingleDimensionIndex(sort_dimension="missing").build(fresh_table, None)

    def test_query_on_sort_dimension_scans_subset(self, fresh_table, fresh_workload):
        index = SingleDimensionIndex(sort_dimension="x")
        index.build(fresh_table, fresh_workload)
        result = index.execute(Query.from_ranges({"x": (0, 500)}))
        assert result.stats.points_scanned < fresh_table.num_rows / 4

    def test_query_off_sort_dimension_full_scans(self, fresh_table, fresh_workload):
        index = SingleDimensionIndex(sort_dimension="x")
        index.build(fresh_table, fresh_workload)
        result = index.execute(Query.from_ranges({"z": (0, 10)}))
        assert result.stats.points_scanned == fresh_table.num_rows


class TestZOrderIndex:
    def test_page_metadata_prunes(self, fresh_table, fresh_workload):
        index = ZOrderIndex(page_size=256)
        index.build(fresh_table, fresh_workload)
        result = index.execute(Query.from_ranges({"x": (0, 300), "y": (0, 1_000)}))
        assert result.stats.points_scanned < fresh_table.num_rows

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            ZOrderIndex(page_size=0)

    def test_unknown_dimension_rejected(self, fresh_table):
        with pytest.raises(IndexBuildError):
            ZOrderIndex(dimensions=["missing"]).build(fresh_table, None)

    def test_describe_page_count(self, fresh_table, fresh_workload):
        index = ZOrderIndex(page_size=500)
        index.build(fresh_table, fresh_workload)
        info = index.describe()
        assert info["num_pages"] == int(np.ceil(fresh_table.num_rows / 500))


class TestKdTreeIndex:
    def test_leaf_sizes_respect_page_size(self, fresh_table, fresh_workload):
        index = KdTreeIndex(page_size=400)
        index.build(fresh_table, fresh_workload)
        info = index.describe()
        assert info["num_leaves"] >= fresh_table.num_rows / 400 / 2

    def test_narrow_query_prunes(self, fresh_table, fresh_workload):
        index = KdTreeIndex(page_size=150)
        index.build(fresh_table, fresh_workload)
        result = index.execute(Query.from_ranges({"x": (100, 400)}))
        assert result.stats.points_scanned < fresh_table.num_rows / 2

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            KdTreeIndex(page_size=0)


class TestHyperOctreeIndex:
    def test_constant_column_does_not_recurse_forever(self):
        rng = np.random.default_rng(9)
        table = Table.from_arrays(
            "const", {"a": np.full(5_000, 7), "b": rng.integers(0, 100, 5_000)}
        )
        index = HyperOctreeIndex(page_size=128)
        index.build(table, None)
        query = Query.from_ranges({"b": (0, 10)})
        expected, _ = execute_full_scan(table, query)
        assert index.execute(query).value == expected

    def test_split_dimension_rotation(self, fresh_table, fresh_workload):
        index = HyperOctreeIndex(page_size=256, max_split_dimensions=2)
        index.build(fresh_table, fresh_workload)
        for query in list(fresh_workload)[:5]:
            expected, _ = execute_full_scan(fresh_table, query)
            assert index.execute(query).value == expected

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HyperOctreeIndex(page_size=0)
        with pytest.raises(ValueError):
            HyperOctreeIndex(max_split_dimensions=0)


class TestFloodIndex:
    def test_uses_all_independent_skeleton(self, fresh_table, fresh_workload):
        index = FloodIndex(optimizer_iterations=1, sample_rows=2_000)
        index.build(fresh_table, fresh_workload)
        assert index.grid is not None
        assert index.grid.skeleton.num_functional_mappings == 0
        assert index.grid.skeleton.num_conditional_cdfs == 0

    def test_workload_tunes_partitions_towards_filtered_dims(self, fresh_table):
        rng = np.random.default_rng(11)
        only_x = Workload(
            [
                Query.from_ranges({"x": (int(low := rng.integers(0, 9_000)), int(low) + 200)})
                for _ in range(40)
            ]
        )
        index = FloodIndex(optimizer_iterations=2, sample_rows=3_000)
        index.build(fresh_table, only_x)
        partitions = index.grid.config.partitions
        assert partitions["x"] >= max(partitions["z"], partitions["c"])

    def test_num_cells_reported(self, fresh_table, fresh_workload):
        index = FloodIndex(optimizer_iterations=1, sample_rows=2_000)
        index.build(fresh_table, fresh_workload)
        assert index.num_cells == index.grid.num_cells
        assert index.describe()["num_cells"] == index.num_cells
