"""Tests for the benchmark harness and report formatting."""

import pytest

from repro.baselines import KdTreeIndex, SingleDimensionIndex
from repro.bench.harness import (
    default_index_factories,
    expected_answers,
    learned_index_factories,
    measure_index,
    run_comparison,
    tune_page_size,
)
from repro.bench.report import format_series, format_table, relative_factors


class TestMeasureIndex:
    def test_measurement_fields(self, fresh_table, fresh_workload):
        measurement = measure_index(
            KdTreeIndex(page_size=512), fresh_table, fresh_workload, dataset_name="toy"
        )
        assert measurement.correct
        assert measurement.dataset == "toy"
        assert measurement.num_queries == len(fresh_workload)
        assert measurement.avg_query_seconds > 0
        assert measurement.queries_per_second > 0
        assert measurement.avg_points_scanned > 0
        assert measurement.index_size_bytes > 0

    def test_as_row_keys(self, fresh_table, fresh_workload):
        measurement = measure_index(
            SingleDimensionIndex(), fresh_table, fresh_workload, dataset_name="toy"
        )
        row = measurement.as_row()
        for key in ("index", "dataset", "queries/s", "index size (KiB)", "correct"):
            assert key in row

    def test_precomputed_expected_used(self, fresh_table, fresh_workload):
        expected = expected_answers(fresh_table, fresh_workload)
        measurement = measure_index(
            KdTreeIndex(page_size=512),
            fresh_table,
            fresh_workload,
            expected=expected,
        )
        assert measurement.correct

    def test_incorrect_expected_detected(self, fresh_table, fresh_workload):
        wrong = [-1.0] * len(fresh_workload)
        measurement = measure_index(
            KdTreeIndex(page_size=512), fresh_table, fresh_workload, expected=wrong
        )
        assert not measurement.correct


class TestRunComparison:
    def test_all_factories_measured(self, fresh_table, fresh_workload):
        factories = {
            "single-dim": SingleDimensionIndex,
            "kd-tree": lambda: KdTreeIndex(page_size=512),
        }
        measurements = run_comparison(fresh_table, fresh_workload, factories, dataset_name="toy")
        assert [m.index_name for m in measurements] == ["single-dim", "kd-tree"]
        assert all(m.correct for m in measurements)

    def test_default_factories_cover_paper_suite(self):
        names = set(default_index_factories())
        assert {"single-dim", "z-order", "hyperoctree", "kd-tree", "flood", "tsunami"} == names

    def test_learned_factories(self):
        assert set(learned_index_factories()) == {"flood", "tsunami"}


class TestTunePageSize:
    def test_returns_candidate(self, fresh_table, fresh_workload):
        best = tune_page_size(
            KdTreeIndex, fresh_table, fresh_workload, candidates=(256, 4096)
        )
        assert best in (256, 4096)


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "222" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_missing_key(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "b" in text

    def test_format_series(self):
        text = format_series("x", [1, 2], {"tsunami": [10.0, 20.0], "flood": [5.0, 8.0]})
        assert "tsunami" in text and "flood" in text
        assert len(text.splitlines()) == 4

    def test_relative_factors_higher_better(self):
        factors = relative_factors({"flood": 10.0, "tsunami": 30.0}, reference="flood")
        assert factors["tsunami"] == pytest.approx(3.0)
        assert factors["flood"] == pytest.approx(1.0)

    def test_relative_factors_lower_better(self):
        factors = relative_factors(
            {"flood": 100.0, "tsunami": 25.0}, reference="flood", higher_is_better=False
        )
        assert factors["tsunami"] == pytest.approx(4.0)

    def test_relative_factors_unknown_reference(self):
        with pytest.raises(KeyError):
            relative_factors({"a": 1.0}, reference="missing")
