"""Tests for repro.core.grid_tree."""

import numpy as np
import pytest

from repro.common.errors import IndexBuildError
from repro.core.grid_tree import GridTree, GridTreeConfig
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


def sales_table(num_rows: int = 10_000, seed: int = 0) -> Table:
    """The running example of Fig. 2: uniform points over (year, sales)."""
    rng = np.random.default_rng(seed)
    return Table.from_arrays(
        "sales",
        {
            "year": rng.integers(0, 1000, num_rows),  # scaled 2016..2020
            "sales": rng.integers(0, 10_000, num_rows),
        },
    )


def fig2_workload(seed: int = 1) -> Workload:
    """Qr filters broad year spans uniformly; Qg filters narrow spans over recent years."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(50):
        low = int(rng.integers(0, 750))
        queries.append(Query.from_ranges({"year": (low, low + 250)}, query_type=0))
    for _ in range(50):
        low = int(rng.integers(750, 980))
        queries.append(Query.from_ranges({"year": (low, low + 20)}, query_type=1))
    return Workload(queries, name="fig2")


class TestGridTreeConstruction:
    def test_splits_on_skewed_dimension(self):
        table = sales_table()
        tree = GridTree().fit(table, fig2_workload())
        assert tree.root is not None
        assert not tree.root.is_leaf
        assert tree.root.split_dimension == "year"

    def test_split_value_near_skew_boundary(self):
        # The narrow queries concentrate above year=750, so a split near there
        # should appear among the root's split values.
        table = sales_table()
        tree = GridTree().fit(table, fig2_workload())
        assert any(600 <= value <= 900 for value in tree.root.split_values)

    def test_zero_skew_workload_yields_single_region(self):
        # Every query covers the whole year domain, so the query PDF over year
        # is exactly uniform and no split can reduce skew.
        table = sales_table(seed=2)
        rng = np.random.default_rng(3)
        queries = []
        for _ in range(60):
            low = int(rng.integers(0, 9_000))
            queries.append(
                Query.from_ranges({"year": (0, 999), "sales": (low, low + 800)}, query_type=0)
            )
        tree = GridTree().fit(table, Workload(queries))
        assert tree.root.split_dimension != "year"

    def test_skewed_workload_yields_more_regions_than_broad_uniform(self):
        table_skewed = sales_table(seed=2)
        skewed_tree = GridTree().fit(table_skewed, fig2_workload(seed=30))
        table_uniform = sales_table(seed=2)
        rng = np.random.default_rng(3)
        broad = [
            Query.from_ranges({"year": (0, 999)}, query_type=0) for _ in range(60)
        ]
        uniform_tree = GridTree().fit(table_uniform, Workload(broad))
        assert uniform_tree.num_regions <= skewed_tree.num_regions

    def test_empty_table_rejected(self):
        empty = Table.from_arrays("e", {"a": np.array([], dtype=np.int64)})
        with pytest.raises(IndexBuildError):
            GridTree().fit(empty, fig2_workload())

    def test_region_count_bounded(self):
        # max_regions is a soft cap: branches already open when it binds may
        # each still contribute one leaf, so the guaranteed bound is
        # max_regions plus one leaf per open ancestor level/sibling.
        table = sales_table(seed=4)
        config = GridTreeConfig(max_regions=10)
        tree = GridTree(config).fit(table, fig2_workload(seed=5))
        assert tree.num_regions <= config.max_regions + config.max_depth * config.max_children

    def test_max_depth_respected(self):
        table = sales_table(seed=6)
        tree = GridTree(GridTreeConfig(max_depth=1)).fit(table, fig2_workload(seed=7))
        assert tree.depth <= 1

    def test_max_children_respected(self):
        table = sales_table(seed=8)
        tree = GridTree(GridTreeConfig(max_children=3)).fit(table, fig2_workload(seed=9))

        def check(node):
            assert len(node.children) <= 3
            for child in node.children:
                check(child)

        check(tree.root)

    def test_no_workload_queries_single_region(self):
        table = sales_table(seed=10)
        tree = GridTree().fit(table, Workload([]))
        assert tree.num_regions == 1


class TestRegionAssignment:
    def test_every_row_assigned_exactly_once(self):
        table = sales_table(seed=11)
        tree = GridTree().fit(table, fig2_workload(seed=12))
        regions = tree.assign_regions(table)
        assert regions.shape == (table.num_rows,)
        assert regions.min() >= 0
        assert regions.max() < tree.num_regions

    def test_region_sizes_match_leaf_counts(self):
        table = sales_table(seed=13)
        tree = GridTree().fit(table, fig2_workload(seed=14))
        regions = tree.assign_regions(table)
        counts = np.bincount(regions, minlength=tree.num_regions)
        for leaf in tree.leaves:
            assert counts[leaf.region_id] == leaf.num_points

    def test_rows_fall_inside_their_region_bounds(self):
        table = sales_table(seed=15)
        tree = GridTree().fit(table, fig2_workload(seed=16))
        regions = tree.assign_regions(table)
        for leaf in tree.leaves:
            rows = np.flatnonzero(regions == leaf.region_id)
            if len(rows) == 0:
                continue
            for dim, (low, high) in leaf.bounds.items():
                values = table.values(dim)[rows]
                assert values.min() >= low and values.max() < high


class TestRegionsForQuery:
    def test_covering_query_touches_all_regions(self):
        table = sales_table(seed=17)
        tree = GridTree().fit(table, fig2_workload(seed=18))
        everything = Query.from_ranges({"year": (0, 1000), "sales": (0, 10_000)})
        assert len(tree.regions_for_query(everything)) == tree.num_regions

    def test_narrow_query_touches_few_regions(self):
        table = sales_table(seed=19)
        tree = GridTree().fit(table, fig2_workload(seed=20))
        narrow = Query.from_ranges({"year": (990, 995)})
        assert len(tree.regions_for_query(narrow)) < tree.num_regions

    def test_returned_regions_actually_intersect(self):
        table = sales_table(seed=21)
        tree = GridTree().fit(table, fig2_workload(seed=22))
        query = Query.from_ranges({"year": (800, 900)})
        for node in tree.regions_for_query(query):
            low, high = node.bounds["year"]
            assert 800 < high and 900 >= low

    def test_all_matching_rows_covered_by_returned_regions(self):
        table = sales_table(seed=23)
        tree = GridTree().fit(table, fig2_workload(seed=24))
        regions = tree.assign_regions(table)
        query = Query.from_ranges({"year": (100, 400), "sales": (0, 2_000)})
        matching = (
            (table.values("year") >= 100)
            & (table.values("year") <= 400)
            & (table.values("sales") <= 2_000)
        )
        touched = {node.region_id for node in tree.regions_for_query(query)}
        assert set(np.unique(regions[matching])).issubset(touched)


class TestReporting:
    def test_describe_fields(self):
        table = sales_table(seed=25)
        tree = GridTree().fit(table, fig2_workload(seed=26))
        info = tree.describe()
        assert info["num_regions"] == tree.num_regions
        assert info["num_nodes"] >= info["num_regions"]
        assert info["min_points_per_region"] <= info["max_points_per_region"]

    def test_size_bytes_positive(self):
        table = sales_table(seed=27)
        tree = GridTree().fit(table, fig2_workload(seed=28))
        assert tree.size_bytes() > 0

    def test_unfitted_tree_raises(self):
        with pytest.raises(IndexBuildError):
            GridTree().describe()
