"""Shared fixtures for the test suite.

Fixtures are deliberately small (thousands of rows, dozens of queries) so the
whole suite runs in well under a minute; the benchmarks directory is where
larger scales live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common import faults
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A session-wide deterministic RNG for ad-hoc test data."""
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Fault injection never leaks across tests, even when one fails mid-plan."""
    yield
    faults.uninstall()


def _make_correlated_table(num_rows: int, seed: int) -> Table:
    generator = np.random.default_rng(seed)
    x = generator.integers(0, 10_000, num_rows)
    # y is tightly linearly correlated with x; z is independent; c is categorical.
    y = x * 3 + generator.integers(-50, 51, num_rows)
    z = generator.integers(0, 1_000, num_rows)
    c = generator.integers(0, 8, num_rows)
    return Table.from_arrays("corr", {"x": x, "y": y, "z": z, "c": c})


@pytest.fixture(scope="session")
def small_table() -> Table:
    """A 5k-row table with one tight correlation and one categorical column."""
    return _make_correlated_table(5_000, seed=7)


@pytest.fixture()
def fresh_table() -> Table:
    """A per-test copy of the small table (safe to reorder destructively)."""
    return _make_correlated_table(5_000, seed=7)


@pytest.fixture(scope="session")
def skewed_workload(small_table: Table) -> Workload:
    """A two-type skewed workload over the small table.

    Type 0 filters x tightly in the upper part of the domain plus z broadly;
    type 1 filters y (the correlated dimension) in the lower part of the
    domain.  This mirrors the running example of Fig. 2.
    """
    generator = np.random.default_rng(99)
    queries = []
    for _ in range(40):
        low = int(generator.integers(7_000, 9_500))
        queries.append(
            Query.from_ranges({"x": (low, low + 300), "z": (0, 400)}, query_type=0)
        )
    for _ in range(40):
        low = int(generator.integers(0, 8_000))
        queries.append(Query.from_ranges({"y": (low, low + 900)}, query_type=1))
    return Workload(queries, name="skewed")


@pytest.fixture()
def fresh_workload(skewed_workload: Workload) -> Workload:
    """A per-test workload identical to ``skewed_workload``."""
    return Workload(skewed_workload.queries, name="skewed")
