"""Tests for workload-aware categorical ordering (§8 extension, repro.core.categorical)."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.core.categorical import CategoricalReordering, co_access_counts
from repro.query.engine import execute_full_scan
from repro.query.predicates import EqualityPredicate
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table

#: Alphabetical order gives codes: air=0, mail=1, rail=2, ship=3, truck=4.
MODES = ["air", "mail", "rail", "ship", "truck"]


def categorical_table(num_rows: int = 2_000, seed: int = 5) -> Table:
    rng = np.random.default_rng(seed)
    modes = [MODES[i] for i in rng.integers(0, len(MODES), num_rows)]
    amount = rng.integers(0, 1_000, num_rows)
    return Table.from_dict("orders", {"mode": modes, "amount": amount})


def co_access_workload(table: Table) -> Workload:
    """Queries that always access {air, truck} together and {mail} alone."""
    air = table.column("mode").to_storage("air")
    truck = table.column("mode").to_storage("truck")
    mail = table.column("mode").to_storage("mail")
    queries = []
    for _ in range(20):
        # air..truck spans the full alphabetical code range [0, 4].
        queries.append(Query.from_ranges({"mode": (min(air, truck), max(air, truck))}))
    for _ in range(5):
        queries.append(Query.from_ranges({"mode": (mail, mail)}))
    return Workload(queries, name="modes")


class TestCoAccessCounts:
    def test_counts_match_constructed_workload(self):
        table = categorical_table()
        workload = co_access_workload(table)
        access, co_access = co_access_counts(table, "mode", workload)
        air = table.column("mode").to_storage("air")
        truck = table.column("mode").to_storage("truck")
        mail = table.column("mode").to_storage("mail")
        assert access[air] == 20  # mail-only queries do not touch air
        assert access[mail] == 25  # mail is inside the broad range too
        assert co_access[air, truck] == 20
        assert co_access[air, air] == 0  # diagonal cleared

    def test_queries_without_filter_are_ignored(self):
        table = categorical_table()
        workload = Workload([Query.from_ranges({"amount": (0, 100)})])
        access, co_access = co_access_counts(table, "mode", workload)
        assert access.sum() == 0
        assert co_access.sum() == 0

    def test_non_categorical_column_rejected(self):
        table = categorical_table()
        with pytest.raises(SchemaError):
            co_access_counts(table, "amount", Workload([]))


class TestReorderingFit:
    def test_hot_values_get_low_codes(self):
        table = categorical_table()
        workload = co_access_workload(table)
        air = table.column("mode").to_storage("air")
        reordering = CategoricalReordering.fit(table, "mode", workload)
        # air sits inside the hot co-accessed component, so it must receive a
        # lower code than the values only touched by the rare mail queries
        # that happen to span them.
        assert int(reordering.old_to_new[air]) < reordering.num_values - 1

    def test_mapping_is_a_permutation(self):
        table = categorical_table()
        reordering = CategoricalReordering.fit(table, "mode", co_access_workload(table))
        assert sorted(reordering.new_order.tolist()) == list(range(len(MODES)))
        assert sorted(reordering.old_to_new.tolist()) == list(range(len(MODES)))

    def test_empty_workload_gives_identity_like_order(self):
        table = categorical_table()
        reordering = CategoricalReordering.fit(table, "mode", Workload([]))
        assert reordering.num_values == len(MODES)
        assert sorted(reordering.new_order.tolist()) == list(range(len(MODES)))


class TestApplication:
    def test_apply_to_table_round_trips_user_values(self):
        table = categorical_table()
        reordering = CategoricalReordering.fit(table, "mode", co_access_workload(table))
        reordered = reordering.apply_to_table(table)
        original = [table.column("mode").to_user(int(v)) for v in table.values("mode")[:200]]
        rewritten = [
            reordered.column("mode").to_user(int(v)) for v in reordered.values("mode")[:200]
        ]
        assert original == rewritten

    def test_other_columns_are_untouched(self):
        table = categorical_table()
        reordering = CategoricalReordering.fit(table, "mode", co_access_workload(table))
        reordered = reordering.apply_to_table(table)
        assert np.array_equal(reordered.values("amount"), table.values("amount"))

    def test_rewritten_queries_preserve_answers(self):
        table = categorical_table()
        workload = co_access_workload(table)
        reordering = CategoricalReordering.fit(table, "mode", workload)
        reordered_table = reordering.apply_to_table(table)
        for query in list(workload)[:10]:
            expected, _ = execute_full_scan(table, query)
            rewritten = reordering.rewrite_query(query)
            actual, _ = execute_full_scan(reordered_table, rewritten)
            # Range rewrites may widen the scan but the verified COUNT must be
            # at least the original; equality rewrites must match exactly.
            assert actual >= expected

    def test_equality_rewrite_is_exact(self):
        table = categorical_table()
        workload = co_access_workload(table)
        reordering = CategoricalReordering.fit(table, "mode", workload)
        reordered_table = reordering.apply_to_table(table)
        code = table.column("mode").to_storage("rail")
        query = Query(predicates=(EqualityPredicate("mode", code),))
        expected, _ = execute_full_scan(table, query)
        actual, _ = execute_full_scan(reordered_table, reordering.rewrite_query(query))
        assert actual == expected

    def test_query_without_categorical_filter_is_unchanged(self):
        table = categorical_table()
        reordering = CategoricalReordering.fit(table, "mode", co_access_workload(table))
        query = Query.from_ranges({"amount": (10, 20)})
        assert reordering.rewrite_query(query) is query

    def test_rewrite_workload_preserves_length_and_name_suffix(self):
        table = categorical_table()
        workload = co_access_workload(table)
        reordering = CategoricalReordering.fit(table, "mode", workload)
        rewritten = reordering.rewrite_workload(workload)
        assert len(rewritten) == len(workload)
        assert rewritten.name.endswith("_reordered")

    def test_apply_to_table_rejects_non_categorical(self):
        table = categorical_table()
        reordering = CategoricalReordering.fit(table, "mode", co_access_workload(table))
        object.__setattr__(reordering, "dimension", "amount")
        with pytest.raises(SchemaError):
            reordering.apply_to_table(table)

    def test_describe_reports_moves(self):
        table = categorical_table()
        reordering = CategoricalReordering.fit(table, "mode", co_access_workload(table))
        info = reordering.describe()
        assert info["num_values"] == len(MODES)
        assert info["identity"] == reordering.is_identity()
