"""Tests for repro.query.workload."""

import numpy as np
import pytest

from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


@pytest.fixture()
def workload() -> Workload:
    queries = [
        Query.from_ranges({"a": (0, 10)}, query_type=0),
        Query.from_ranges({"a": (5, 20), "b": (0, 1)}, query_type=0),
        Query.from_ranges({"b": (3, 9)}, query_type=1),
        Query.from_ranges({"b": (4, 4)}, query_type=1),
    ]
    return Workload(queries, name="w")


@pytest.fixture()
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_arrays("t", {"a": rng.integers(0, 50, 500), "b": rng.integers(0, 10, 500)})


class TestWorkloadBasics:
    def test_len_iter_getitem(self, workload):
        assert len(workload) == 4
        assert list(workload)[0] is workload[0]

    def test_filtered_dimensions_order(self, workload):
        assert workload.filtered_dimensions() == ("a", "b")

    def test_query_types(self, workload):
        assert workload.query_types() == [0, 1]

    def test_by_type_groups(self, workload):
        groups = workload.by_type()
        assert len(groups[0]) == 2 and len(groups[1]) == 2

    def test_filter(self, workload):
        only_b = workload.filter(lambda q: q.filtered_dimensions == ("b",))
        assert len(only_b) == 2


class TestSampleAndSplit:
    def test_sample_size(self, workload):
        assert len(workload.sample(2, seed=0)) == 2

    def test_sample_larger_than_workload(self, workload):
        assert len(workload.sample(100, seed=0)) == 4

    def test_split_partitions_queries(self, workload):
        train, test = workload.split(0.5, seed=1)
        assert len(train) + len(test) == len(workload)
        assert len(train) >= 1

    def test_split_invalid_fraction(self, workload):
        with pytest.raises(ValueError):
            workload.split(1.5)

    def test_extend(self, workload):
        bigger = workload.extend([Query.from_ranges({"a": (0, 1)})])
        assert len(bigger) == 5
        assert len(workload) == 4  # original untouched


class TestStatistics:
    def test_statistics_fields(self, workload, table):
        stats = workload.statistics(table)
        assert stats.num_queries == 4
        assert stats.num_query_types == 2
        assert 0.0 <= stats.min_selectivity <= stats.avg_selectivity <= stats.max_selectivity <= 1.0
        assert "a" in stats.filtered_dimensions

    def test_empty_workload_statistics(self, table):
        stats = Workload([]).statistics(table)
        assert stats.num_queries == 0 and stats.num_query_types == 0

    def test_describe_is_string(self, workload, table):
        assert "queries" in workload.statistics(table).describe()
