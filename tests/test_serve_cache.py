"""Tests for the serving result cache and the micro-batching admission queue."""

import threading
import time

import pytest

from repro.baselines.base import QueryResult
from repro.common.errors import ServerClosedError, ServerOverloadedError, ServingError
from repro.query.query import Query
from repro.serve import MicroBatcher, ResultCache
from repro.storage.scan import ScanStats


def make_query(low: int = 0, high: int = 100) -> Query:
    return Query.from_ranges({"x": (low, high)})


def make_result(value: float, matched: int = 3) -> QueryResult:
    stats = ScanStats()
    stats.rows_matched = matched
    stats.points_scanned = matched * 2
    return QueryResult(value=value, stats=stats)


class TestResultCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_miss_then_hit(self):
        cache = ResultCache(8)
        query = make_query()
        assert cache.get(query) is None
        cache.put(query, make_result(7.0))
        hit = cache.get(query)
        assert hit is not None and hit.value == 7.0
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_hit_returns_independent_stats_copies(self):
        cache = ResultCache(8)
        query = make_query()
        original = make_result(7.0, matched=5)
        cache.put(query, original)
        original.stats.rows_matched = 999  # caller mutates its own copy
        first = cache.get(query)
        first.stats.rows_matched = 123  # and so does a cache client
        second = cache.get(query)
        assert first.stats.rows_matched == 123
        assert second.stats.rows_matched == 5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        a, b, c = make_query(0, 1), make_query(0, 2), make_query(0, 3)
        cache.put(a, make_result(1.0))
        cache.put(b, make_result(2.0))
        cache.get(a)  # a is now most recently used
        cache.put(c, make_result(3.0))  # evicts b
        assert cache.get(b) is None
        assert cache.get(a).value == 1.0
        assert cache.get(c).value == 3.0
        assert cache.stats.evictions == 1

    def test_invalidate_clears_entries_keeps_counters(self):
        cache = ResultCache(8)
        query = make_query()
        cache.put(query, make_result(7.0))
        assert cache.get(query) is not None
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get(query) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.hits == 1  # pre-invalidation hit survives

    def test_as_dict_serializable(self):
        import json

        cache = ResultCache(8)
        cache.get(make_query())
        json.dumps(cache.stats.as_dict())  # must not raise


class TestMicroBatcher:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ServingError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ServingError):
            MicroBatcher(max_delay_seconds=-0.1)
        with pytest.raises(ServingError):
            MicroBatcher(max_queue_depth=0)
        with pytest.raises(ServingError):
            MicroBatcher(idle_gap_seconds=0.0)

    def test_flush_on_size_does_not_wait_for_deadline(self):
        batcher = MicroBatcher(max_batch_size=3, max_delay_seconds=30.0)
        for item in ("a", "b", "c"):
            batcher.put(item)
        start = time.monotonic()
        assert batcher.take() == ["a", "b", "c"]
        assert time.monotonic() - start < 1.0  # did not wait the 30s window
        assert batcher.stats.flushes_on_size == 1

    def test_flush_on_deadline_with_partial_batch(self):
        batcher = MicroBatcher(max_batch_size=100, max_delay_seconds=0.01)
        batcher.put("only")
        assert batcher.take() == ["only"]
        assert batcher.stats.flushes_on_deadline == 1

    def test_idle_gap_flushes_before_deadline(self):
        batcher = MicroBatcher(
            max_batch_size=100, max_delay_seconds=30.0, idle_gap_seconds=0.005
        )
        batcher.put("lonely")
        start = time.monotonic()
        assert batcher.take() == ["lonely"]
        assert time.monotonic() - start < 1.0  # did not wait the 30s window
        assert batcher.stats.flushes_on_idle == 1
        assert batcher.stats.flushes_on_deadline == 0

    def test_idle_gap_keeps_collecting_while_arrivals_continue(self):
        batcher = MicroBatcher(
            max_batch_size=3, max_delay_seconds=30.0, idle_gap_seconds=0.2
        )

        def trickle():
            time.sleep(0.02)
            batcher.put("b")
            time.sleep(0.02)
            batcher.put("c")

        batcher.put("a")
        thread = threading.Thread(target=trickle)
        thread.start()
        assert batcher.take() == ["a", "b", "c"]  # gap never elapsed dry
        thread.join()
        assert batcher.stats.flushes_on_size == 1

    def test_overload_rejection_is_typed(self):
        batcher = MicroBatcher(max_batch_size=4, max_queue_depth=2)
        batcher.put("a")
        batcher.put("b")
        with pytest.raises(ServerOverloadedError):
            batcher.put("c")
        assert batcher.stats.items_rejected == 1
        assert batcher.stats.items_admitted == 2

    def test_close_drains_then_returns_none(self):
        batcher = MicroBatcher(max_batch_size=2, max_delay_seconds=30.0)
        for item in ("a", "b", "c"):
            batcher.put(item)
        batcher.close()
        with pytest.raises(ServerClosedError):
            batcher.put("d")
        assert batcher.take() == ["a", "b"]
        assert batcher.take() == ["c"]
        assert batcher.take() is None
        assert batcher.closed

    def test_close_unblocks_waiting_taker(self):
        batcher = MicroBatcher()
        seen: list = []

        def taker():
            seen.append(batcher.take())

        thread = threading.Thread(target=taker)
        thread.start()
        time.sleep(0.05)
        batcher.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert seen == [None]

    def test_concurrent_producers_all_admitted(self):
        batcher = MicroBatcher(max_batch_size=64, max_delay_seconds=0.005)
        total = 200

        def produce(offset: int):
            for i in range(total // 8):
                batcher.put(offset * 1000 + i)

        threads = [threading.Thread(target=produce, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batcher.close()
        drained: list = []
        while True:
            batch = batcher.take()
            if batch is None:
                break
            drained.extend(batch)
        assert len(drained) == total
        assert batcher.stats.items_admitted == total
        assert batcher.stats.largest_batch <= 64
