"""Tests for repro.storage.scan."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.storage.scan import RowRange, ScanExecutor, ScanStats, coalesce_ranges
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    return Table.from_arrays(
        "t",
        {
            "a": np.array([0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
            "b": np.array([5, 5, 5, 5, 5, 1, 1, 1, 1, 1]),
        },
    )


class TestRowRange:
    def test_length(self):
        assert len(RowRange(2, 7)) == 5

    def test_invalid_rejected(self):
        with pytest.raises(QueryError):
            RowRange(5, 2)
        with pytest.raises(QueryError):
            RowRange(-1, 2)


class TestCoalesceRanges:
    def test_adjacent_merge(self):
        merged = coalesce_ranges([RowRange(0, 5), RowRange(5, 10)])
        assert len(merged) == 1 and len(merged[0]) == 10

    def test_overlapping_merge(self):
        merged = coalesce_ranges([RowRange(0, 6), RowRange(4, 10)])
        assert merged == [RowRange(0, 10)]

    def test_gap_not_merged(self):
        merged = coalesce_ranges([RowRange(0, 3), RowRange(5, 8)])
        assert len(merged) == 2

    def test_exactness_boundary_not_merged(self):
        merged = coalesce_ranges([RowRange(0, 5, exact=True), RowRange(5, 10, exact=False)])
        assert len(merged) == 2

    def test_empty_ranges_dropped(self):
        assert coalesce_ranges([RowRange(3, 3)]) == []

    def test_unsorted_input(self):
        merged = coalesce_ranges([RowRange(5, 10), RowRange(0, 5)])
        assert merged == [RowRange(0, 10)]


class TestScanExecutor:
    def test_count_with_filter(self, table):
        executor = ScanExecutor(table)
        value, stats = executor.execute(
            [RowRange(0, 10)], {"a": (0, 4), "b": (5, 5)}, aggregate="count"
        )
        assert value == 5
        assert stats.points_scanned == 10
        assert stats.cell_ranges == 1
        assert stats.dims_accessed == 2

    def test_exact_range_skips_checks(self, table):
        executor = ScanExecutor(table)
        value, stats = executor.execute(
            [RowRange(0, 5, exact=True)], {"a": (100, 200)}, aggregate="count"
        )
        # The filter would reject everything, but exact means "pre-verified".
        assert value == 5
        assert stats.points_scanned == 0

    def test_sum(self, table):
        executor = ScanExecutor(table)
        value, _ = executor.execute(
            [RowRange(0, 10)], {"b": (5, 5)}, aggregate="sum", aggregate_column="a"
        )
        assert value == 0 + 1 + 2 + 3 + 4

    def test_avg_min_max(self, table):
        executor = ScanExecutor(table)
        avg, _ = executor.execute([RowRange(0, 10)], {}, "avg", "a")
        assert avg == pytest.approx(4.5)
        low, _ = executor.execute([RowRange(0, 10)], {}, "min", "a")
        high, _ = executor.execute([RowRange(0, 10)], {}, "max", "a")
        assert (low, high) == (0, 9)

    def test_empty_match_aggregates(self, table):
        executor = ScanExecutor(table)
        total, _ = executor.execute([RowRange(0, 10)], {"a": (100, 200)}, "sum", "b")
        assert total == 0.0
        avg, _ = executor.execute([RowRange(0, 10)], {"a": (100, 200)}, "avg", "b")
        assert np.isnan(avg)

    def test_sum_requires_column(self, table):
        with pytest.raises(QueryError):
            ScanExecutor(table).execute([RowRange(0, 10)], {}, aggregate="sum")

    def test_unknown_aggregate_rejected(self, table):
        with pytest.raises(QueryError):
            ScanExecutor(table).execute([RowRange(0, 10)], {}, aggregate="median")

    def test_out_of_bounds_range_rejected(self, table):
        with pytest.raises(QueryError):
            ScanExecutor(table).execute([RowRange(0, 11)], {}, aggregate="count")

    def test_multiple_ranges_counted_once_each(self, table):
        executor = ScanExecutor(table)
        value, stats = executor.execute(
            [RowRange(0, 3), RowRange(7, 10)], {"a": (0, 9)}, aggregate="count"
        )
        assert value == 6
        assert stats.cell_ranges == 2
        assert stats.points_scanned == 6


class TestScanStats:
    def test_merge_accumulates(self):
        total = ScanStats(points_scanned=5, cell_ranges=1, rows_matched=2, dims_accessed=2)
        total.merge(ScanStats(points_scanned=3, cell_ranges=2, rows_matched=1, dims_accessed=1))
        assert total.points_scanned == 8
        assert total.cell_ranges == 3
        assert total.rows_matched == 3

    def test_scan_work(self):
        stats = ScanStats(points_scanned=10, dims_accessed=3)
        assert stats.scan_work == 30
        assert ScanStats(points_scanned=10).scan_work == 10


class TestCoalesceSortedFastPath:
    def test_sorted_input_not_resorted(self):
        ranges = [RowRange(0, 3), RowRange(3, 6, exact=True), RowRange(8, 9)]
        assert coalesce_ranges(ranges) == [
            RowRange(0, 3),
            RowRange(3, 6, exact=True),
            RowRange(8, 9),
        ]

    def test_unsorted_input_still_sorted(self):
        merged = coalesce_ranges([RowRange(5, 10), RowRange(0, 5)])
        assert merged == [RowRange(0, 10)]

    def test_equal_starts_ordered_by_stop(self):
        merged = coalesce_ranges([RowRange(0, 8), RowRange(0, 3)])
        assert merged == [RowRange(0, 8)]

    def test_caller_list_not_mutated(self):
        ranges = [RowRange(5, 10), RowRange(0, 5)]
        coalesce_ranges(ranges)
        assert ranges == [RowRange(5, 10), RowRange(0, 5)]

    def test_row_range_uses_slots(self):
        with pytest.raises((AttributeError, TypeError)):
            object.__setattr__(RowRange(0, 1), "extra", 1)


class TestExecuteBatch:
    def test_matches_single_execution_in_order(self, table):
        executor = ScanExecutor(table)
        specs = [
            ([RowRange(0, 10)], {"a": (2, 7)}),
            ([RowRange(0, 5, exact=True)], {"a": (0, 4)}),
            ([RowRange(0, 10)], {"b": (5, 5)}),
            ([RowRange(0, 10)], {"a": (2, 7)}),  # duplicate of the first
        ]
        batched = executor.execute_batch(
            [ranges for ranges, _ in specs], [filters for _, filters in specs]
        )
        assert len(batched) == len(specs)
        for (ranges, filters), (value, stats) in zip(specs, batched):
            expected_value, expected_stats = executor.execute(ranges, filters)
            assert value == expected_value
            assert stats.points_scanned == expected_stats.points_scanned
            assert stats.cell_ranges == expected_stats.cell_ranges
            assert stats.rows_matched == expected_stats.rows_matched

    def test_duplicate_queries_report_independent_stats(self, table):
        executor = ScanExecutor(table)
        batched = executor.execute_batch(
            [[RowRange(0, 10)], [RowRange(0, 10)]],
            [{"a": (0, 9)}, {"a": (0, 9)}],
        )
        first, second = batched[0][1], batched[1][1]
        assert first is not second
        first.merge(second)
        assert second.points_scanned == 10  # merging one must not mutate the other

    def test_mixed_aggregates(self, table):
        executor = ScanExecutor(table)
        batched = executor.execute_batch(
            [[RowRange(0, 10)], [RowRange(0, 10)]],
            [{"a": (0, 4)}, {"a": (0, 4)}],
            aggregates=["count", "sum"],
            aggregate_columns=[None, "b"],
        )
        assert batched[0][0] == 5
        assert batched[1][0] == 25  # b is 5 for the first five rows

    def test_length_mismatch_rejected(self, table):
        executor = ScanExecutor(table)
        with pytest.raises(QueryError):
            executor.execute_batch([[RowRange(0, 1)]], [])

    def test_empty_batch(self, table):
        assert ScanExecutor(table).execute_batch([], []) == []
