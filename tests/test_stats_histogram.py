"""Tests for repro.stats.histogram."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.stats.histogram import EquiWidthHistogram, query_histogram


class TestEquiWidthHistogram:
    def test_from_values_bin_count(self):
        histogram = EquiWidthHistogram.from_values(np.arange(10_000), num_bins=128)
        assert histogram.num_bins == 128
        assert histogram.total == 10_000

    def test_few_unique_values_get_one_bin_each(self):
        values = np.array([1, 1, 2, 2, 2, 7])
        histogram = EquiWidthHistogram.from_values(values, num_bins=128)
        assert histogram.num_bins == 3
        assert histogram.counts.tolist() == [2, 3, 1]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram.from_values(np.array([]))

    def test_bin_of_clamps(self):
        histogram = EquiWidthHistogram.from_values(np.arange(100), num_bins=10)
        assert histogram.bin_of(-5) == 0
        assert histogram.bin_of(1_000) == 9

    def test_bin_range(self):
        histogram = EquiWidthHistogram(edges=np.array([0.0, 10.0, 20.0, 30.0]), counts=np.zeros(3))
        assert histogram.bin_range(5, 25) == (0, 3)

    def test_bin_range_invalid(self):
        histogram = EquiWidthHistogram(edges=np.array([0.0, 1.0]), counts=np.zeros(1))
        with pytest.raises(QueryError):
            histogram.bin_range(5, 1)

    def test_normalized_sums_to_one(self):
        histogram = EquiWidthHistogram.from_values(np.arange(100), num_bins=10)
        assert histogram.normalized().sum() == pytest.approx(1.0)

    def test_normalized_of_empty_mass_is_uniform(self):
        histogram = EquiWidthHistogram(edges=np.array([0.0, 1.0, 2.0]), counts=np.zeros(2))
        assert histogram.normalized().tolist() == [0.5, 0.5]

    def test_edges_counts_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram(edges=np.array([0.0, 1.0]), counts=np.zeros(3))


class TestQueryHistogram:
    def test_total_mass_equals_query_count(self):
        intervals = [(0, 10), (20, 50), (90, 99)]
        histogram = query_histogram(intervals, 0, 100, num_bins=10)
        assert histogram.total == pytest.approx(3.0)

    def test_mass_spread_over_intersecting_bins(self):
        histogram = query_histogram([(0, 19)], 0, 100, num_bins=10)
        # The query spans bins 0 and 1, contributing half a unit to each.
        assert histogram.counts[0] == pytest.approx(0.5)
        assert histogram.counts[1] == pytest.approx(0.5)
        assert histogram.counts[2:].sum() == 0

    def test_queries_outside_domain_ignored(self):
        histogram = query_histogram([(200, 300)], 0, 100, num_bins=10)
        assert histogram.total == 0.0

    def test_queries_clipped_to_domain(self):
        histogram = query_histogram([(-50, 9)], 0, 100, num_bins=10)
        assert histogram.counts[0] == pytest.approx(1.0)

    def test_custom_edges(self):
        edges = np.array([0.0, 50.0, 100.0])
        histogram = query_histogram([(0, 49)], 0, 100, edges=edges)
        assert histogram.num_bins == 2
        assert histogram.counts[0] == pytest.approx(1.0)

    def test_empty_domain_rejected(self):
        with pytest.raises(QueryError):
            query_histogram([(0, 1)], 10, 10)
