"""Tests for the scale-out serving layer (repro.core.sharding).

The sharded index is a pure serving optimization: for every aggregate, every
batch size, and every parallelism setting, its answers must be bit-identical
to the equivalent single index — including empty selections, queries pruned
down to a subset of shards, and shards holding pending (unmerged) inserts.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import (
    PartialAggregate,
    avg_as_sum,
    combine_partial_results,
)
from repro.common.errors import IndexBuildError, QueryError, SchemaError
from repro.core.delta import DeltaBufferedIndex
from repro.core.sharding import ShardedIndex, balanced_cuts
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine, execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import ScanStats
from repro.storage.table import Table

CONFIG = TsunamiConfig(optimizer_iterations=1)


def tsunami_factory():
    return TsunamiIndex(CONFIG)


def delta_factory():
    return DeltaBufferedIndex(tsunami_factory, merge_threshold=1_000_000)


def make_table(num_rows: int = 6_000, seed: int = 11) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 10_000, num_rows)
    y = x * 3 + rng.integers(-60, 61, num_rows)
    z = rng.integers(0, 1_000, num_rows)
    return Table.from_arrays("shardme", {"x": x, "y": y, "z": z})


def make_queries(seed: int = 12) -> list[Query]:
    """Every aggregate, narrow and wide selections, plus empty selections."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(24):
        low = int(rng.integers(0, 9_200))
        queries.append(
            Query.from_ranges({"x": (low, low + 600), "z": (0, int(rng.integers(100, 900)))})
        )
    for aggregate in ("count", "sum", "avg", "min", "max"):
        for _ in range(4):
            low = int(rng.integers(0, 8_500))
            queries.append(
                Query.from_ranges(
                    {"x": (low, low + int(rng.integers(200, 1_500)))},
                    aggregate=aggregate,
                    aggregate_column=None if aggregate == "count" else "y",
                )
            )
        # An empty selection per aggregate (outside the data domain).
        queries.append(
            Query.from_ranges(
                {"x": (50_000, 50_100)},
                aggregate=aggregate,
                aggregate_column=None if aggregate == "count" else "y",
            )
        )
    return queries


def make_workload(queries: list[Query]) -> Workload:
    return Workload([q for q in queries if q.aggregate == "count"], name="shard")


def assert_same_value(got: float, expected: float, context=None) -> None:
    if np.isnan(expected):
        assert np.isnan(got), context
    else:
        assert got == expected, context


@pytest.fixture()
def sharded_and_single():
    queries = make_queries()
    workload = make_workload(queries)
    single = tsunami_factory().build(make_table(), workload)
    sharded = ShardedIndex(tsunami_factory, num_shards=4, shard_dimension="x")
    sharded.build(make_table(), workload)
    return queries, single, sharded


class TestBalancedCuts:
    def test_uniform_values_balanced(self):
        values = np.arange(10_000)
        cuts = balanced_cuts(values, 4)
        assert len(cuts) == 3
        assigned = np.searchsorted(cuts, values, side="right")
        sizes = np.bincount(assigned)
        assert sizes.min() > 1_500

    def test_skewed_values_never_yield_empty_buckets(self):
        rng = np.random.default_rng(3)
        values = (rng.zipf(1.3, size=5_000) % 50).astype(np.int64)
        cuts = balanced_cuts(values, 8)
        assigned = np.searchsorted(cuts, values, side="right")
        sizes = np.bincount(assigned, minlength=len(cuts) + 1)
        assert (sizes > 0).all()

    def test_constant_values_collapse_to_one_bucket(self):
        cuts = balanced_cuts(np.full(100, 7, dtype=np.int64), 4)
        assert cuts == []

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(IndexBuildError):
            balanced_cuts(np.arange(10), 0)

    @given(
        values=st.lists(st.integers(min_value=-1_000, max_value=1_000), min_size=1, max_size=300),
        num_shards=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_cuts_partition_without_empty_buckets(self, values, num_shards):
        array = np.asarray(values, dtype=np.int64)
        cuts = balanced_cuts(array, num_shards)
        assert cuts == sorted(set(cuts))
        assert len(cuts) <= num_shards - 1
        assigned = np.searchsorted(cuts, array, side="right")
        sizes = np.bincount(assigned, minlength=len(cuts) + 1)
        assert (sizes > 0).all()


class TestCombinePartialResults:
    @staticmethod
    def partials_from_chunks(aggregate, chunks):
        """Reference partials: one per chunk, as an execution would report them."""
        partials = []
        for chunk in chunks:
            stats = ScanStats(points_scanned=len(chunk), rows_matched=len(chunk))
            if aggregate == "count":
                value = float(len(chunk))
            elif aggregate in ("sum", "avg"):
                value = float(np.sum(chunk)) if len(chunk) else 0.0
            elif aggregate == "min":
                value = float(np.min(chunk)) if len(chunk) else float("nan")
            else:
                value = float(np.max(chunk)) if len(chunk) else float("nan")
            partials.append(
                PartialAggregate(value=value, matched=len(chunk), stats=stats)
            )
        return partials

    @given(
        chunks=st.lists(
            st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=50),
            max_size=6,
        ),
        aggregate=st.sampled_from(["count", "sum", "avg", "min", "max"]),
    )
    @settings(max_examples=120, deadline=None)
    def test_combination_matches_unpartitioned_aggregate(self, chunks, aggregate):
        flat = np.asarray([v for chunk in chunks for v in chunk], dtype=np.int64)
        partials = self.partials_from_chunks(aggregate, chunks)
        result = combine_partial_results(aggregate, partials)
        if aggregate == "count":
            expected = float(len(flat))
        elif aggregate == "sum":
            expected = float(np.sum(flat)) if len(flat) else 0.0
        elif aggregate == "avg":
            expected = float(np.mean(flat)) if len(flat) else float("nan")
        elif aggregate == "min":
            expected = float(np.min(flat)) if len(flat) else float("nan")
        else:
            expected = float(np.max(flat)) if len(flat) else float("nan")
        assert_same_value(result.value, expected, (aggregate, chunks))
        assert result.stats.points_scanned == len(flat)

    def test_stats_merged_across_partials(self):
        partials = [
            PartialAggregate(1.0, 1, ScanStats(points_scanned=5, cell_ranges=2)),
            PartialAggregate(2.0, 2, ScanStats(points_scanned=7, cell_ranges=1)),
        ]
        result = combine_partial_results("sum", partials)
        assert result.value == 3.0
        assert result.stats.points_scanned == 12
        assert result.stats.cell_ranges == 3

    def test_no_partials_matches_empty_scan(self):
        assert combine_partial_results("count", []).value == 0.0
        assert combine_partial_results("sum", []).value == 0.0
        assert np.isnan(combine_partial_results("avg", []).value)
        assert np.isnan(combine_partial_results("min", []).value)
        assert np.isnan(combine_partial_results("max", []).value)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            combine_partial_results("median", [])

    def test_avg_as_sum_rewrites_only_avg(self):
        avg = Query.from_ranges({"x": (0, 10)}, aggregate="avg", aggregate_column="y")
        rewritten = avg_as_sum(avg)
        assert rewritten.aggregate == "sum"
        assert rewritten.aggregate_column == "y"
        assert rewritten.predicates == avg.predicates
        count = Query.from_ranges({"x": (0, 10)})
        assert avg_as_sum(count) is count


class TestShardedDifferential:
    def test_execute_matches_single_index(self, sharded_and_single):
        queries, single, sharded = sharded_and_single
        for query in queries:
            assert_same_value(
                sharded.execute(query).value, single.execute(query).value, query
            )

    def test_batch_matches_single_index_in_order(self, sharded_and_single):
        queries, single, sharded = sharded_and_single
        single_results = QueryEngine(single).run_batch(queries)
        sharded_results = QueryEngine(sharded).run_batch(queries)
        assert len(sharded_results) == len(queries)
        for one, many, query in zip(single_results, sharded_results, queries):
            assert_same_value(many.value, one.value, query)

    def test_batch_matches_per_query_execution(self, sharded_and_single):
        queries, _, sharded = sharded_and_single
        batched = sharded.execute_batch(queries)
        for query, result in zip(queries, batched):
            per_query = sharded.execute(query)
            assert_same_value(result.value, per_query.value, query)
            assert result.stats.points_scanned == per_query.stats.points_scanned

    def test_parallel_execution_identical_to_serial(self):
        queries = make_queries()
        workload = make_workload(queries)
        serial = ShardedIndex(tsunami_factory, num_shards=4, shard_dimension="x")
        serial.build(make_table(), workload)
        threaded = ShardedIndex(
            tsunami_factory, num_shards=4, shard_dimension="x", parallelism=4
        )
        threaded.build(make_table(), workload)
        for one, many in zip(threaded.execute_batch(queries), serial.execute_batch(queries)):
            assert_same_value(one.value, many.value)
            assert one.stats.points_scanned == many.stats.points_scanned

    def test_empty_batch(self, sharded_and_single):
        _, _, sharded = sharded_and_single
        assert sharded.execute_batch([]) == []

    def test_duplicate_queries_get_independent_stats(self, sharded_and_single):
        queries, _, sharded = sharded_and_single
        repeated = [queries[0]] * 3
        results = sharded.execute_batch(repeated)
        assert results[0].stats is not results[1].stats
        assert results[0].value == results[1].value == results[2].value


class TestShardPruning:
    def test_narrow_query_prunes_shards(self, sharded_and_single):
        _, _, sharded = sharded_and_single
        narrow = Query.from_ranges({"x": (0, 50)})
        assert sharded.shards_pruned(narrow) >= 2
        plan = sharded.explain(narrow)
        assert plan["shards_pruned"] == sharded.shards_pruned(narrow)
        assert plan["num_shards"] == 4

    def test_unfiltered_query_prunes_nothing(self, sharded_and_single):
        _, _, sharded = sharded_and_single
        assert sharded.shards_pruned(Query.from_ranges({})) == 0

    def test_pruned_query_still_correct(self, sharded_and_single):
        _, single, sharded = sharded_and_single
        narrow = Query.from_ranges({"x": (0, 50)}, aggregate="sum", aggregate_column="y")
        assert sharded.shards_pruned(narrow) > 0
        assert_same_value(sharded.execute(narrow).value, single.execute(narrow).value)

    def test_explain_aggregates_shard_plans(self, sharded_and_single):
        queries, _, sharded = sharded_and_single
        plan = sharded.explain(queries[0])
        assert plan["index"] == "sharded(tsunami)"
        assert plan["rows_to_scan"] == sum(
            sub["rows_to_scan"] for sub in plan["shard_plans"].values()
        )
        assert len(plan["shard_plans"]) == plan["num_shards"] - plan["shards_pruned"]


class TestShardedBuild:
    def test_partitioning_balances_rows(self, sharded_and_single):
        _, _, sharded = sharded_and_single
        rows = [shard.table.num_rows for shard in sharded.shards]
        assert len(rows) == 4
        assert sum(rows) == 6_000
        assert min(rows) > 6_000 // 8

    def test_auto_dimension_picks_most_filtered(self):
        queries = [Query.from_ranges({"z": (0, 100)}) for _ in range(5)]
        sharded = ShardedIndex(tsunami_factory, num_shards=2)
        sharded.build(make_table(num_rows=2_000), Workload(queries, name="z-only"))
        assert sharded.dimension == "z"

    def test_auto_dimension_without_workload_uses_first_column(self):
        sharded = ShardedIndex(tsunami_factory, num_shards=2)
        sharded.build(make_table(num_rows=2_000), None)
        assert sharded.dimension == "x"

    def test_unknown_dimension_rejected(self):
        sharded = ShardedIndex(tsunami_factory, num_shards=2, shard_dimension="nope")
        with pytest.raises(SchemaError):
            sharded.build(make_table(num_rows=500), None)

    def test_empty_table_rejected(self):
        table = Table.from_arrays("empty", {"x": np.empty(0, dtype=np.int64)})
        with pytest.raises(IndexBuildError):
            ShardedIndex(tsunami_factory).build(table, None)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(IndexBuildError):
            ShardedIndex(tsunami_factory, num_shards=0)
        with pytest.raises(IndexBuildError):
            ShardedIndex(tsunami_factory, parallelism=-1)

    def test_unbuilt_index_refuses_to_serve(self):
        sharded = ShardedIndex(tsunami_factory)
        assert not sharded.is_built
        with pytest.raises(IndexBuildError):
            sharded.execute(Query.from_ranges({"x": (0, 10)}))

    def test_describe_and_size(self, sharded_and_single):
        _, _, sharded = sharded_and_single
        info = sharded.describe()
        assert info["num_shards"] == 4
        assert info["shard_dimension"] == "x"
        assert len(info["shards"]) == 4
        assert sharded.index_size_bytes() > sum(
            0 for _ in sharded.shards
        )  # positive and well-defined
        assert sharded.index_size_bytes() >= sum(
            shard.index_size_bytes() for shard in sharded.shards
        )


class TestUpdatableShards:
    def insert_rows(self, count: int, seed: int = 21) -> list[dict]:
        rng = np.random.default_rng(seed)
        return [
            {
                "x": int(v),
                "y": int(v) * 3 + int(rng.integers(-60, 61)),
                "z": int(rng.integers(0, 1_000)),
            }
            for v in rng.integers(0, 10_000, count)
        ]

    @pytest.fixture()
    def updatable(self):
        queries = make_queries()
        sharded = ShardedIndex(delta_factory, num_shards=4, shard_dimension="x")
        sharded.build(make_table(), make_workload(queries))
        return queries, sharded

    def oracle_table(self, rows: list[dict]) -> Table:
        base = make_table()
        data = {
            name: np.concatenate(
                [base.values(name), np.asarray([row[name] for row in rows])]
            )
            for name in base.column_names
        }
        return Table.from_arrays("oracle", data)

    def test_inserts_route_to_owning_shards(self, updatable):
        _, sharded = updatable
        rows = self.insert_rows(400)
        sharded.insert_many(rows)
        assert sharded.num_pending == 400
        boundaries = sharded.boundaries
        for position, shard in enumerate(sharded.shards):
            # Shard i owns values in [boundaries[i-1], boundaries[i]).
            low = boundaries[position - 1] if position > 0 else None
            high = boundaries[position] if position < len(boundaries) else None
            pending = shard.buffer.column("x")
            if low is not None:
                assert (pending >= low).all()
            if high is not None:
                assert (pending < high).all()

    def test_queries_with_pending_match_full_scan(self, updatable):
        queries, sharded = updatable
        rows = self.insert_rows(500)
        sharded.insert_many(rows)
        oracle = self.oracle_table(rows)
        for query in queries:
            expected, _ = execute_full_scan(oracle, query)
            assert_same_value(sharded.execute(query).value, expected, query)

    def test_batch_with_pending_matches_per_query(self, updatable):
        queries, sharded = updatable
        sharded.insert_many(self.insert_rows(300))
        batched = sharded.execute_batch(queries)
        for query, result in zip(queries, batched):
            assert_same_value(result.value, sharded.execute(query).value, query)

    def test_pending_inserts_widen_the_pruning_box(self, updatable):
        _, sharded = updatable
        outside = Query.from_ranges({"x": (11_000, 12_000)})
        assert sharded.execute(outside).value == 0.0
        # The last shard owns everything above the top boundary; an insert out
        # there must not be lost to a stale bounding box.
        sharded.insert_many([{"x": 11_500, "y": 34_500, "z": 1}])
        assert sharded.execute(outside).value == 1.0

    def test_table_view_covers_merged_rows(self, updatable):
        # The logical table must not go stale once shards fold their buffers
        # in: the full-scan oracle over `sharded.table` has to keep agreeing
        # with the index after a merge.
        queries, sharded = updatable
        rows = self.insert_rows(150)
        sharded.insert_many(rows)
        assert sharded.table.num_rows == 6_000  # pending rows are not merged yet
        sharded.merge()
        assert sharded.table.num_rows == 6_150
        for query in queries[:8]:
            expected, _ = execute_full_scan(sharded.table, query)
            assert_same_value(sharded.execute(query).value, expected, query)

    def test_widened_box_cached_per_insert_batch(self, updatable):
        _, sharded = updatable
        sharded.insert_many(self.insert_rows(50))
        first = sharded._shard_box(0)
        assert sharded._shard_box(0) is first  # cached until the buffer changes
        sharded.insert_many(self.insert_rows(50, seed=22))
        assert sharded._shard_box(0) is not first

    def test_merge_folds_every_shard(self, updatable):
        queries, sharded = updatable
        rows = self.insert_rows(200)
        sharded.insert_many(rows)
        reports = sharded.merge()
        assert sharded.num_pending == 0
        assert sum(r.rows_merged for r in reports if r is not None) == 200
        oracle = self.oracle_table(rows)
        for query in queries[:10]:
            expected, _ = execute_full_scan(oracle, query)
            assert_same_value(sharded.execute(query).value, expected, query)

    def test_read_only_shards_reject_inserts(self, sharded_and_single=None):
        sharded = ShardedIndex(tsunami_factory, num_shards=2, shard_dimension="x")
        sharded.build(make_table(num_rows=1_000), None)
        with pytest.raises(IndexBuildError):
            sharded.insert_many([{"x": 1, "y": 3, "z": 5}])

    def test_insert_missing_shard_dimension_rejected(self, updatable):
        _, sharded = updatable
        with pytest.raises(SchemaError):
            sharded.insert_many([{"y": 3, "z": 5}])

    def test_bad_batch_rejected_atomically(self, updatable):
        # A conversion failure anywhere in the batch must not leave rows from
        # earlier shards half-inserted.
        _, sharded = updatable
        rows = [
            {"x": 10, "y": 30, "z": 5},           # would land in shard 0
            {"x": 9_999, "y": "bogus", "z": 5},   # fails conversion
        ]
        with pytest.raises(SchemaError):
            sharded.insert_many(rows)
        assert sharded.num_pending == 0


class TestPoolShutdown:
    def test_close_shuts_down_the_worker_pool(self):
        queries = make_queries()
        sharded = ShardedIndex(
            tsunami_factory, num_shards=4, shard_dimension="x", parallelism=4
        )
        sharded.build(make_table(), make_workload(queries))
        sharded.execute_batch(queries)  # spins up the lazy pool
        assert sharded._pool is not None
        worker_threads = [
            t for t in threading.enumerate() if t.name.startswith("shard")
        ]
        assert worker_threads
        sharded.close()
        assert sharded._pool is None
        for thread in worker_threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()

    def test_close_is_idempotent_and_index_stays_usable(self):
        queries = make_queries()
        sharded = ShardedIndex(
            tsunami_factory, num_shards=4, shard_dimension="x", parallelism=4
        )
        sharded.build(make_table(), make_workload(queries))
        before = [r.value for r in sharded.execute_batch(queries[:8])]
        sharded.close()
        sharded.close()  # idempotent, including with no pool ever created
        # The next threaded batch lazily recreates the pool.
        after = [r.value for r in sharded.execute_batch(queries[:8])]
        assert after == before
        assert sharded._pool is not None
        sharded.close()

    def test_context_manager_closes_pool(self):
        queries = make_queries()
        with ShardedIndex(
            tsunami_factory, num_shards=4, shard_dimension="x", parallelism=4
        ) as sharded:
            sharded.build(make_table(), make_workload(queries))
            sharded.execute_batch(queries)
        assert sharded._pool is None
