"""Tests for repro.stats.correlation."""

import numpy as np
import pytest

from repro.common.errors import IndexBuildError
from repro.stats.cdf import EmpiricalCDF
from repro.stats.correlation import (
    BoundedLinearModel,
    correlation_report,
    empty_cell_fraction,
    monotonic_correlation,
)


class TestBoundedLinearModel:
    def test_covering_guarantee(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 10_000, 5000)
        x = y * 3 + rng.integers(-100, 101, 5000)
        model = BoundedLinearModel.fit(mapped_values=y, target_values=x)
        # Every point with y in [lo, hi] must have x inside the mapped range.
        lo, hi = 2000, 3000
        mask = (y >= lo) & (y <= hi)
        x_lo, x_hi = model.map_range(lo, hi)
        assert x[mask].min() >= x_lo - 1e-6
        assert x[mask].max() <= x_hi + 1e-6

    def test_tight_correlation_small_error(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 100_000, 5000)
        x = y * 2 + rng.integers(-10, 11, 5000)
        model = BoundedLinearModel.fit(y, x)
        assert model.relative_error(float(x.max() - x.min())) < 0.01

    def test_uncorrelated_large_error(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 100_000, 5000)
        x = rng.integers(0, 100_000, 5000)
        model = BoundedLinearModel.fit(y, x)
        assert model.relative_error(float(x.max() - x.min())) > 0.5

    def test_map_range_with_negative_slope(self):
        y = np.arange(1000)
        x = 5000 - y
        model = BoundedLinearModel.fit(y, x)
        x_lo, x_hi = model.map_range(100, 200)
        assert x_lo <= 4800 and x_hi >= 4900

    def test_constant_mapped_dimension(self):
        model = BoundedLinearModel.fit(np.full(10, 3), np.arange(10))
        lo, hi = model.map_range(3, 3)
        assert lo <= 0 and hi >= 9

    def test_length_mismatch_rejected(self):
        with pytest.raises(IndexBuildError):
            BoundedLinearModel.fit(np.arange(3), np.arange(4))

    def test_empty_rejected(self):
        with pytest.raises(IndexBuildError):
            BoundedLinearModel.fit(np.array([]), np.array([]))

    def test_size_is_four_floats(self):
        model = BoundedLinearModel.fit(np.arange(10), np.arange(10))
        assert model.size_bytes() == 32


class TestMonotonicCorrelation:
    def test_perfect_monotone(self):
        x = np.arange(1000)
        assert monotonic_correlation(x, x * 7 + 3) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        x = np.arange(1000)
        assert monotonic_correlation(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(3)
        rho = monotonic_correlation(rng.normal(size=5000), rng.normal(size=5000))
        assert abs(rho) < 0.1

    def test_constant_input(self):
        assert monotonic_correlation(np.full(10, 1), np.arange(10)) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            monotonic_correlation(np.arange(3), np.arange(4))


class TestEmptyCellFraction:
    def test_correlated_data_leaves_empty_cells(self):
        rng = np.random.default_rng(4)
        x = rng.integers(0, 100_000, 20_000)
        y = x + rng.integers(-100, 101, 20_000)
        x_parts = EmpiricalCDF(x).partitions_of(x, 16)
        y_parts = EmpiricalCDF(y).partitions_of(y, 16)
        assert empty_cell_fraction(x_parts, y_parts, 16, 16) > 0.5

    def test_independent_data_fills_cells(self):
        rng = np.random.default_rng(5)
        x = rng.integers(0, 100_000, 50_000)
        y = rng.integers(0, 100_000, 50_000)
        x_parts = EmpiricalCDF(x).partitions_of(x, 8)
        y_parts = EmpiricalCDF(y).partitions_of(y, 8)
        assert empty_cell_fraction(x_parts, y_parts, 8, 8) < 0.05

    def test_empty_input_is_all_empty(self):
        assert empty_cell_fraction(np.array([]), np.array([]), 4, 4) == 1.0

    def test_invalid_partition_counts(self):
        with pytest.raises(ValueError):
            empty_cell_fraction(np.array([0]), np.array([0]), 0, 4)


class TestCorrelationReport:
    def test_reports_all_pairs(self):
        rng = np.random.default_rng(6)
        columns = {"a": rng.normal(size=1000), "b": rng.normal(size=1000), "c": rng.normal(size=1000)}
        report = correlation_report(columns)
        assert len(report) == 3

    def test_detects_monotonic_pair(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 1000, 2000)
        report = correlation_report({"a": a, "b": a * 2 + 1})
        assert report[0].is_monotonic

    def test_empty_columns(self):
        assert correlation_report({}) == []
