"""Tests for the deterministic fault-injection harness (repro.common.faults).

The harness is only useful if its behavior is exactly reproducible: the same
plan over the same call sequence must inject the same faults, and no injected
hang may outlive its plan.
"""

import threading
import time

import pytest

from repro.common import faults
from repro.common.errors import InjectedFault, ReproError, ServingError
from repro.common.faults import FaultPlan, FaultSpec, Injection


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultSpec(site="x", kind="explode")

    def test_probability_bounds(self):
        with pytest.raises(ReproError, match="probability"):
            FaultSpec(site="x", probability=1.5)
        with pytest.raises(ReproError, match="probability"):
            FaultSpec(site="x", probability=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError, match="delay_seconds"):
            FaultSpec(site="x", delay_seconds=-1.0)

    def test_negative_after_calls_rejected(self):
        with pytest.raises(ReproError, match="after_calls"):
            FaultSpec(site="x", after_calls=-1)

    def test_zero_max_triggers_rejected(self):
        with pytest.raises(ReproError, match="max_triggers"):
            FaultSpec(site="x", max_triggers=0)


class TestTriggerDispatch:
    def test_trigger_is_noop_without_plan(self):
        assert faults.active_plan() is None
        faults.trigger("shard.execute", key=0)  # must not raise

    def test_error_injected_at_matching_site(self):
        plan = FaultPlan([FaultSpec(site="shard.execute")])
        with faults.active(plan):
            with pytest.raises(InjectedFault) as excinfo:
                faults.trigger("shard.execute", key=3)
        assert excinfo.value.site == "shard.execute"
        assert excinfo.value.call_index == 0

    def test_non_matching_site_passes(self):
        plan = FaultPlan([FaultSpec(site="shard.execute")])
        with faults.active(plan):
            faults.trigger("cache.get")
        assert plan.injections == []

    def test_wildcard_site_matches_layer(self):
        plan = FaultPlan([FaultSpec(site="shard.*")])
        with faults.active(plan):
            with pytest.raises(InjectedFault):
                faults.trigger("shard.execute")
            with pytest.raises(InjectedFault):
                faults.trigger("shard.merge")
            faults.trigger("cache.put")
        assert plan.injected("shard.execute") == 1
        assert plan.injected("shard.merge") == 1

    def test_key_restricts_to_one_target(self):
        plan = FaultPlan([FaultSpec(site="shard.execute", key=2)])
        with faults.active(plan):
            faults.trigger("shard.execute", key=0)
            faults.trigger("shard.execute", key=1)
            with pytest.raises(InjectedFault):
                faults.trigger("shard.execute", key=2)

    def test_after_calls_skips_a_prefix(self):
        plan = FaultPlan([FaultSpec(site="s", after_calls=2)])
        with faults.active(plan):
            faults.trigger("s")
            faults.trigger("s")
            with pytest.raises(InjectedFault) as excinfo:
                faults.trigger("s")
        assert excinfo.value.call_index == 2

    def test_max_triggers_bounds_injections(self):
        plan = FaultPlan([FaultSpec(site="s", max_triggers=2)])
        with faults.active(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faults.trigger("s")
            faults.trigger("s")  # spec exhausted: passes
        assert plan.injected("s") == 2

    def test_custom_error_factory(self):
        plan = FaultPlan(
            [FaultSpec(site="s", error_factory=lambda: ServingError("boom"))]
        )
        with faults.active(plan):
            with pytest.raises(ServingError, match="boom"):
                faults.trigger("s")

    def test_injection_history_records_decision_order(self):
        plan = FaultPlan([FaultSpec(site="s", max_triggers=2)])
        with faults.active(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faults.trigger("s", key="a")
        assert plan.injections == [
            Injection(site="s", key="a", kind="error", call_index=0),
            Injection(site="s", key="a", kind="error", call_index=1),
        ]


class TestDeterminism:
    @staticmethod
    def _run(seed: int) -> list[int]:
        plan = FaultPlan([FaultSpec(site="s", probability=0.4)], seed=seed)
        fired = []
        with faults.active(plan):
            for call in range(50):
                try:
                    faults.trigger("s")
                except InjectedFault:
                    fired.append(call)
        return fired

    def test_same_seed_replays_identically(self):
        assert self._run(seed=7) == self._run(seed=7)

    def test_probability_actually_thins_injections(self):
        fired = self._run(seed=7)
        assert 0 < len(fired) < 50


class TestDelaysAndHangs:
    def test_delay_sleeps_then_returns(self):
        plan = FaultPlan([FaultSpec(site="s", kind="delay", delay_seconds=0.05)])
        start = time.monotonic()
        with faults.active(plan):
            faults.trigger("s")
        assert time.monotonic() - start >= 0.05

    def test_uninstall_releases_inflight_hang(self):
        plan = FaultPlan([FaultSpec(site="s", kind="hang", delay_seconds=30.0)])
        faults.install(plan)
        released = threading.Event()

        def hang_then_signal():
            faults.trigger("s")
            released.set()

        worker = threading.Thread(target=hang_then_signal, daemon=True)
        worker.start()
        deadline = time.monotonic() + 5.0
        while plan.injected("s") == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert not released.is_set()
        faults.uninstall()
        assert released.wait(5.0), "hang was not released by uninstall"
        worker.join(5.0)

    def test_hang_caps_at_delay_seconds(self):
        plan = FaultPlan([FaultSpec(site="s", kind="hang", delay_seconds=0.05)])
        start = time.monotonic()
        with faults.active(plan):
            faults.trigger("s")
        elapsed = time.monotonic() - start
        assert 0.05 <= elapsed < 5.0


class TestInstallation:
    def test_active_context_restores_noop(self):
        plan = FaultPlan([FaultSpec(site="s")])
        with faults.active(plan) as installed:
            assert installed is plan
            assert faults.active_plan() is plan
        assert faults.active_plan() is None
        faults.trigger("s")  # no plan: no-op again

    def test_install_replaces_and_releases_previous(self):
        first = FaultPlan([FaultSpec(site="s", kind="hang", delay_seconds=30.0)])
        second = FaultPlan([])
        faults.install(first)
        try:
            faults.install(second)
            assert faults.active_plan() is second
            assert first._release.is_set()
        finally:
            faults.uninstall()

    def test_fire_usable_without_installing(self):
        plan = FaultPlan([FaultSpec(site="s")])
        with pytest.raises(InjectedFault):
            plan.fire("s")
        assert faults.active_plan() is None
