"""Tests for repro.datasets.workload_gen (template-driven workload generation)."""

import numpy as np
import pytest

from repro.datasets.workload_gen import (
    EqualitySpec,
    QueryTemplate,
    RangeSpec,
    generate_workload,
    scale_template_selectivities,
)
from repro.query.selectivity import dimension_selectivity, query_selectivity
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_arrays(
        "t",
        {"time": rng.integers(0, 100_000, 20_000), "value": rng.integers(0, 1_000, 20_000)},
    )


class TestSpecs:
    def test_range_spec_validation(self):
        with pytest.raises(ValueError):
            RangeSpec(selectivity=0.0)
        with pytest.raises(ValueError):
            RangeSpec(selectivity=0.5, centre_region=(0.5, 0.2))
        with pytest.raises(ValueError):
            RangeSpec(selectivity=0.5, centre_region=(-0.1, 0.5))

    def test_equality_spec_validation(self):
        with pytest.raises(ValueError):
            EqualitySpec(centre_region=(0.9, 0.1))

    def test_template_validation(self):
        with pytest.raises(ValueError):
            QueryTemplate("empty", {})
        with pytest.raises(ValueError):
            QueryTemplate("zero", {"time": RangeSpec(0.1)}, count=0)


class TestGenerateWorkload:
    def test_query_counts_and_types(self, table):
        templates = [
            QueryTemplate("a", {"time": RangeSpec(0.1)}, count=7),
            QueryTemplate("b", {"value": RangeSpec(0.2)}, count=5),
        ]
        workload = generate_workload(table, templates, seed=1)
        assert len(workload) == 12
        assert workload.query_types() == [0, 1]

    def test_per_dimension_selectivity_close_to_target(self, table):
        templates = [QueryTemplate("a", {"time": RangeSpec(0.10)}, count=30)]
        workload = generate_workload(table, templates, seed=2)
        selectivities = [
            dimension_selectivity(table, "time", *query.filters()["time"])
            for query in workload
        ]
        assert np.mean(selectivities) == pytest.approx(0.10, abs=0.03)

    def test_centre_region_controls_skew(self, table):
        recent = QueryTemplate(
            "recent", {"time": RangeSpec(0.05, centre_region=(0.9, 1.0))}, count=30
        )
        workload = generate_workload(table, [recent], seed=3)
        threshold = np.quantile(table.values("time"), 0.8)
        assert all(query.filters()["time"][0] >= threshold for query in workload)

    def test_equality_spec_yields_point_filters(self, table):
        template = QueryTemplate("eq", {"value": EqualitySpec()}, count=10)
        workload = generate_workload(table, [template], seed=4)
        for query in workload:
            low, high = query.filters()["value"]
            assert low == high

    def test_unknown_dimension_rejected(self, table):
        template = QueryTemplate("bad", {"missing": RangeSpec(0.1)})
        with pytest.raises(ValueError):
            generate_workload(table, [template])

    def test_deterministic_for_seed(self, table):
        templates = [QueryTemplate("a", {"time": RangeSpec(0.1)}, count=5)]
        first = generate_workload(table, templates, seed=9)
        second = generate_workload(table, templates, seed=9)
        assert [q.filters() for q in first] == [q.filters() for q in second]

    def test_aggregate_passthrough(self, table):
        templates = [QueryTemplate("a", {"time": RangeSpec(0.1)}, count=2)]
        workload = generate_workload(
            table, templates, aggregate="sum", aggregate_column="value"
        )
        assert all(q.aggregate == "sum" for q in workload)


class TestScaleTemplateSelectivities:
    def test_scaling_changes_query_selectivity(self, table):
        base = [QueryTemplate("a", {"time": RangeSpec(0.05), "value": RangeSpec(0.05)}, count=20)]
        narrow = generate_workload(table, scale_template_selectivities(base, 0.2), seed=5)
        wide = generate_workload(table, scale_template_selectivities(base, 4.0), seed=5)
        narrow_avg = np.mean([query_selectivity(table, q) for q in narrow])
        wide_avg = np.mean([query_selectivity(table, q) for q in wide])
        assert wide_avg > narrow_avg * 5

    def test_selectivity_clamped_to_one(self):
        base = [QueryTemplate("a", {"time": RangeSpec(0.5)}, count=1)]
        scaled = scale_template_selectivities(base, 10.0)
        assert scaled[0].filters["time"].selectivity == 1.0

    def test_equality_specs_untouched(self):
        base = [QueryTemplate("a", {"value": EqualitySpec()}, count=1)]
        scaled = scale_template_selectivities(base, 3.0)
        assert isinstance(scaled[0].filters["value"], EqualitySpec)
