"""Tests for repro.core.optimizer (AGD, GD, AGD-NI, Black Box, heuristics)."""

import numpy as np
import pytest

from repro.common.errors import OptimizationError
from repro.core.augmented_grid import AugmentedGrid
from repro.core.optimizer import (
    AdaptiveGradientDescent,
    BlackBoxOptimizer,
    ConfigurationEvaluator,
    GradientDescentOnly,
    adapt_partitions,
    initialize_partitions,
    initialize_skeleton,
)
from repro.core.skeleton import (
    ConditionalCDFStrategy,
    FunctionalMappingStrategy,
    IndependentCDFStrategy,
    Skeleton,
)
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


@pytest.fixture(scope="module")
def table() -> Table:
    rng = np.random.default_rng(0)
    n = 20_000
    x = rng.integers(0, 100_000, n)
    y = x + rng.integers(-200, 201, n)  # tight correlation -> mapping candidate
    z = rng.integers(0, 1_000, n)  # independent
    w = rng.integers(0, 50, n)
    return Table.from_arrays("opt", {"x": x, "y": y, "z": z, "w": w})


@pytest.fixture(scope="module")
def workload(table: Table) -> Workload:
    rng = np.random.default_rng(1)
    queries = []
    for _ in range(30):
        low = int(rng.integers(0, 95_000))
        queries.append(Query.from_ranges({"x": (low, low + 2000), "z": (0, 300)}, query_type=0))
    for _ in range(30):
        low = int(rng.integers(0, 95_000))
        queries.append(Query.from_ranges({"y": (low, low + 1000)}, query_type=1))
    return Workload(queries)


class TestInitializeSkeleton:
    def test_detects_tight_correlation(self, table):
        skeleton = initialize_skeleton(table)
        strategies = [skeleton.strategy_for(dim) for dim in ("x", "y")]
        assert any(
            isinstance(s, (FunctionalMappingStrategy, ConditionalCDFStrategy)) for s in strategies
        )

    def test_independent_dims_stay_independent(self):
        rng = np.random.default_rng(5)
        table = Table.from_arrays(
            "ind", {"a": rng.integers(0, 10_000, 10_000), "b": rng.integers(0, 10_000, 10_000)}
        )
        skeleton = initialize_skeleton(table)
        assert isinstance(skeleton.strategy_for("a"), IndependentCDFStrategy)
        assert isinstance(skeleton.strategy_for("b"), IndependentCDFStrategy)

    def test_result_is_valid_skeleton(self, table):
        skeleton = initialize_skeleton(table)
        assert isinstance(skeleton, Skeleton)
        assert set(skeleton.dimensions) == {"x", "y", "z", "w"}


class TestInitializePartitions:
    def test_more_selective_dims_get_more_partitions(self, table, workload):
        skeleton = Skeleton.all_independent(["x", "y", "z", "w"])
        partitions = initialize_partitions(skeleton, table, workload)
        # w is never filtered (average selectivity 1.0) so it should receive
        # no more partitions than the heavily filtered x.
        assert partitions["x"] >= partitions["w"]

    def test_total_cells_close_to_target(self, table, workload):
        skeleton = Skeleton.all_independent(["x", "y", "z", "w"])
        partitions = initialize_partitions(
            skeleton, table, workload, target_points_per_cell=256
        )
        total = int(np.prod(list(partitions.values())))
        assert total <= 20_000  # never more cells than rows

    def test_all_counts_at_least_one(self, table, workload):
        partitions = initialize_partitions(
            Skeleton.all_independent(["x", "y", "z", "w"]), table, workload
        )
        assert all(count >= 1 for count in partitions.values())

    def test_empty_workload(self, table):
        partitions = initialize_partitions(
            Skeleton.all_independent(["x", "y"]), table, Workload([])
        )
        assert set(partitions) == {"x", "y"}

    def test_cell_budget_respected(self, table, workload):
        partitions = initialize_partitions(
            Skeleton.all_independent(["x", "y", "z", "w"]),
            table,
            workload,
            target_points_per_cell=1,
            max_cells=64,
        )
        assert int(np.prod(list(partitions.values()))) <= 64


class TestAdaptPartitions:
    def test_new_grid_dim_gets_default(self):
        skeleton = Skeleton.all_independent(["a", "b"])
        adapted = adapt_partitions({"a": 4}, skeleton, defaults={"a": 4, "b": 7})
        assert adapted == {"a": 4, "b": 7}

    def test_dropped_dimension_removed(self):
        skeleton = Skeleton(
            {"a": IndependentCDFStrategy(), "b": FunctionalMappingStrategy(target="a")}
        )
        adapted = adapt_partitions({"a": 4, "b": 9}, skeleton, defaults={})
        assert adapted == {"a": 4}

    def test_budget_enforced(self):
        skeleton = Skeleton.all_independent(["a", "b"])
        adapted = adapt_partitions({"a": 100, "b": 100}, skeleton, defaults={}, max_cells=100)
        assert adapted["a"] * adapted["b"] <= 100


class TestConfigurationEvaluator:
    def test_infeasible_configuration_costs_infinity(self, table, workload):
        evaluator = ConfigurationEvaluator(table, workload, max_cells=16)
        cost = evaluator.evaluate(
            Skeleton.all_independent(["x", "y", "z", "w"]),
            {"x": 10, "y": 10, "z": 10, "w": 10},
        )
        assert cost == float("inf")

    def test_cache_avoids_reevaluation(self, table, workload):
        evaluator = ConfigurationEvaluator(table, workload)
        skeleton = Skeleton.all_independent(["x", "y", "z", "w"])
        partitions = {"x": 4, "y": 4, "z": 2, "w": 1}
        evaluator.evaluate(skeleton, partitions)
        first = evaluator.evaluations
        evaluator.evaluate(skeleton, partitions)
        assert evaluator.evaluations == first

    def test_scanned_points_scaled_to_full_table(self, table, workload):
        evaluator = ConfigurationEvaluator(table, workload, sample_rows=2_000)
        features = evaluator.features_for(
            Skeleton.all_independent(["x", "y", "z", "w"]), {"x": 4, "y": 1, "z": 1, "w": 1}
        )
        assert max(f.points_scanned for f in features) <= table.num_rows
        assert any(f.points_scanned > 2_000 for f in features)

    def test_query_subsampling(self, table, workload):
        evaluator = ConfigurationEvaluator(table, workload, max_evaluation_queries=10)
        assert len(evaluator.queries) == 10

    def test_finer_partitions_reduce_cost_on_filtered_dim(self, table, workload):
        evaluator = ConfigurationEvaluator(table, workload)
        skeleton = Skeleton.all_independent(["x", "y", "z", "w"])
        coarse = evaluator.evaluate(skeleton, {"x": 1, "y": 1, "z": 1, "w": 1})
        fine = evaluator.evaluate(skeleton, {"x": 16, "y": 8, "z": 4, "w": 1})
        assert fine < coarse


class TestOptimizers:
    def test_agd_improves_over_initial(self, table, workload):
        optimizer = AdaptiveGradientDescent(max_iterations=3)
        result = optimizer.optimize(table, workload)
        assert result.history[-1] <= result.history[0]
        assert result.predicted_cost == result.history[-1]
        assert result.method == "agd"

    def test_agd_result_is_buildable_and_correct(self, table, workload):
        result = AdaptiveGradientDescent(max_iterations=2).optimize(table, workload)
        grid = AugmentedGrid(result.config)
        permutation = grid.fit(table)
        assert len(permutation) == table.num_rows

    def test_gd_never_changes_skeleton(self, table, workload):
        optimizer = GradientDescentOnly(max_iterations=2, naive_init=True)
        result = optimizer.optimize(table, workload)
        assert result.config.skeleton == Skeleton.all_independent(["x", "y", "z", "w"])
        assert result.method == "gd"

    def test_agd_ni_starts_from_naive_skeleton(self, table, workload):
        result = AdaptiveGradientDescent(max_iterations=1, naive_init=True).optimize(table, workload)
        assert result.method == "agd-ni"

    def test_agd_not_worse_than_gd(self, table, workload):
        agd = AdaptiveGradientDescent(max_iterations=3).optimize(table, workload)
        gd = GradientDescentOnly(max_iterations=3).optimize(table, workload)
        assert agd.predicted_cost <= gd.predicted_cost * 1.05

    def test_blackbox_runs_and_is_no_worse_than_start(self, table, workload):
        result = BlackBoxOptimizer(iterations=2).optimize(table, workload)
        assert np.isfinite(result.predicted_cost)
        assert result.method == "blackbox"

    def test_empty_workload_rejected(self, table):
        with pytest.raises(OptimizationError):
            AdaptiveGradientDescent().optimize(table, Workload([]))
        with pytest.raises(OptimizationError):
            BlackBoxOptimizer().optimize(table, Workload([]))

    def test_optimizer_is_deterministic(self, table, workload):
        first = AdaptiveGradientDescent(max_iterations=2, seed=11).optimize(table, workload)
        second = AdaptiveGradientDescent(max_iterations=2, seed=11).optimize(table, workload)
        assert first.config.skeleton == second.config.skeleton
        assert first.config.partitions == second.config.partitions
