"""Tests for the experiment CLI (python -m repro.bench.cli)."""

import json
from pathlib import Path

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main, run_experiment

REPO_CONFIGS = Path(__file__).resolve().parents[1] / "benchmarks" / "configs"


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.rows is None

    def test_scale_flags(self):
        args = build_parser().parse_args(["fig7", "--rows", "1000", "--queries", "5"])
        assert args.experiments == ["fig7"]
        assert args.rows == 1000 and args.queries == 5


class TestRunExperiment:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_experiment("nope", None, None)

    def test_table3_runs_at_tiny_scale(self):
        result = run_experiment("table3", rows=2_000, queries=3)
        assert "dataset" in result.report

    def test_registry_covers_every_table_and_figure(self):
        paper_artifacts = {
            "table3",
            "table4",
            "fig7",
            "fig9a",
            "fig9b",
            "fig10",
            "fig11a",
            "fig11b",
            "fig12a",
            "fig12b",
        }
        assert paper_artifacts <= set(EXPERIMENTS)
        # Anything beyond the paper's tables/figures must be clearly marked as
        # a supplementary extension experiment.
        assert all(
            name.startswith("ext-") for name in set(EXPERIMENTS) - paper_artifacts
        )


class TestMain:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output and "fig12b" in output

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_single_experiment(self, capsys):
        assert main(["table3", "--rows", "2000", "--queries", "3"]) == 0
        assert "Table 3" in capsys.readouterr().out


def _tiny_scenario(name="cli-tiny", **overrides):
    raw = {
        "kind": "scenario",
        "name": name,
        "smoke": True,
        "seed": 5,
        "dataset": {"source": "correlated_xyz", "num_rows": 2_000},
        "workload": {"num_templates": 6, "num_queries": 32},
        "indexes": [{"kind": "kdtree"}],
    }
    raw.update(overrides)
    return raw


class TestValidateSubcommand:
    def test_shipped_configs_all_validate(self, capsys):
        assert main(["validate", str(REPO_CONFIGS)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == len(list(REPO_CONFIGS.glob("*.json")))

    def test_broken_config_fails_validation(self, tmp_path, capsys):
        (tmp_path / "good.json").write_text(json.dumps(_tiny_scenario()))
        (tmp_path / "broken.json").write_text('{"kind": "scenario"')
        assert main(["validate", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "INVALID broken.json" in captured.err
        assert "ok good.json" in captured.out


class TestRunSubcommand:
    def test_run_scenario_writes_report(self, tmp_path, capsys):
        config = tmp_path / "tiny.json"
        config.write_text(json.dumps(_tiny_scenario()))
        output = tmp_path / "report.json"
        assert main(["run", str(config), "--output", str(output)]) == 0
        report = json.loads(output.read_text())
        assert report["schema_version"] == 1
        assert report["name"] == "cli-tiny"
        assert report["ok"] is True
        # The report is also printed to stdout for interactive use.
        assert '"schema_version": 1' in capsys.readouterr().out

    def test_run_exits_nonzero_on_violation(self, tmp_path, capsys):
        config = tmp_path / "floor.json"
        raw = _tiny_scenario(thresholds={"min_queries_per_second": 1e12})
        config.write_text(json.dumps(raw))
        assert main(["run", str(config)]) == 1
        assert "FAILURE:" in capsys.readouterr().err

    def test_run_tracker_in_smoke_mode(self, capsys):
        path = REPO_CONFIGS / "tracker_planning.json"
        assert main(["run", str(path), "--mode", "smoke"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "smoke"


class TestSmokeSubcommand:
    def test_matrix_runs_smoke_configs_and_writes_reports(self, tmp_path, capsys):
        configs = tmp_path / "configs"
        configs.mkdir()
        (configs / "a.json").write_text(json.dumps(_tiny_scenario(name="smoke-a")))
        (configs / "b.json").write_text(
            json.dumps(_tiny_scenario(name="full-only", smoke=False))
        )
        reports = tmp_path / "reports"
        assert (
            main(
                ["smoke", "--configs", str(configs), "--reports", str(reports)]
            )
            == 0
        )
        assert (reports / "smoke-a.json").exists()
        assert not (reports / "full-only.json").exists()
        err = capsys.readouterr().err
        assert "PASS a.json" in err
        assert "smoke matrix: 1/1 configs passed" in err

    def test_matrix_fails_on_gate_violation(self, tmp_path, capsys):
        configs = tmp_path / "configs"
        configs.mkdir()
        raw = _tiny_scenario(
            name="smoke-bad", thresholds={"min_queries_per_second": 1e12}
        )
        (configs / "bad.json").write_text(json.dumps(raw))
        assert main(["smoke", "--configs", str(configs)]) == 1
        err = capsys.readouterr().err
        assert "FAIL bad.json" in err
        assert "smoke matrix: 0/1 configs passed" in err
