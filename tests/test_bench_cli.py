"""Tests for the experiment CLI (python -m repro.bench.cli)."""

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.rows is None

    def test_scale_flags(self):
        args = build_parser().parse_args(["fig7", "--rows", "1000", "--queries", "5"])
        assert args.experiments == ["fig7"]
        assert args.rows == 1000 and args.queries == 5


class TestRunExperiment:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_experiment("nope", None, None)

    def test_table3_runs_at_tiny_scale(self):
        result = run_experiment("table3", rows=2_000, queries=3)
        assert "dataset" in result.report

    def test_registry_covers_every_table_and_figure(self):
        paper_artifacts = {
            "table3",
            "table4",
            "fig7",
            "fig9a",
            "fig9b",
            "fig10",
            "fig11a",
            "fig11b",
            "fig12a",
            "fig12b",
        }
        assert paper_artifacts <= set(EXPERIMENTS)
        # Anything beyond the paper's tables/figures must be clearly marked as
        # a supplementary extension experiment.
        assert all(
            name.startswith("ext-") for name in set(EXPERIMENTS) - paper_artifacts
        )


class TestMain:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output and "fig12b" in output

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_single_experiment(self, capsys):
        assert main(["table3", "--rows", "2000", "--queries", "3"]) == 0
        assert "Table 3" in capsys.readouterr().out
