"""Tests for repro.core.skew (skew measure, skew tree, split selection)."""

import numpy as np
import pytest

from repro.core.skew import (
    SkewTree,
    build_type_histograms,
    evaluate_split_dimension,
    mass_emd,
    range_skew,
)


class TestMassEmd:
    def test_uniform_mass_has_zero_skew(self):
        assert mass_emd(np.full(16, 2.0)) == pytest.approx(0.0)

    def test_concentrated_mass_has_high_skew(self):
        concentrated = np.zeros(16)
        concentrated[0] = 16.0
        assert mass_emd(concentrated) > mass_emd(np.full(16, 1.0))

    def test_single_bin_is_zero(self):
        assert mass_emd(np.array([5.0])) == 0.0

    def test_scales_with_total_mass(self):
        base = np.zeros(8)
        base[0] = 1.0
        assert mass_emd(base * 10) == pytest.approx(10 * mass_emd(base))

    def test_bounded_by_total_mass(self):
        mass = np.zeros(32)
        mass[0] = 100.0
        assert mass_emd(mass) <= 100.0


class TestRangeSkew:
    def test_sums_over_types(self):
        type_a = np.zeros(8)
        type_a[0] = 4.0
        type_b = np.zeros(8)
        type_b[7] = 4.0
        combined = range_skew([type_a, type_b], 0, 8)
        assert combined == pytest.approx(mass_emd(type_a) + mass_emd(type_b))

    def test_types_do_not_cancel(self):
        # Together the two types look uniform, but per-type skew is large: this
        # is exactly why the paper clusters queries into types (§4.3.1).
        type_a = np.array([4.0, 4.0, 0.0, 0.0])
        type_b = np.array([0.0, 0.0, 4.0, 4.0])
        merged = type_a + type_b
        assert range_skew([merged], 0, 4) == pytest.approx(0.0)
        assert range_skew([type_a, type_b], 0, 4) > 0.5

    def test_single_bin_range_is_zero(self):
        assert range_skew([np.array([3.0, 1.0])], 1, 2) == 0.0


class TestSkewTree:
    def _skewed_histogram(self) -> np.ndarray:
        # Queries concentrated in the last quarter of a 32-bin domain.
        mass = np.zeros(32)
        mass[24:] = 10.0
        return mass

    def test_total_skew_positive_for_skewed_mass(self):
        tree = SkewTree([self._skewed_histogram()], np.linspace(0, 320, 33))
        assert tree.total_skew > 0

    def test_best_split_reduces_skew(self):
        tree = SkewTree([self._skewed_histogram()], np.linspace(0, 320, 33))
        splits, residual = tree.best_split()
        assert residual < tree.total_skew
        assert len(splits) >= 1

    def test_split_value_near_skew_boundary(self):
        tree = SkewTree([self._skewed_histogram()], np.linspace(0, 320, 33))
        splits, _ = tree.best_split()
        # The mass boundary is at bin 24 → value 240.
        assert any(abs(split - 240) <= 20 for split in splits)

    def test_uniform_mass_produces_no_split(self):
        tree = SkewTree([np.full(32, 3.0)], np.linspace(0, 32, 33))
        splits, residual = tree.best_split()
        assert residual == pytest.approx(0.0, abs=1e-9)
        assert splits == []

    def test_cover_is_disjoint_and_complete(self):
        tree = SkewTree([self._skewed_histogram()], np.linspace(0, 320, 33))
        cover = tree.optimal_cover()
        assert cover[0].first == 0 and cover[-1].last == 32
        for left, right in zip(cover, cover[1:]):
            assert left.last == right.first

    def test_mismatched_histograms_rejected(self):
        with pytest.raises(ValueError):
            SkewTree([np.zeros(4), np.zeros(8)], np.linspace(0, 1, 5))

    def test_edges_length_validated(self):
        with pytest.raises(ValueError):
            SkewTree([np.zeros(4)], np.linspace(0, 1, 3))


class TestBuildTypeHistograms:
    def test_shared_edges_across_types(self):
        histograms, edges = build_type_histograms(
            {0: [(0, 10)], 1: [(50, 60)]}, 0, 100, num_bins=10
        )
        assert len(histograms) == 2
        assert len(edges) == 11

    def test_unique_value_bins(self):
        histograms, edges = build_type_histograms(
            {0: [(1, 1)]}, 0, 5, num_bins=128, unique_values=np.array([1, 2, 3])
        )
        assert len(edges) == 4  # one bin per unique value inside [0, 5)


class TestEvaluateSplitDimension:
    def test_skewed_queries_yield_reduction(self):
        per_type = {0: [(900.0, 999.0)] * 20, 1: [(0.0, 999.0)] * 20}
        candidate = evaluate_split_dimension("time", per_type, 0.0, 1000.0)
        assert candidate.dimension == "time"
        assert candidate.skew_reduction > 0

    def test_uniform_queries_yield_no_split(self):
        rng = np.random.default_rng(0)
        intervals = []
        for _ in range(64):
            low = float(rng.uniform(0, 900))
            intervals.append((low, low + 100))
        candidate = evaluate_split_dimension("x", {0: intervals}, 0.0, 1000.0)
        assert candidate.skew_reduction < 0.05 * 64

    def test_no_queries(self):
        candidate = evaluate_split_dimension("x", {}, 0.0, 100.0)
        assert candidate.split_values == ()
        assert candidate.skew_reduction == 0.0

    def test_empty_domain(self):
        candidate = evaluate_split_dimension("x", {0: [(0, 1)]}, 5.0, 5.0)
        assert candidate.split_values == ()
