"""Tests for repro.common.validation."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.common.validation import (
    ensure_in_range,
    ensure_int64_array,
    ensure_non_empty,
    ensure_positive,
)


class TestEnsureInt64Array:
    def test_int_list(self):
        result = ensure_int64_array([1, 2, 3])
        assert result.dtype == np.int64
        assert result.tolist() == [1, 2, 3]

    def test_integral_floats_accepted(self):
        result = ensure_int64_array([1.0, 2.0])
        assert result.tolist() == [1, 2]

    def test_non_integral_floats_rejected(self):
        with pytest.raises(SchemaError, match="non-integral"):
            ensure_int64_array([1.5, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(SchemaError, match="non-finite"):
            ensure_int64_array([float("nan")])

    def test_two_dimensional_rejected(self):
        with pytest.raises(SchemaError, match="one-dimensional"):
            ensure_int64_array(np.zeros((2, 2)))

    def test_strings_rejected(self):
        with pytest.raises(SchemaError, match="numeric"):
            ensure_int64_array(np.array(["a", "b"]))

    def test_empty_accepted(self):
        assert ensure_int64_array([]).size == 0


class TestScalarValidators:
    def test_ensure_positive_accepts(self):
        assert ensure_positive(3.5) == 3.5

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_ensure_positive_rejects(self, value):
        with pytest.raises(ValueError):
            ensure_positive(value)

    def test_ensure_in_range_accepts_bounds(self):
        assert ensure_in_range(0.0, 0.0, 1.0) == 0.0
        assert ensure_in_range(1.0, 0.0, 1.0) == 1.0

    def test_ensure_in_range_rejects(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.5, 0.0, 1.0)

    def test_ensure_non_empty(self):
        assert ensure_non_empty([1]) == [1]
        with pytest.raises(ValueError):
            ensure_non_empty([])
