"""Tests for repro.core.tsunami and repro.core.variants (end-to-end index)."""

import numpy as np
import pytest

from repro.baselines import FloodIndex
from repro.core.tsunami import TsunamiConfig, TsunamiIndex, make_tsunami
from repro.core.variants import AugmentedGridOnlyIndex, GridTreeOnlyIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload


FAST = TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=3_000)


@pytest.fixture(scope="module")
def built(small_table, skewed_workload):
    """A Tsunami index built once for read-only structural assertions."""
    # Build on a private copy: building reorders the table in place.
    table = small_table.subset(np.arange(small_table.num_rows), name="tsunami_copy")
    index = TsunamiIndex(FAST)
    index.build(table, skewed_workload)
    return table, index


class TestTsunamiCorrectness:
    def test_all_workload_queries_correct(self, built, skewed_workload):
        table, index = built
        for query in skewed_workload:
            expected, _ = execute_full_scan(table, query)
            assert index.execute(query).value == expected

    def test_queries_outside_workload_correct(self, built):
        table, index = built
        rng = np.random.default_rng(0)
        for _ in range(25):
            low_x = int(rng.integers(0, 9_000))
            low_y = int(rng.integers(0, 25_000))
            query = Query.from_ranges(
                {"x": (low_x, low_x + 500), "y": (low_y, low_y + 3_000), "c": (0, 3)}
            )
            expected, _ = execute_full_scan(table, query)
            assert index.execute(query).value == expected

    def test_empty_result_query(self, built):
        table, index = built
        query = Query.from_ranges({"x": (50_000, 60_000)})
        assert index.execute(query).value == 0

    def test_sum_aggregation(self, built):
        table, index = built
        query = Query.from_ranges({"x": (0, 4_000)}, aggregate="sum", aggregate_column="z")
        expected, _ = execute_full_scan(table, query)
        assert index.execute(query).value == expected

    def test_unfiltered_query_counts_everything(self, built):
        table, index = built
        assert index.execute(Query(predicates=())).value == table.num_rows


class TestTsunamiStructure:
    def test_scans_fewer_points_than_flood(self, small_table, skewed_workload):
        table_a = small_table.subset(np.arange(small_table.num_rows), name="a")
        tsunami = TsunamiIndex(FAST)
        tsunami.build(table_a, skewed_workload)
        _, tsunami_stats = tsunami.execute_workload(skewed_workload)

        table_b = small_table.subset(np.arange(small_table.num_rows), name="b")
        flood = FloodIndex(optimizer_iterations=1)
        flood.build(table_b, skewed_workload)
        _, flood_stats = flood.execute_workload(skewed_workload)

        assert tsunami_stats.points_scanned <= flood_stats.points_scanned

    def test_describe_reports_table4_statistics(self, built):
        _, index = built
        info = index.describe()
        for key in (
            "num_grid_tree_nodes",
            "grid_tree_depth",
            "num_leaf_regions",
            "min_points_per_region",
            "max_points_per_region",
            "avg_functional_mappings_per_region",
            "avg_conditional_cdfs_per_region",
            "total_grid_cells",
        ):
            assert key in info
        assert info["num_leaf_regions"] >= 1
        assert info["total_grid_cells"] >= 1

    def test_index_size_positive(self, built):
        _, index = built
        assert index.index_size_bytes() > 0

    def test_build_report_populated(self, built):
        _, index = built
        assert index.build_report.optimize_seconds > 0
        assert index.build_report.total_seconds > 0

    def test_execute_before_build_raises(self):
        from repro.common.errors import IndexBuildError

        with pytest.raises(IndexBuildError):
            TsunamiIndex().execute(Query.from_ranges({"x": (0, 1)}))

    def test_build_without_workload_still_correct(self, small_table):
        table = small_table.subset(np.arange(small_table.num_rows), name="no_wl")
        index = TsunamiIndex(FAST)
        index.build(table, None)
        query = Query.from_ranges({"x": (100, 3_000)})
        expected, _ = execute_full_scan(table, query)
        assert index.execute(query).value == expected


class TestReoptimization:
    def test_reoptimize_restores_performance(self, small_table):
        table = small_table.subset(np.arange(small_table.num_rows), name="shift")
        rng = np.random.default_rng(5)
        old = Workload(
            [
                Query.from_ranges(
                    {"x": (int(low := rng.integers(8_000, 9_500)), int(low) + 200)}, query_type=0
                )
                for _ in range(40)
            ]
        )
        new = Workload(
            [
                Query.from_ranges(
                    {"z": (int(low := rng.integers(0, 800)), int(low) + 30)}, query_type=0
                )
                for _ in range(40)
            ]
        )
        index = TsunamiIndex(FAST)
        index.build(table, old)
        _, stale_stats = index.execute_workload(new)
        seconds = index.reoptimize(new)
        assert seconds > 0
        _, fresh_stats = index.execute_workload(new)
        # Re-optimizing for the new workload must not scan more than the stale layout.
        assert fresh_stats.points_scanned <= stale_stats.points_scanned
        for query in new:
            expected, _ = execute_full_scan(table, query)
            assert index.execute(query).value == expected


class TestVariants:
    def test_augmented_grid_only_has_single_region(self, small_table, skewed_workload):
        table = small_table.subset(np.arange(small_table.num_rows), name="ag_only")
        index = AugmentedGridOnlyIndex(FAST)
        index.build(table, skewed_workload)
        assert index.describe()["num_leaf_regions"] == 1
        for query in list(skewed_workload)[:10]:
            expected, _ = execute_full_scan(table, query)
            assert index.execute(query).value == expected

    def test_grid_tree_only_uses_independent_grids(self, small_table, skewed_workload):
        table = small_table.subset(np.arange(small_table.num_rows), name="gt_only")
        index = GridTreeOnlyIndex(FAST)
        index.build(table, skewed_workload)
        info = index.describe()
        assert info["avg_functional_mappings_per_region"] == 0.0
        assert info["avg_conditional_cdfs_per_region"] == 0.0
        for query in list(skewed_workload)[:10]:
            expected, _ = execute_full_scan(table, query)
            assert index.execute(query).value == expected

    def test_make_tsunami_helper(self):
        index = make_tsunami(optimizer_iterations=2)
        assert index.config.optimizer_iterations == 2
