"""Tests for insert support via delta buffers (§8 extension, repro.core.delta)."""

import numpy as np
import pytest

from repro.baselines import FloodIndex, KdTreeIndex
from repro.common.errors import IndexBuildError, QueryError, SchemaError
from repro.core.delta import MIN_BUFFER_CAPACITY, DeltaBuffer, DeltaBufferedIndex
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine, execute_full_scan
from repro.query.query import Query
from repro.storage.table import Table


def tsunami_factory():
    return TsunamiIndex(TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=2_000))


def new_rows(count: int, seed: int = 21) -> list[dict]:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(count):
        x = int(rng.integers(0, 10_000))
        rows.append({"x": x, "y": 3 * x, "z": int(rng.integers(0, 1_000)), "c": int(rng.integers(0, 8))})
    return rows


def reference_table(index: DeltaBufferedIndex, inserted: list[dict]) -> Table:
    """The table queries should behave as if they ran against (main + inserts)."""
    base = index.base_index.table
    data = {}
    for name in base.column_names:
        extra = np.array([row[name] for row in inserted], dtype=np.int64)
        data[name] = np.concatenate([base.values(name), extra]) if inserted else base.values(name)
    return Table.from_arrays("reference", data)


class TestBuildAndInsert:
    def test_inserts_visible_to_count_queries(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(50)
        index.insert_many(rows)
        assert index.num_pending == 50
        reference = reference_table(index, rows)
        for query in list(fresh_workload)[:15]:
            expected, _ = execute_full_scan(reference, query)
            assert index.execute(query).value == expected

    @pytest.mark.parametrize(
        "aggregate", ["count", "sum", "avg", "min", "max"]
    )
    def test_all_aggregates_combine_correctly(self, fresh_table, fresh_workload, aggregate):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(30, seed=4)
        index.insert_many(rows)
        reference = reference_table(index, rows)
        column = None if aggregate == "count" else "z"
        query = Query.from_ranges(
            {"x": (1_000, 8_000)}, aggregate=aggregate, aggregate_column=column
        )
        expected, _ = execute_full_scan(reference, query)
        assert index.execute(query).value == pytest.approx(expected)

    def test_num_rows_counts_pending(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        base_rows = index.base_index.table.num_rows
        index.insert_many(new_rows(7))
        assert index.num_rows == base_rows + 7

    def test_missing_column_rejected(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        with pytest.raises(SchemaError):
            index.insert({"x": 1, "y": 2})

    def test_unencodable_value_rejected(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        with pytest.raises(SchemaError):
            index.insert({"x": "not-a-number", "y": 0, "z": 0, "c": 0})

    def test_operations_before_build_raise(self):
        index = DeltaBufferedIndex(tsunami_factory)
        with pytest.raises(IndexBuildError):
            index.insert({"x": 1})
        with pytest.raises(IndexBuildError):
            index.execute(Query.from_ranges({"x": (0, 1)}))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            DeltaBufferedIndex(tsunami_factory, merge_threshold=-1)


class TestMerging:
    def test_manual_merge_folds_buffer(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: FloodIndex(optimizer_iterations=1), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(40, seed=9)
        index.insert_many(rows)
        report = index.merge()
        assert report.rows_merged == 40
        assert index.num_pending == 0
        assert index.base_index.table.num_rows == 5_000 + 40
        reference = index.base_index.table
        for query in list(fresh_workload)[:10]:
            expected, _ = execute_full_scan(reference, query)
            assert index.execute(query).value == expected

    def test_merge_on_empty_buffer_is_noop(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        assert index.merge() is None
        assert index.merge_history == []

    def test_threshold_triggers_automatic_merge(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10)
        index.build(fresh_table, fresh_workload)
        index.insert_many(new_rows(25, seed=2))
        assert index.num_pending < 10
        assert len(index.merge_history) >= 2

    def test_queries_correct_across_merge_boundary(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=20)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(45, seed=6)
        index.insert_many(rows)
        # Some rows were merged into the base table, the rest are pending; the
        # reference is therefore the base table plus the still-pending tail.
        pending = index.num_pending
        reference = reference_table(index, rows[len(rows) - pending :])
        query = Query.from_ranges({"x": (0, 10_000)})
        expected, _ = execute_full_scan(reference, query)
        assert index.execute(query).value == expected


class TestDeltaBuffer:
    def test_append_and_views(self):
        buffer = DeltaBuffer(["a", "b"])
        buffer.append({"a": 1, "b": 10})
        buffer.append({"a": 2, "b": 20})
        assert len(buffer) == 2
        assert buffer.column("a").tolist() == [1, 2]
        assert buffer.column("b").tolist() == [10, 20]

    def test_append_many_is_columnar(self):
        buffer = DeltaBuffer(["a", "b"])
        appended = buffer.append_many({"a": np.arange(5), "b": np.arange(5) * 2})
        assert appended == 5
        assert buffer.column("b").tolist() == [0, 2, 4, 6, 8]

    def test_capacity_grows_by_doubling(self):
        buffer = DeltaBuffer(["a"])
        start = buffer.capacity
        buffer.append_many({"a": np.arange(start + 1)})
        assert buffer.capacity == 2 * start
        assert len(buffer) == start + 1
        assert buffer.column("a").tolist() == list(range(start + 1))

    def test_clear_resets_size_and_allocation(self):
        buffer = DeltaBuffer(["a"])
        buffer.append_many({"a": np.arange(10 * MIN_BUFFER_CAPACITY)})
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.capacity == MIN_BUFFER_CAPACITY

    def test_append_many_validates_lengths_and_columns(self):
        buffer = DeltaBuffer(["a", "b"])
        with pytest.raises(SchemaError):
            buffer.append_many({"a": np.arange(3)})
        with pytest.raises(SchemaError):
            buffer.append_many({"a": np.arange(3), "b": np.arange(4)})
        with pytest.raises(SchemaError):
            buffer.append_many({"a": np.arange(4).reshape(2, 2), "b": np.arange(4).reshape(2, 2)})
        assert len(buffer) == 0

    def test_unknown_column_rejected(self):
        buffer = DeltaBuffer(["a"])
        with pytest.raises(SchemaError):
            buffer.column("missing")
        with pytest.raises(QueryError):
            buffer.mask_for_filters({"missing": (0, 1)})

    def test_scan_computes_every_aggregate_piece_in_one_pass(self):
        buffer = DeltaBuffer(["x", "v"])
        buffer.append_many({"x": [1, 5, 9], "v": [30, 10, 20]})
        scan = buffer.scan(
            Query.from_ranges({"x": (0, 6)}, aggregate="sum", aggregate_column="v")
        )
        assert scan.matched == 2
        assert scan.total == 40.0
        assert scan.minimum == 10.0
        assert scan.maximum == 30.0
        assert scan.stats.points_scanned == 3
        assert scan.stats.rows_matched == 2
        assert scan.stats.cell_ranges == 1

    def test_scan_of_empty_buffer_is_free(self):
        buffer = DeltaBuffer(["x"])
        scan = buffer.scan(Query.from_ranges({"x": (0, 10)}))
        assert scan.matched == 0
        assert np.isnan(scan.minimum) and np.isnan(scan.maximum)
        assert scan.stats.points_scanned == 0


class TestVectorizedInsertMany:
    def test_insert_many_matches_per_row_loop(self, fresh_table, fresh_workload):
        rows = new_rows(60, seed=13)
        bulk = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=25)
        bulk.build(fresh_table, fresh_workload)
        loop = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=25)
        loop.build(_make_fresh_copy(fresh_table), fresh_workload)

        bulk.insert_many(rows)
        for row in rows:
            loop.insert(row)

        # Identical merge cadence and identical pending tail.
        assert bulk.num_pending == loop.num_pending
        assert len(bulk.merge_history) == len(loop.merge_history)
        for name in fresh_table.column_names:
            assert np.array_equal(bulk.buffer.column(name), loop.buffer.column(name))
        query = Query.from_ranges({"x": (0, 10_000)})
        assert bulk.execute(query).value == loop.execute(query).value

    def test_insert_many_missing_column_rejected_atomically(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(3)
        del rows[1]["z"]
        with pytest.raises(SchemaError):
            index.insert_many(rows)
        assert index.num_pending == 0  # nothing buffered before the failure

    def test_insert_many_bad_value_rejected_atomically(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(3)
        rows[2]["y"] = "not-a-number"
        with pytest.raises(SchemaError):
            index.insert_many(rows)
        assert index.num_pending == 0

    def test_empty_insert_many_is_noop(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        index.insert_many([])
        assert index.num_pending == 0

    def test_zero_threshold_merges_every_insert(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=0)
        index.build(fresh_table, fresh_workload)
        for row in new_rows(3, seed=8):
            index.insert(row)
        assert index.num_pending == 0
        assert len(index.merge_history) == 3
        index.insert_many(new_rows(5, seed=9))
        assert index.num_pending == 0
        assert index.base_index.table.num_rows == 5_000 + 8


def _make_fresh_copy(table: Table) -> Table:
    return Table.from_arrays(
        table.name, {name: np.array(table.values(name)) for name in table.column_names}
    )


class TestServingContract:
    def test_is_built_and_table(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512))
        assert not index.is_built
        with pytest.raises(IndexBuildError):
            index.table
        index.build(fresh_table, fresh_workload)
        assert index.is_built
        assert index.table is index.base_index.table

    def test_query_engine_accepts_delta_index(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(40, seed=3)
        index.insert_many(rows)
        engine = QueryEngine(index=index)  # used to raise AttributeError
        reference = reference_table(index, rows)
        query = fresh_workload[0]
        expected, _ = execute_full_scan(reference, query)
        assert engine.run(query).value == expected
        assert [r.value for r in engine.run_batch([query, query])] == [expected] * 2

    def test_run_batch_differential(self, fresh_table, fresh_workload):
        """Batched == per-query == full scan over table+buffer, bit for bit."""
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(35, seed=17)
        index.insert_many(rows)
        reference = reference_table(index, rows)
        queries = []
        for aggregate in ("count", "sum", "avg", "min", "max"):
            column = None if aggregate == "count" else "z"
            queries.append(
                Query.from_ranges(
                    {"x": (1_000, 8_000)}, aggregate=aggregate, aggregate_column=column
                )
            )
        queries = queries + list(fresh_workload)[:10] + queries  # duplicates too
        engine = QueryEngine(index=index)
        batched = engine.run_batch(queries)
        for query, result in zip(queries, batched):
            single = index.execute(query)
            assert _same_value(result.value, single.value)
            assert result.stats.points_scanned == single.stats.points_scanned
            assert result.stats.cell_ranges == single.stats.cell_ranges
            assert result.stats.rows_matched == single.stats.rows_matched
            assert result.stats.dims_accessed == single.stats.dims_accessed
            expected, _ = execute_full_scan(reference, query)
            assert _same_value(result.value, expected)

    def test_engine_table_tracks_merge(self, fresh_table, fresh_workload):
        """A merge replaces the index's table; the engine must not cache the old one."""
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        engine = QueryEngine(index=index)
        before = engine.table
        index.insert_many(new_rows(25, seed=9))
        index.merge()
        assert engine.table is index.table
        assert engine.table is not before
        assert engine.table.num_rows == before.num_rows + 25

    def test_inserts_visible_between_batches(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        engine = QueryEngine(index=index)
        query = Query.from_ranges({"x": (0, 10_000)})
        before = engine.run_batch([query])[0].value
        index.insert_many(new_rows(12, seed=5))
        after = engine.run_batch([query])[0].value
        assert after == before + 12

    def test_explain_includes_buffer(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        query = Query.from_ranges({"x": (1_000, 2_000)})
        empty_plan = index.explain(query)
        assert empty_plan["pending_inserts"] == 0
        index.insert_many(new_rows(20, seed=2))
        plan = index.explain(query)
        assert plan["pending_inserts"] == 20
        assert plan["rows_to_scan"] == empty_plan["rows_to_scan"] + 20
        assert plan["cell_ranges"] == empty_plan["cell_ranges"] + 1
        assert plan["index"].startswith("delta-buffered(")

    def test_min_max_nan_edges(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        # Outside the data domain: empty buffer AND empty main-side result.
        nothing = Query.from_ranges({"x": (50_000, 60_000)}, aggregate="min", aggregate_column="z")
        assert np.isnan(index.execute(nothing).value)
        assert np.isnan(index.execute_batch([nothing])[0].value)
        # Buffer-only matches: the main side stays empty, the buffer answers.
        index.insert({"x": 55_000, "y": 1, "z": 777, "c": 0})
        assert index.execute(nothing).value == 777.0
        maximum = Query.from_ranges({"x": (50_000, 60_000)}, aggregate="max", aggregate_column="z")
        assert index.execute_batch([maximum])[0].value == 777.0
        # Main-only matches with a pending (non-matching) insert still combine.
        main_only = Query.from_ranges({"x": (0, 10_000)}, aggregate="min", aggregate_column="z")
        expected, _ = execute_full_scan(index.table, main_only)
        assert index.execute(main_only).value == expected

    def test_avg_with_empty_sides(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        nothing = Query.from_ranges({"x": (50_000, 60_000)}, aggregate="avg", aggregate_column="z")
        assert np.isnan(index.execute(nothing).value)
        index.insert({"x": 55_000, "y": 1, "z": 40, "c": 0})
        index.insert({"x": 56_000, "y": 1, "z": 60, "c": 0})
        assert index.execute(nothing).value == pytest.approx(50.0)
        assert index.execute_batch([nothing])[0].value == pytest.approx(50.0)


class TestAvgStatsConservation:
    def test_avg_reports_exactly_the_sum_pass_plus_buffer(self, fresh_table, fresh_workload):
        """The old second count pass is gone and no scan work is dropped.

        ``avg`` now executes a single main-index ``sum`` pass whose
        ``rows_matched`` doubles as the count, so its reported stats must be
        exactly (sum-query stats) + (one buffer scan) — conservation, where
        previously the count pass ran *and* its counters were dropped.
        """
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        index.insert_many(new_rows(25, seed=11))
        pending = index.num_pending
        avg_query = Query.from_ranges({"x": (1_000, 8_000)}, aggregate="avg", aggregate_column="z")
        sum_query = Query.from_ranges({"x": (1_000, 8_000)}, aggregate="sum", aggregate_column="z")

        avg_stats = index.execute(avg_query).stats
        main_sum_stats = index.base_index.execute(sum_query).stats
        buffer_scan = index.buffer.scan(avg_query)

        assert avg_stats.points_scanned == main_sum_stats.points_scanned + pending
        assert avg_stats.cell_ranges == main_sum_stats.cell_ranges + buffer_scan.stats.cell_ranges
        assert avg_stats.rows_matched == main_sum_stats.rows_matched + buffer_scan.matched
        assert avg_stats.dims_accessed == main_sum_stats.dims_accessed + buffer_scan.stats.dims_accessed

    def test_avg_value_still_exact(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(30, seed=14)
        index.insert_many(rows)
        reference = reference_table(index, rows)
        query = Query.from_ranges({"x": (500, 9_500)}, aggregate="avg", aggregate_column="y")
        expected, _ = execute_full_scan(reference, query)
        assert index.execute(query).value == pytest.approx(expected)


def _same_value(left: float, right: float) -> bool:
    if np.isnan(left) or np.isnan(right):
        return np.isnan(left) and np.isnan(right)
    return left == right


class TestReporting:
    def test_index_size_includes_buffer(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        before = index.index_size_bytes()
        index.insert_many(new_rows(10))
        assert index.index_size_bytes() == before + 10 * 8 * len(fresh_table.column_names)

    def test_describe_reports_pending_and_merges(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        index.insert_many(new_rows(3))
        info = index.describe()
        assert info["pending_inserts"] == 3
        assert info["num_merges"] == 0
        assert info["base_index"]["name"] == "kd-tree"

    def test_execute_workload_accumulates_buffer_scans(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        index.insert_many(new_rows(20))
        results, total = index.execute_workload(fresh_workload)
        assert len(results) == len(fresh_workload)
        assert total.points_scanned >= 20 * len(fresh_workload)
