"""Tests for insert support via delta buffers (§8 extension, repro.core.delta)."""

import numpy as np
import pytest

from repro.baselines import FloodIndex, KdTreeIndex
from repro.common.errors import IndexBuildError, SchemaError
from repro.core.delta import DeltaBufferedIndex
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.storage.table import Table


def tsunami_factory():
    return TsunamiIndex(TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=2_000))


def new_rows(count: int, seed: int = 21) -> list[dict]:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(count):
        x = int(rng.integers(0, 10_000))
        rows.append({"x": x, "y": 3 * x, "z": int(rng.integers(0, 1_000)), "c": int(rng.integers(0, 8))})
    return rows


def reference_table(index: DeltaBufferedIndex, inserted: list[dict]) -> Table:
    """The table queries should behave as if they ran against (main + inserts)."""
    base = index.base_index.table
    data = {}
    for name in base.column_names:
        extra = np.array([row[name] for row in inserted], dtype=np.int64)
        data[name] = np.concatenate([base.values(name), extra]) if inserted else base.values(name)
    return Table.from_arrays("reference", data)


class TestBuildAndInsert:
    def test_inserts_visible_to_count_queries(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(50)
        index.insert_many(rows)
        assert index.num_pending == 50
        reference = reference_table(index, rows)
        for query in list(fresh_workload)[:15]:
            expected, _ = execute_full_scan(reference, query)
            assert index.execute(query).value == expected

    @pytest.mark.parametrize(
        "aggregate", ["count", "sum", "avg", "min", "max"]
    )
    def test_all_aggregates_combine_correctly(self, fresh_table, fresh_workload, aggregate):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(30, seed=4)
        index.insert_many(rows)
        reference = reference_table(index, rows)
        column = None if aggregate == "count" else "z"
        query = Query.from_ranges(
            {"x": (1_000, 8_000)}, aggregate=aggregate, aggregate_column=column
        )
        expected, _ = execute_full_scan(reference, query)
        assert index.execute(query).value == pytest.approx(expected)

    def test_num_rows_counts_pending(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        base_rows = index.base_index.table.num_rows
        index.insert_many(new_rows(7))
        assert index.num_rows == base_rows + 7

    def test_missing_column_rejected(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        with pytest.raises(SchemaError):
            index.insert({"x": 1, "y": 2})

    def test_unencodable_value_rejected(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        with pytest.raises(SchemaError):
            index.insert({"x": "not-a-number", "y": 0, "z": 0, "c": 0})

    def test_operations_before_build_raise(self):
        index = DeltaBufferedIndex(tsunami_factory)
        with pytest.raises(IndexBuildError):
            index.insert({"x": 1})
        with pytest.raises(IndexBuildError):
            index.execute(Query.from_ranges({"x": (0, 1)}))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            DeltaBufferedIndex(tsunami_factory, merge_threshold=-1)


class TestMerging:
    def test_manual_merge_folds_buffer(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: FloodIndex(optimizer_iterations=1), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(40, seed=9)
        index.insert_many(rows)
        report = index.merge()
        assert report.rows_merged == 40
        assert index.num_pending == 0
        assert index.base_index.table.num_rows == 5_000 + 40
        reference = index.base_index.table
        for query in list(fresh_workload)[:10]:
            expected, _ = execute_full_scan(reference, query)
            assert index.execute(query).value == expected

    def test_merge_on_empty_buffer_is_noop(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        assert index.merge() is None
        assert index.merge_history == []

    def test_threshold_triggers_automatic_merge(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10)
        index.build(fresh_table, fresh_workload)
        index.insert_many(new_rows(25, seed=2))
        assert index.num_pending < 10
        assert len(index.merge_history) >= 2

    def test_queries_correct_across_merge_boundary(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=20)
        index.build(fresh_table, fresh_workload)
        rows = new_rows(45, seed=6)
        index.insert_many(rows)
        # Some rows were merged into the base table, the rest are pending; the
        # reference is therefore the base table plus the still-pending tail.
        pending = index.num_pending
        reference = reference_table(index, rows[len(rows) - pending :])
        query = Query.from_ranges({"x": (0, 10_000)})
        expected, _ = execute_full_scan(reference, query)
        assert index.execute(query).value == expected


class TestReporting:
    def test_index_size_includes_buffer(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        before = index.index_size_bytes()
        index.insert_many(new_rows(10))
        assert index.index_size_bytes() == before + 10 * 8 * len(fresh_table.column_names)

    def test_describe_reports_pending_and_merges(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        index.insert_many(new_rows(3))
        info = index.describe()
        assert info["pending_inserts"] == 3
        assert info["num_merges"] == 0
        assert info["base_index"]["name"] == "kd-tree"

    def test_execute_workload_accumulates_buffer_scans(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=512), merge_threshold=10_000)
        index.build(fresh_table, fresh_workload)
        index.insert_many(new_rows(20))
        results, total = index.execute_workload(fresh_workload)
        assert len(results) == len(fresh_workload)
        assert total.points_scanned >= 20 * len(fresh_workload)
