"""Tests for the SQL front-end (repro.query.sql)."""

import numpy as np
import pytest

from repro.baselines import KdTreeIndex
from repro.common.errors import QueryError
from repro.query.engine import execute_full_scan
from repro.query.sql import execute_sql, parse_query, parse_statement
from repro.storage.table import Table


def sales_table(num_rows: int = 2_000, seed: int = 8) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        "sales",
        {
            "year": rng.integers(2016, 2021, num_rows).tolist(),
            "amount": np.round(rng.uniform(1, 1_000, num_rows), 2).tolist(),
            "region": [["east", "north", "south", "west"][i] for i in rng.integers(0, 4, num_rows)],
        },
    )


class TestParseStatement:
    def test_count_star(self):
        statement = parse_statement("SELECT COUNT(*) FROM sales")
        assert statement.aggregate == "count"
        assert statement.aggregate_column is None
        assert statement.table_name == "sales"
        assert statement.conditions == ()

    @pytest.mark.parametrize(
        "aggregate", ["SUM", "AVG", "MIN", "MAX", "sum", "avg"]
    )
    def test_column_aggregates(self, aggregate):
        statement = parse_statement(f"SELECT {aggregate}(amount) FROM sales")
        assert statement.aggregate == aggregate.lower()
        assert statement.aggregate_column == "amount"

    def test_table_qualified_columns_are_stripped(self):
        statement = parse_statement(
            "SELECT SUM(R.amount) FROM sales WHERE R.year >= 2019 AND R.year <= 2020"
        )
        assert statement.aggregate_column == "amount"
        assert statement.conditions[0][0] == "year"

    def test_between_produces_two_conditions(self):
        statement = parse_statement(
            "SELECT COUNT(*) FROM sales WHERE year BETWEEN 2018 AND 2020"
        )
        operators = {op for _, op, _ in statement.conditions}
        assert operators == {"between_low", "between_high"}

    def test_between_combined_with_other_conditions(self):
        statement = parse_statement(
            "SELECT COUNT(*) FROM sales WHERE year BETWEEN 2018 AND 2020 AND amount >= 10"
        )
        assert len(statement.conditions) == 3

    def test_trailing_semicolon_and_newlines(self):
        statement = parse_statement(
            "SELECT COUNT(*)\nFROM sales\nWHERE year = 2019;\n"
        )
        assert statement.conditions == (("year", "=", "2019"),)

    def test_sum_star_rejected(self):
        with pytest.raises(QueryError):
            parse_statement("SELECT SUM(*) FROM sales")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            parse_statement("SELECT MEDIAN(amount) FROM sales")

    def test_unsupported_shape_rejected(self):
        with pytest.raises(QueryError):
            parse_statement("SELECT amount FROM sales")
        with pytest.raises(QueryError):
            parse_statement("DELETE FROM sales")

    def test_unparseable_condition_rejected(self):
        with pytest.raises(QueryError):
            parse_statement("SELECT COUNT(*) FROM sales WHERE year LIKE '%9'")


class TestParseQuery:
    def test_equality_on_string_column(self):
        table = sales_table()
        query = parse_query("SELECT COUNT(*) FROM sales WHERE region = 'east'", table)
        code = table.column("region").to_storage("east")
        assert query.filters() == {"region": (code, code)}

    def test_float_bounds_use_fixed_point_scaling(self):
        table = sales_table()
        query = parse_query(
            "SELECT COUNT(*) FROM sales WHERE amount BETWEEN 10.5 AND 20.25", table
        )
        low, high = query.filters()["amount"]
        assert low == table.column("amount").to_storage(10.5)
        assert high == table.column("amount").to_storage(20.25)

    def test_strict_inequalities_shrink_bounds(self):
        table = sales_table()
        query = parse_query(
            "SELECT COUNT(*) FROM sales WHERE year > 2017 AND year < 2020", table
        )
        assert query.filters()["year"] == (2018, 2019)

    def test_repeated_conditions_intersect(self):
        table = sales_table()
        query = parse_query(
            "SELECT COUNT(*) FROM sales WHERE year >= 2017 AND year >= 2019 AND year <= 2020",
            table,
        )
        assert query.filters()["year"] == (2019, 2020)

    def test_contradictory_conditions_rejected(self):
        table = sales_table()
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM sales WHERE year > 2020 AND year < 2018", table)

    def test_unknown_filter_column_rejected(self):
        table = sales_table()
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM sales WHERE month = 3", table)

    def test_unknown_aggregate_column_rejected(self):
        table = sales_table()
        with pytest.raises(QueryError):
            parse_query("SELECT SUM(revenue) FROM sales", table)

    def test_count_of_column_behaves_like_count_star(self):
        table = sales_table()
        query = parse_query("SELECT COUNT(amount) FROM sales WHERE year = 2019", table)
        assert query.aggregate == "count"
        assert query.aggregate_column is None


class TestExecution:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(*) FROM sales",
            "SELECT COUNT(*) FROM sales WHERE year BETWEEN 2017 AND 2019",
            "SELECT SUM(year) FROM sales WHERE amount <= 500.0",
            "SELECT AVG(year) FROM sales WHERE region = 'west'",
            "SELECT MIN(year) FROM sales WHERE amount > 100 AND amount < 900",
            "SELECT MAX(year) FROM sales WHERE region >= 'north' AND region <= 'south'",
        ],
    )
    def test_results_match_full_scan(self, sql):
        table = sales_table()
        index = KdTreeIndex(page_size=256).build(table, None)
        query = parse_query(sql, index.table)
        expected, _ = execute_full_scan(index.table, query)
        assert execute_sql(sql, index) == pytest.approx(expected)

    def test_empty_result_counts_zero(self):
        table = sales_table()
        index = KdTreeIndex(page_size=256).build(table, None)
        assert execute_sql("SELECT COUNT(*) FROM sales WHERE year = 1999", index) == 0
