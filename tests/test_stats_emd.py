"""Tests for repro.stats.emd."""

import numpy as np
import pytest

from repro.stats.emd import earth_movers_distance, uniform_like


class TestEarthMoversDistance:
    def test_identical_distributions(self):
        p = np.array([1.0, 2.0, 3.0])
        assert earth_movers_distance(p, p) == 0.0

    def test_symmetric(self):
        p = np.array([1.0, 0.0, 0.0])
        q = np.array([0.0, 0.0, 1.0])
        assert earth_movers_distance(p, q) == earth_movers_distance(q, p)

    def test_moving_one_bin(self):
        # Moving all mass by one bin out of two costs 1 cumulative step.
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert earth_movers_distance(p, q) == pytest.approx(1.0)

    def test_farther_is_larger(self):
        p = np.array([1.0, 0.0, 0.0])
        near = np.array([0.0, 1.0, 0.0])
        far = np.array([0.0, 0.0, 1.0])
        assert earth_movers_distance(p, far) > earth_movers_distance(p, near)

    def test_unnormalized_inputs_are_normalized(self):
        p = np.array([2.0, 0.0])
        q = np.array([0.0, 8.0])
        assert earth_movers_distance(p, q) == pytest.approx(1.0)

    def test_zero_distributions(self):
        zero = np.zeros(4)
        assert earth_movers_distance(zero, zero) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            earth_movers_distance(np.zeros(2), np.zeros(3))

    def test_empty(self):
        assert earth_movers_distance(np.array([]), np.array([])) == 0.0


class TestUniformLike:
    def test_preserves_total_mass(self):
        mass = np.array([3.0, 1.0, 0.0, 0.0])
        uniform = uniform_like(mass)
        assert uniform.sum() == pytest.approx(4.0)
        assert np.allclose(uniform, 1.0)

    def test_empty(self):
        assert uniform_like(np.array([])).size == 0
