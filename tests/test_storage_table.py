"""Tests for repro.storage.table."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.storage.column import Column
from repro.storage.table import Table


def make_table(num_rows: int = 100) -> Table:
    rng = np.random.default_rng(0)
    return Table.from_arrays(
        "t",
        {
            "a": rng.integers(0, 50, num_rows),
            "b": rng.integers(0, 1000, num_rows),
        },
    )


class TestTableConstruction:
    def test_from_dict_infers_encodings(self):
        table = Table.from_dict(
            "mixed", {"i": [1, 2], "f": [1.5, 2.5], "s": ["x", "y"]}
        )
        assert table.num_rows == 2
        assert table.column("f").scaler is not None
        assert table.column("s").dictionary is not None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError, match="differing lengths"):
            Table("bad", [Column("a", np.array([1])), Column("b", np.array([1, 2]))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Table("bad", [Column("a", np.array([1])), Column("a", np.array([2]))])

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("bad", [])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", [Column("a", np.array([1]))])


class TestTableAccess:
    def test_basic_metadata(self):
        table = make_table(30)
        assert len(table) == 30
        assert table.num_dimensions == 2
        assert table.column_names == ["a", "b"]
        assert "a" in table and "z" not in table

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError, match="no column"):
            make_table().column("missing")

    def test_bounds(self):
        table = Table.from_arrays("t", {"a": np.array([5, 1, 9])})
        assert table.bounds("a") == (1, 9)

    def test_matrix_shape_and_order(self):
        table = make_table(10)
        matrix = table.matrix(["b", "a"])
        assert matrix.shape == (10, 2)
        assert np.array_equal(matrix[:, 0], table.values("b"))

    def test_size_bytes(self):
        # Narrow storage: a (uint8) + b (int16) = 3 bytes per row.
        assert make_table(100).size_bytes() == 300

    def test_describe_reports_dtype_breakdown(self):
        info = make_table(100).describe()
        assert info["num_rows"] == 100
        assert info["size_bytes"] == 300
        assert info["bytes_per_value"] == 1.5
        assert [col["dtype"] for col in info["columns"]] == ["uint8", "int16"]


class TestReorderAndSubset:
    def test_reorder_keeps_rows_together(self):
        table = Table.from_arrays(
            "t", {"a": np.array([1, 2, 3]), "b": np.array([10, 20, 30])}
        )
        table.reorder(np.array([2, 1, 0]))
        assert table.values("a").tolist() == [3, 2, 1]
        assert table.values("b").tolist() == [30, 20, 10]

    def test_reorder_non_permutation_rejected(self):
        table = make_table(5)
        with pytest.raises(SchemaError):
            table.reorder(np.array([0, 0, 1, 2, 3]))

    def test_reorder_wrong_length_rejected(self):
        table = make_table(5)
        with pytest.raises(SchemaError):
            table.reorder(np.arange(4))

    def test_sample_rows(self):
        table = make_table(100)
        sample = table.sample_rows(10, np.random.default_rng(1))
        assert sample.num_rows == 10
        assert sample.column_names == table.column_names

    def test_sample_larger_than_table(self):
        table = make_table(5)
        assert table.sample_rows(50, np.random.default_rng(1)).num_rows == 5

    def test_subset_selects_rows(self):
        table = Table.from_arrays("t", {"a": np.array([10, 20, 30, 40])})
        subset = table.subset(np.array([1, 3]))
        assert subset.values("a").tolist() == [20, 40]

    def test_subset_preserves_encodings(self):
        table = Table.from_dict("t", {"s": ["a", "b", "c"]})
        subset = table.subset(np.array([2]))
        assert subset.column("s").to_user(int(subset.values("s")[0])) == "c"
