"""Tests for localized structural updates (repro.core.local_merge, PR 10).

The local merge path must be observationally identical to the legacy
whole-index rebuild: same query answers, same merged column dtypes, same
sorted row multiset — only the amount of work differs.  These tests pin
that equivalence on fixed streams, on hypothesis-generated interleavings
(including dtype-overflow and far-out-of-domain inserts), and across a
persistence round trip.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import KdTreeIndex
from repro.common.errors import SchemaError
from repro.core.delta import DeltaBufferedIndex
from repro.core.local_merge import (
    DEFAULT_SPLIT_THRESHOLD,
    local_merge,
    supports_local_merge,
)
from repro.core.outliers import OutlierBoundedMapping
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload
from repro.stats.correlation import BoundedLinearModel
from repro.storage.column import Column
from repro.storage.persistence import load_index, load_table, save_index, save_table
from repro.storage.table import Table


def tsunami_factory():
    return TsunamiIndex(TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=2_000))


def make_table(num_rows: int = 2_000, seed: int = 3) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 10_000, num_rows)
    return Table.from_arrays(
        "local", {"x": x, "y": x * 3 + rng.integers(-50, 51, num_rows), "z": rng.integers(0, 120, num_rows)}
    )


def make_workload(seed: int = 5, count: int = 24) -> Workload:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        low = int(rng.integers(0, 9_000))
        queries.append(
            Query.from_ranges({"x": (low, low + int(rng.integers(200, 1_500))), "z": (0, int(rng.integers(40, 120)))})
        )
    return Workload(queries, name="local-merge")


def make_rows(count: int, seed: int, x_low: int = 0, x_high: int = 10_000) -> list[dict]:
    rng = np.random.default_rng(seed)
    return [
        {
            "x": int(rng.integers(x_low, x_high)),
            "y": int(rng.integers(-200, 30_000)),
            "z": int(rng.integers(0, 120)),
        }
        for _ in range(count)
    ]


def probe_queries() -> list[Query]:
    probes = list(make_workload(seed=17, count=12))
    # Out-of-domain probe: rows inserted past the build-time domain must be
    # reachable through the widened edge regions.
    probes.append(Query.from_ranges({"x": (10_000, 10**13), "z": (0, 120)}))
    probes.append(Query.from_ranges({"x": (-(10**13), 0), "z": (0, 120)}))
    return probes


def build_pair(table_seed: int = 3) -> tuple[DeltaBufferedIndex, DeltaBufferedIndex]:
    """Two identical delta indexes differing only in merge strategy."""
    pair = []
    for strategy in ("local", "rebuild"):
        index = DeltaBufferedIndex(
            tsunami_factory, merge_threshold=1_000_000, merge_strategy=strategy
        )
        index.build(make_table(seed=table_seed), make_workload())
        pair.append(index)
    return pair[0], pair[1]


def assert_identical(local: DeltaBufferedIndex, rebuild: DeltaBufferedIndex) -> None:
    for query in probe_queries():
        left = local.execute(query)
        right = rebuild.execute(query)
        assert left.value == right.value
        assert left.stats.rows_matched == right.stats.rows_matched
    for name in local.base_index.table.column_names:
        left_values = np.sort(np.asarray(local.base_index.table.values(name), dtype=np.int64))
        right_values = np.sort(np.asarray(rebuild.base_index.table.values(name), dtype=np.int64))
        np.testing.assert_array_equal(left_values, right_values)
        assert local.base_index.table.column(name).dtype == rebuild.base_index.table.column(name).dtype


# ---------------------------------------------------------------------------
# Ranged reorder primitives
# ---------------------------------------------------------------------------


class TestReorderRows:
    def test_column_ranged_reorder_permutes_only_the_slice(self):
        column = Column("x", np.arange(10, dtype=np.int64))
        column.reorder_rows(np.array([2, 0, 1]), 4, 7)
        np.testing.assert_array_equal(
            column.values, [0, 1, 2, 3, 6, 4, 5, 7, 8, 9]
        )

    def test_table_ranged_reorder_keeps_rows_aligned(self):
        table = make_table(200)
        before = {name: np.array(table.values(name)) for name in table.column_names}
        rows = np.random.default_rng(0).permutation(60)
        table.reorder_rows(rows, 100, 160)
        for name in table.column_names:
            np.testing.assert_array_equal(table.values(name)[:100], before[name][:100])
            np.testing.assert_array_equal(table.values(name)[160:], before[name][160:])
            np.testing.assert_array_equal(
                table.values(name)[100:160], before[name][100:160][rows]
            )

    def test_dtype_and_meta_unchanged(self):
        column = Column("x", np.arange(50, dtype=np.int64))
        dtype, meta = column.dtype, column.meta
        column.reorder_rows(np.arange(10)[::-1], 20, 30)
        assert column.dtype == dtype
        assert column.meta == meta

    def test_non_bijection_rejected(self):
        table = make_table(50)
        with pytest.raises(SchemaError):
            table.reorder_rows(np.array([0, 0, 1]), 0, 3)

    def test_wrong_shape_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", np.arange(10)).reorder_rows(np.array([0, 1]), 0, 3)

    def test_out_of_range_slice_rejected(self):
        column = Column("x", np.arange(10))
        with pytest.raises(SchemaError):
            column.reorder_rows(np.array([0]), 9, 11)
        with pytest.raises(SchemaError):
            column.reorder_rows(np.array([0]), -1, 0)

    def test_memory_mapped_column_copied_to_heap(self, tmp_path):
        save_table(make_table(100), tmp_path)
        table = load_table(tmp_path, mmap_mode="r")
        column = table.column("x")
        assert column.is_memory_mapped
        before = np.array(table.values("x"))
        table.reorder_rows(np.arange(20)[::-1], 10, 30)
        np.testing.assert_array_equal(table.values("x")[10:30], before[10:30][::-1])
        # The read-only mmap backing was replaced by a private heap copy.
        assert not table.column("x").is_memory_mapped


# ---------------------------------------------------------------------------
# Local merge vs rebuild
# ---------------------------------------------------------------------------


class TestLocalMerge:
    def test_supports_local_merge(self):
        assert not supports_local_merge(KdTreeIndex())
        index = tsunami_factory()
        assert not supports_local_merge(index)
        index.build(make_table(), make_workload())
        assert supports_local_merge(index)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            DeltaBufferedIndex(tsunami_factory, merge_strategy="eager")
        with pytest.raises(ValueError):
            DeltaBufferedIndex(tsunami_factory, split_threshold=-0.5)

    def test_local_merge_matches_rebuild_on_fixed_stream(self):
        local, rebuild = build_pair()
        for seed in (11, 12, 13):
            rows = make_rows(400, seed)
            local.insert_many(rows)
            rebuild.insert_many(rows)
            local.merge()
            rebuild.merge()
        assert [r.strategy for r in local.merge_history] == ["local"] * 3
        assert [r.strategy for r in rebuild.merge_history] == ["rebuild"] * 3
        assert_identical(local, rebuild)

    def test_out_of_domain_inserts_reach_edge_regions(self):
        local, rebuild = build_pair()
        rows = make_rows(100, 21, x_low=500_000, x_high=600_000)
        rows += [{"x": -40_000, "y": 0, "z": 5}] * 10
        local.insert_many(rows)
        rebuild.insert_many(rows)
        local.merge()
        rebuild.merge()
        probe = Query.from_ranges({"x": (500_000, 600_000), "z": (0, 120)})
        assert local.execute(probe).value == rebuild.execute(probe).value == 100
        low_probe = Query.from_ranges({"x": (-40_000, -39_999), "z": (0, 120)})
        assert local.execute(low_probe).value == rebuild.execute(low_probe).value == 10
        assert_identical(local, rebuild)

    def test_dtype_overflow_widens_only_touched_columns(self):
        local, rebuild = build_pair()
        narrow_before = local.base_index.table.column("z").dtype
        rows = [{"x": 5_000, "y": 2**40, "z": 7}] * 8
        local.insert_many(rows)
        rebuild.insert_many(rows)
        local.merge()
        rebuild.merge()
        assert local.base_index.table.column("y").dtype == np.dtype(np.int64)
        assert local.base_index.table.column("z").dtype == narrow_before
        assert_identical(local, rebuild)

    def test_merge_report_counts_touched_regions(self):
        local, _ = build_pair()
        local.insert_many(make_rows(50, 31, x_low=100, x_high=300))
        report = local.merge()
        assert report.strategy == "local"
        assert report.rows_merged == 50
        assert 1 <= report.regions_touched <= report.regions_total
        # A tight insert hotspot must not touch the whole region set.
        assert report.regions_touched < report.regions_total

    def test_untouched_regions_keep_row_data(self):
        local, _ = build_pair()
        index = local.base_index
        untouched = [
            region
            for region in index._regions
            if region.node.bounds["x"][1] < 100 or region.node.bounds["x"][0] > 300
        ]
        before = {
            region.node.region_id: np.array(
                index.table.values("x")[region.row_offset : region.row_offset + region.num_rows]
            )
            for region in untouched
        }
        local.insert_many(make_rows(50, 31, x_low=100, x_high=300))
        local.merge()
        for region in index._regions:
            if region.node.region_id in before:
                now = index.table.values("x")[
                    region.row_offset : region.row_offset + region.num_rows
                ]
                np.testing.assert_array_equal(now, before[region.node.region_id])

    def test_empty_region_split_path(self):
        """Inserts routed into zero-row regions (the bimodal gap) must work."""
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.integers(0, 500, 1_500), rng.integers(90_000, 99_000, 1_500)])
        table = {"x": x, "y": x * 3, "z": rng.integers(0, 100, 3_000)}
        gap_queries = [
            Query.from_ranges({"x": (40_000 + i * 500, 41_000 + i * 500), "z": (0, 50)})
            for i in range(8)
        ] + [
            Query.from_ranges({"x": (i * 50, i * 50 + 100), "z": (0, 50)})
            for i in range(8)
        ]
        workload = Workload(gap_queries)
        indexes = {}
        for strategy in ("local", "rebuild"):
            index = DeltaBufferedIndex(
                tsunami_factory, merge_threshold=1_000_000, merge_strategy=strategy
            )
            index.build(Table.from_arrays("bimodal", dict(table)), workload)
            indexes[strategy] = index
        assert any(r.num_rows == 0 for r in indexes["local"].base_index._regions)
        rows = make_rows(120, 41, x_low=40_000, x_high=45_000)
        for index in indexes.values():
            index.insert_many(rows)
            index.merge()
        probe = Query.from_ranges({"x": (40_000, 45_000), "z": (0, 120)})
        assert indexes["local"].execute(probe).value == indexes["rebuild"].execute(probe).value == 120
        for query in gap_queries:
            assert (
                indexes["local"].execute(query).value
                == indexes["rebuild"].execute(query).value
            )

    def test_local_merge_result_reports_splits(self):
        index = tsunami_factory()
        index.build(make_table(), make_workload())
        region = max(index._regions, key=lambda r: r.num_rows)
        low, high = region.node.bounds["x"]
        rng = np.random.default_rng(51)
        count = max(64, int(region.num_rows * 2))
        xs = rng.integers(max(int(low), 0), max(int(high), 1), count)
        buffer_columns = {
            "x": xs.astype(np.int64),
            "y": (xs * 3).astype(np.int64),
            "z": rng.integers(0, 120, count).astype(np.int64),
        }
        outcome = local_merge(index, buffer_columns, split_threshold=DEFAULT_SPLIT_THRESHOLD)
        assert outcome.rows_merged == count
        assert outcome.regions_split >= 1
        assert outcome.regions_touched <= outcome.regions_total

    def test_explain_and_describe_report_strategy(self):
        local, _ = build_pair()
        assert local.describe()["merge_strategy"] == "local"
        assert local.describe()["split_threshold"] == DEFAULT_SPLIT_THRESHOLD
        local.insert_many(make_rows(64, 61))
        local.merge()
        plan = local.explain(probe_queries()[0])
        assert plan["merge_strategy"] == "local"
        last = plan["last_merge"]
        assert last["strategy"] == "local"
        assert last["rows_merged"] == 64
        assert last["regions_touched"] <= last["regions_total"]
        described = local.describe()["last_merge"]
        assert described["strategy"] == "local"

    def test_rebuild_escape_hatch(self):
        index = DeltaBufferedIndex(
            tsunami_factory, merge_threshold=1_000_000, merge_strategy="rebuild"
        )
        index.build(make_table(), make_workload())
        index.insert_many(make_rows(32, 71))
        report = index.merge()
        assert report.strategy == "rebuild"
        assert report.regions_touched is None
        assert index.describe()["merge_strategy"] == "rebuild"

    def test_non_tsunami_base_falls_back_to_rebuild(self):
        index = DeltaBufferedIndex(
            lambda: KdTreeIndex(page_size=512), merge_threshold=1_000_000
        )
        index.build(make_table(), make_workload())
        index.insert_many(make_rows(32, 81))
        report = index.merge()
        assert report.strategy == "rebuild"


# ---------------------------------------------------------------------------
# Incremental absorb: model reuse and mapping-bound widening
# ---------------------------------------------------------------------------


class TestAbsorbModelReuse:
    def test_absorbing_regions_keep_cdf_models_by_identity(self):
        """Absorb must fold rows into the fitted grid, not refit it: the new
        grid object of every absorbed region shares the old grid's CDF model
        objects (only the sweep over the appended rows runs)."""
        local, _ = build_pair()
        index = local.base_index
        grids_before = {
            region.node.region_id: region.grid for region in index._regions
        }
        local.insert_many(make_rows(50, 31, x_low=100, x_high=300))
        report = local.merge()
        assert report.strategy == "local"
        touched = [
            (region, grids_before[region.node.region_id])
            for region in index._regions
            if region.grid is not None
            and grids_before[region.node.region_id] is not None
            and region.grid is not grids_before[region.node.region_id]
        ]
        assert touched
        modeled = [
            (region, old) for region, old in touched if old._cdf_models
        ]
        assert modeled, "expected at least one touched region with CDF models"
        for region, old in modeled:
            for dim, model in old._cdf_models.items():
                assert region.grid._cdf_models[dim] is model

    def test_widened_linear_model_covers_appended_rows(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 10_000, 500).astype(np.float64)
        x = y * 2 + rng.integers(-50, 51, 500)
        model = BoundedLinearModel.fit(y, x)
        appended_y = np.array([20_000.0, 25_000.0])
        appended_x = np.array([70_000.0, 10_000.0])  # far off the fit line
        widened = model.widened(appended_y, appended_x)
        assert widened.slope == model.slope
        assert widened.intercept == model.intercept
        for yy, xx in [*zip(y, x), *zip(appended_y, appended_x)]:
            low, high = widened.map_range(float(yy), float(yy))
            assert low <= xx <= high
        # The original model need not cover them (that is the point).
        low, high = model.map_range(25_000.0, 25_000.0)
        assert not (low <= 10_000.0 <= high)

    def test_widened_outlier_mapping_covers_appended_rows(self):
        rng = np.random.default_rng(9)
        y = rng.integers(0, 10_000, 400).astype(np.float64)
        x = y * 3 + rng.integers(-20, 21, 400)
        x[:4] = [90_000.0, -5_000.0, 80_000.0, -1_000.0]  # buffered outliers
        mapping = OutlierBoundedMapping.fit(y, x)
        appended_y = np.array([30_000.0])
        appended_x = np.array([200_000.0])
        widened = mapping.widened(appended_y, appended_x)
        assert widened.num_outliers == mapping.num_outliers
        low, high = widened.map_range(30_000.0, 30_000.0)
        assert low <= 200_000.0 <= high
        for yy, xx in zip(y, x):
            low, high = widened.map_range(float(yy), float(yy))
            assert low <= xx <= high


# ---------------------------------------------------------------------------
# Persistence round trip after a local merge
# ---------------------------------------------------------------------------


class TestPersistenceAfterLocalMerge:
    def test_round_trip_preserves_values_dtypes_and_mmap(self, tmp_path):
        local, rebuild = build_pair()
        rows = make_rows(300, 91) + [{"x": 5_000, "y": 2**40, "z": 7}] * 4
        local.insert_many(rows)
        rebuild.insert_many(rows)
        local.merge()
        rebuild.merge()
        save_index(local, tmp_path)

        loaded = load_index(tmp_path, mmap_mode="r")
        assert loaded.merge_strategy == "local"
        assert loaded.split_threshold == DEFAULT_SPLIT_THRESHOLD
        for name in local.base_index.table.column_names:
            np.testing.assert_array_equal(
                loaded.base_index.table.values(name), local.base_index.table.values(name)
            )
            assert (
                loaded.base_index.table.column(name).dtype
                == local.base_index.table.column(name).dtype
            )
            assert loaded.base_index.table.column(name).is_memory_mapped
        assert_identical(loaded, rebuild)

    def test_loaded_index_keeps_merging_locally(self, tmp_path):
        local, rebuild = build_pair()
        local.insert_many(make_rows(200, 93))
        rebuild.insert_many(make_rows(200, 93))
        local.merge()
        rebuild.merge()
        save_index(local, tmp_path)
        loaded = load_index(tmp_path, mmap_mode="r")
        more = make_rows(150, 94)
        loaded.insert_many(more)
        rebuild.insert_many(more)
        report = loaded.merge()
        rebuild.merge()
        assert report.strategy == "local"
        assert_identical(loaded, rebuild)


# ---------------------------------------------------------------------------
# Hypothesis: differential over random interleavings
# ---------------------------------------------------------------------------


row_strategy = st.fixed_dictionaries(
    {
        # Mix of in-domain, far-out-of-domain, and dtype-overflow values.
        "x": st.one_of(
            st.integers(0, 10_000),
            st.integers(-(2**35), -1),
            st.integers(10_001, 2**35),
        ),
        "y": st.one_of(st.integers(-200, 30_000), st.integers(2**33, 2**45)),
        "z": st.integers(0, 120),
    }
)

op_strategy = st.one_of(
    st.tuples(st.just("insert"), st.lists(row_strategy, min_size=1, max_size=40)),
    st.tuples(st.just("merge"), st.none()),
    st.tuples(st.just("query"), st.integers(0, 13)),
)


class TestDifferentialProperties:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(ops=st.lists(op_strategy, min_size=2, max_size=8))
    def test_random_interleavings_match_rebuild(self, ops):
        local, rebuild = build_pair(table_seed=9)
        probes = probe_queries()
        for op, payload in ops:
            if op == "insert":
                local.insert_many(payload)
                rebuild.insert_many(payload)
            elif op == "merge":
                local.merge()
                rebuild.merge()
            else:
                query = probes[payload % len(probes)]
                left = local.execute(query)
                right = rebuild.execute(query)
                assert left.value == right.value
                assert left.stats.rows_matched == right.stats.rows_matched
        local.merge()
        rebuild.merge()
        assert_identical(local, rebuild)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        rows=st.lists(row_strategy, min_size=1, max_size=60),
        seed=st.integers(0, 2**16),
    )
    def test_merged_index_matches_full_scan_oracle(self, rows, seed):
        index = DeltaBufferedIndex(
            tsunami_factory, merge_threshold=1_000_000, merge_strategy="local"
        )
        table = make_table(seed=11)
        reference = {
            name: np.concatenate(
                [
                    np.asarray(table.values(name), dtype=np.int64),
                    np.array([row[name] for row in rows], dtype=np.int64),
                ]
            )
            for name in table.column_names
        }
        index.build(table, make_workload())
        index.insert_many(rows)
        index.merge()
        oracle = Table.from_arrays("oracle", reference)
        rng = np.random.default_rng(seed)
        low = int(rng.integers(-(2**34), 2**34))
        probes = probe_queries() + [
            Query.from_ranges({"x": (low, low + int(rng.integers(1, 2**33))), "z": (0, 120)})
        ]
        for query in probes:
            expected, _ = execute_full_scan(oracle, query)
            assert index.execute(query).value == expected
