"""Property-based tests (hypothesis) on core data structures and invariants.

Each property is an invariant the paper's design relies on:

* CDF models are monotone and produce equal-depth partitions.
* The EMD is a metric-like quantity (non-negative, zero iff identical,
  symmetric) and query-histogram mass is conserved.
* The functional mapping's error bounds are a hard covering guarantee.
* Every index returns exactly the full-scan answer on arbitrary data and
  arbitrary queries.
* Clustered reorganization never loses or duplicates rows.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.baselines import KdTreeIndex, ZOrderIndex
from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
from repro.core.skeleton import Skeleton
from repro.core.skew import mass_emd
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.stats.cdf import EmpiricalCDF
from repro.stats.correlation import BoundedLinearModel
from repro.stats.emd import earth_movers_distance
from repro.stats.histogram import query_histogram
from repro.storage.scan import RowRange, coalesce_ranges
from repro.storage.table import Table

SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=100, deadline=None)

int_values = st.integers(min_value=-(10**6), max_value=10**6)
value_arrays = npst.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=1, max_value=400),
    elements=int_values,
)
mass_arrays = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=64),
    elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


class TestCdfProperties:
    @FAST
    @given(values=value_arrays, probes=st.lists(int_values, min_size=2, max_size=10))
    def test_monotone_and_bounded(self, values, probes):
        cdf = EmpiricalCDF(values)
        ordered = sorted(probes)
        evaluations = [cdf.evaluate(float(p)) for p in ordered]
        assert all(0.0 <= e <= 1.0 for e in evaluations)
        assert all(a <= b + 1e-12 for a, b in zip(evaluations, evaluations[1:]))

    @FAST
    @given(values=value_arrays, partitions=st.integers(min_value=1, max_value=32))
    def test_partition_ids_in_range_and_monotone(self, values, partitions):
        cdf = EmpiricalCDF(values)
        ids = cdf.partitions_of(np.sort(values), partitions)
        assert ids.min() >= 0 and ids.max() < partitions
        assert np.all(np.diff(ids) >= 0)

    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        partitions=st.integers(min_value=2, max_value=16),
    )
    def test_partitions_are_equal_depth_on_continuous_data(self, seed, partitions):
        values = np.random.default_rng(seed).integers(0, 10**9, 5_000)
        cdf = EmpiricalCDF(values)
        counts = np.bincount(cdf.partitions_of(values, partitions), minlength=partitions)
        assert counts.max() <= 2.0 * counts.mean() + 1


class TestEmdProperties:
    @FAST
    @given(mass=mass_arrays)
    def test_non_negative_and_zero_on_self(self, mass):
        assert earth_movers_distance(mass, mass) == pytest.approx(0.0, abs=1e-9)
        assert mass_emd(mass) >= 0.0

    @FAST
    @given(p=mass_arrays, seed=st.integers(0, 1000))
    def test_symmetry(self, p, seed):
        q = np.random.default_rng(seed).permutation(p)
        assert earth_movers_distance(p, q) == pytest.approx(
            earth_movers_distance(q, p), rel=1e-9, abs=1e-12
        )

    @FAST
    @given(mass=mass_arrays)
    def test_mass_emd_bounded_by_total(self, mass):
        assert mass_emd(mass) <= mass.sum() + 1e-9


class TestQueryHistogramProperties:
    @FAST
    @given(
        intervals=st.lists(
            st.tuples(st.floats(0, 999, allow_nan=False), st.floats(0, 999, allow_nan=False)).map(
                lambda pair: (min(pair), max(pair))
            ),
            min_size=0,
            max_size=30,
        ),
        bins=st.integers(min_value=1, max_value=64),
    )
    def test_total_mass_conserved(self, intervals, bins):
        histogram = query_histogram(intervals, 0.0, 1000.0, num_bins=bins)
        assert histogram.total == pytest.approx(len(intervals), abs=1e-6)


class TestFunctionalMappingProperties:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        noise=st.integers(min_value=0, max_value=5_000),
        low=st.integers(min_value=0, max_value=90_000),
        width=st.integers(min_value=1, max_value=10_000),
    )
    def test_error_bounds_always_cover(self, seed, noise, low, width):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 100_000, 2_000)
        x = y * 2 + rng.integers(-noise, noise + 1, 2_000)
        model = BoundedLinearModel.fit(mapped_values=y, target_values=x)
        high = low + width
        mask = (y >= low) & (y <= high)
        if not mask.any():
            return
        x_low, x_high = model.map_range(float(low), float(high))
        assert x[mask].min() >= x_low - 1e-6
        assert x[mask].max() <= x_high + 1e-6


class TestCoalesceProperties:
    @FAST
    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 200)).map(
                lambda pair: RowRange(pair[0], pair[0] + pair[1])
            ),
            min_size=0,
            max_size=30,
        )
    )
    def test_coalesced_ranges_cover_same_rows(self, ranges):
        covered = set()
        for row_range in ranges:
            covered.update(range(row_range.start, row_range.stop))
        merged = coalesce_ranges(ranges)
        merged_covered = set()
        for row_range in merged:
            merged_covered.update(range(row_range.start, row_range.stop))
        assert merged_covered == covered
        # Merged ranges are disjoint and sorted.
        for left, right in zip(merged, merged[1:]):
            assert left.stop <= right.start


class TestReorderProperties:
    @SLOW
    @given(seed=st.integers(0, 10_000))
    def test_permutation_preserves_multiset(self, seed):
        rng = np.random.default_rng(seed)
        table = Table.from_arrays(
            "t", {"a": rng.integers(0, 100, 500), "b": rng.integers(0, 100, 500)}
        )
        before = sorted(zip(table.values("a").tolist(), table.values("b").tolist()))
        table.reorder(rng.permutation(500))
        after = sorted(zip(table.values("a").tolist(), table.values("b").tolist()))
        assert before == after


class TestIndexCorrectnessProperties:
    @SLOW
    @given(
        seed=st.integers(0, 5_000),
        query_seed=st.integers(0, 5_000),
    )
    def test_indexes_match_full_scan_on_random_data(self, seed, query_seed):
        rng = np.random.default_rng(seed)
        table = Table.from_arrays(
            "rand",
            {
                "a": rng.integers(0, 1_000, 3_000),
                "b": (rng.integers(0, 1_000, 3_000) * 3 + rng.integers(0, 30, 3_000)),
                "c": rng.integers(0, 10, 3_000),
            },
        )
        query_rng = np.random.default_rng(query_seed)
        queries = []
        for _ in range(5):
            low_a = int(query_rng.integers(0, 900))
            low_b = int(query_rng.integers(0, 2_800))
            queries.append(
                Query.from_ranges(
                    {"a": (low_a, low_a + int(query_rng.integers(1, 200))),
                     "b": (low_b, low_b + int(query_rng.integers(1, 500)))}
                )
            )
        expected = [execute_full_scan(table, q)[0] for q in queries]

        kd = KdTreeIndex(page_size=256)
        kd.build(table, None)
        assert [kd.execute(q).value for q in queries] == expected

        zo = ZOrderIndex(page_size=256)
        zo.build(table, None)
        assert [zo.execute(q).value for q in queries] == expected

    @SLOW
    @given(
        seed=st.integers(0, 5_000),
        px=st.integers(1, 12),
        py=st.integers(1, 12),
    )
    def test_augmented_grid_matches_full_scan(self, seed, px, py):
        rng = np.random.default_rng(seed)
        table = Table.from_arrays(
            "g",
            {
                "x": rng.integers(0, 10_000, 2_000),
                "y": rng.integers(0, 10_000, 2_000),
            },
        )
        grid = AugmentedGrid(
            AugmentedGridConfig(
                skeleton=Skeleton.all_independent(["x", "y"]),
                partitions={"x": px, "y": py},
            )
        )
        permutation = grid.fit(table)
        table.reorder(permutation)
        query = Query.from_ranges({"x": (1_000, 4_000), "y": (2_000, 9_000)})
        expected, _ = execute_full_scan(table, query)
        from repro.storage.scan import ScanExecutor

        value, _ = ScanExecutor(table).execute(
            grid.ranges_for_query(query), query.filters(), "count", None
        )
        assert value == expected
