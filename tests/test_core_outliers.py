"""Tests for outlier-aware functional mappings (§8 extension, repro.core.outliers)."""

import numpy as np
import pytest

from repro.common.errors import IndexBuildError
from repro.core.outliers import OutlierBoundedMapping
from repro.stats.correlation import BoundedLinearModel


def correlated_with_outliers(
    num_rows: int = 4_000, num_outliers: int = 12, seed: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """Tightly correlated (y, x) pairs with a few rows pushed far off the line."""
    rng = np.random.default_rng(seed)
    y = rng.uniform(0, 10_000, num_rows)
    x = 2.5 * y + 100 + rng.normal(0, 5, num_rows)
    x[:num_outliers] += 50_000
    return y, x


class TestFitting:
    def test_outliers_are_buffered(self):
        y, x = correlated_with_outliers(num_outliers=12)
        mapping = OutlierBoundedMapping.fit(y, x)
        assert mapping.num_outliers == 12

    def test_clean_data_buffers_nothing_catastrophic(self):
        rng = np.random.default_rng(0)
        y = rng.uniform(0, 1_000, 2_000)
        x = 3 * y + rng.normal(0, 1, 2_000)
        mapping = OutlierBoundedMapping.fit(y, x)
        # A Gaussian tail may flag a handful of rows, but never more than the cap.
        assert mapping.num_outliers <= 0.05 * len(y)

    def test_inlier_error_much_tighter_than_plain_model(self):
        y, x = correlated_with_outliers()
        plain = BoundedLinearModel.fit(y, x)
        robust = OutlierBoundedMapping.fit(y, x)
        assert robust.error_span < plain.error_span / 100

    def test_fraction_cap_limits_buffer(self):
        y, x = correlated_with_outliers(num_rows=1_000, num_outliers=200)
        mapping = OutlierBoundedMapping.fit(y, x, max_outlier_fraction=0.02)
        assert mapping.num_outliers <= 20

    def test_zero_fraction_disables_buffering(self):
        y, x = correlated_with_outliers()
        mapping = OutlierBoundedMapping.fit(y, x, max_outlier_fraction=0.0)
        assert mapping.num_outliers == 0
        plain = BoundedLinearModel.fit(y, x)
        assert mapping.error_span == pytest.approx(plain.error_span)

    def test_constant_target_is_handled(self):
        y = np.arange(100, dtype=np.float64)
        x = np.full(100, 7.0)
        mapping = OutlierBoundedMapping.fit(y, x)
        low, high = mapping.map_range(10, 20)
        assert low <= 7.0 <= high

    def test_empty_input_rejected(self):
        with pytest.raises(IndexBuildError):
            OutlierBoundedMapping.fit(np.array([]), np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(IndexBuildError):
            OutlierBoundedMapping.fit(np.arange(5), np.arange(6))

    def test_invalid_fraction_rejected(self):
        y, x = correlated_with_outliers(num_rows=100)
        with pytest.raises(IndexBuildError):
            OutlierBoundedMapping.fit(y, x, max_outlier_fraction=1.5)


class TestCoveringGuarantee:
    """Every point with Y in the filter range must have X in the mapped range (§5.2.1)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_ranges_are_covered(self, seed):
        y, x = correlated_with_outliers(seed=seed)
        mapping = OutlierBoundedMapping.fit(y, x)
        rng = np.random.default_rng(seed + 100)
        for _ in range(25):
            y_low = float(rng.uniform(0, 9_000))
            y_high = y_low + float(rng.uniform(10, 1_000))
            x_low, x_high = mapping.map_range(y_low, y_high)
            mask = (y >= y_low) & (y <= y_high)
            assert np.all(x[mask] >= x_low - 1e-9)
            assert np.all(x[mask] <= x_high + 1e-9)

    def test_outlier_inside_range_widens_it(self):
        y, x = correlated_with_outliers(num_outliers=1)
        mapping = OutlierBoundedMapping.fit(y, x)
        outlier_y, outlier_x = float(y[0]), float(x[0])
        x_low, x_high = mapping.map_range(outlier_y - 1, outlier_y + 1)
        assert x_low <= outlier_x <= x_high

    def test_outlier_outside_range_does_not_widen_it(self):
        y, x = correlated_with_outliers(num_outliers=1)
        mapping = OutlierBoundedMapping.fit(y, x)
        outlier_y = float(y[0])
        # Pick a filter range far away from the single outlier.
        y_low = outlier_y + 2_000 if outlier_y < 5_000 else outlier_y - 3_000
        y_high = y_low + 500
        x_low, x_high = mapping.map_range(y_low, y_high)
        assert (x_high - x_low) < 2.5 * (y_high - y_low) + 10 * mapping.error_span + 100


class TestInterface:
    def test_predict_matches_inlier_model(self):
        y, x = correlated_with_outliers()
        mapping = OutlierBoundedMapping.fit(y, x)
        assert mapping.predict(100.0) == pytest.approx(mapping.model.predict(100.0))

    def test_size_accounts_for_buffer(self):
        y, x = correlated_with_outliers(num_outliers=10)
        mapping = OutlierBoundedMapping.fit(y, x)
        assert mapping.size_bytes() == mapping.model.size_bytes() + 16 * 10

    def test_relative_error_uses_inlier_span(self):
        y, x = correlated_with_outliers()
        mapping = OutlierBoundedMapping.fit(y, x)
        assert mapping.relative_error(10_000) == pytest.approx(mapping.error_span / 10_000)
        assert mapping.relative_error(0) == float("inf")

    def test_describe_reports_buffer_size(self):
        y, x = correlated_with_outliers(num_outliers=7)
        info = OutlierBoundedMapping.fit(y, x).describe()
        assert info["num_outliers"] == 7
        assert info["inlier_error_span"] >= 0


class TestGridIntegration:
    def test_augmented_grid_uses_outlier_aware_mapping(self):
        from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
        from repro.core.skeleton import (
            FunctionalMappingStrategy,
            IndependentCDFStrategy,
            Skeleton,
        )
        from repro.query.engine import execute_full_scan
        from repro.query.query import Query
        from repro.storage.table import Table

        rng = np.random.default_rng(11)
        x = rng.integers(0, 10_000, 4_000)
        y = 3 * x + rng.integers(-20, 21, 4_000)
        y[:5] += 500_000  # outliers
        table = Table.from_arrays("t", {"x": x, "y": y})
        skeleton = Skeleton(
            {"x": IndependentCDFStrategy(), "y": FunctionalMappingStrategy(target="x")}
        )
        config = AugmentedGridConfig(
            skeleton=skeleton,
            partitions={"x": 16},
            outlier_aware_mappings=True,
            outlier_fraction=0.01,
        )
        grid = AugmentedGrid(config)
        permutation = grid.fit(table)
        table.reorder(permutation)
        query = Query.from_ranges({"y": (3_000, 9_000)})
        ranges = grid.ranges_for_query(query)
        scanned = sum(len(r) for r in ranges)
        expected, _ = execute_full_scan(table, query)
        matched = sum(
            int(np.sum((table.values("y")[r.start : r.stop] >= 3_000)
                       & (table.values("y")[r.start : r.stop] <= 9_000)))
            for r in ranges
        )
        assert matched == expected
        # The outlier buffer keeps the rewritten filter tight: nothing close to
        # a full scan should be needed for this 20%-selectivity query.
        assert scanned < table.num_rows * 0.6
