"""Smoke tests for the per-figure experiment drivers (tiny scales).

The benchmarks directory runs these drivers at larger scale; here we only
check that every driver runs end-to-end, produces a report, and returns
correct measurements.
"""


from repro.bench.experiments import (
    experiment_adaptability,
    experiment_components,
    experiment_creation_time,
    experiment_dataset_size,
    experiment_dimensions,
    experiment_optimizers,
    experiment_overall,
    experiment_selectivity,
    experiment_table3,
    experiment_table4,
)

ROWS = 4_000
QUERIES = 4


def test_table3_reports_all_datasets():
    result = experiment_table3(num_rows=ROWS, queries_per_type=QUERIES)
    assert set(result.data) == {"tpch", "taxi", "perfmon", "stocks"}
    assert "dataset" in result.report


def test_table4_statistics():
    result = experiment_table4(num_rows=ROWS, queries_per_type=QUERIES, datasets=("tpch",))
    stats = result.data["tpch"]["tsunami"]
    assert stats["num_leaf_regions"] >= 1
    assert result.data["tpch"]["flood_cells"] >= 1


def test_overall_comparison_learned_only():
    result = experiment_overall(
        num_rows=ROWS, queries_per_type=QUERIES, datasets=("taxi",), include_nonlearned=False
    )
    measurements = result.data["taxi"]
    assert {m.index_name for m in measurements} == {"flood", "tsunami"}
    assert all(m.correct for m in measurements)


def test_adaptability_experiment():
    result = experiment_adaptability(num_rows=ROWS, queries_per_type=QUERIES)
    assert result.data["reoptimize_seconds"] > 0
    assert result.data["before"].correct and result.data["after"].correct
    # Re-optimizing for the shifted workload must not scan more than the stale layout.
    assert (
        result.data["after"].avg_points_scanned
        <= result.data["degraded_avg_scanned"] * 1.05
    )


def test_creation_time_experiment():
    result = experiment_creation_time(num_rows=ROWS, queries_per_type=QUERIES)
    assert set(result.data) == {"single-dim", "z-order", "hyperoctree", "kd-tree", "flood", "tsunami"}
    assert result.data["tsunami"].optimize_seconds > 0


def test_dimensions_experiment():
    result = experiment_dimensions(
        num_rows=ROWS,
        queries_per_type=QUERIES,
        dimension_counts=(4,),
        correlated=True,
        include_nonlearned=False,
    )
    measurements = result.data[4]
    assert all(m.correct for m in measurements)


def test_dataset_size_experiment():
    result = experiment_dataset_size(row_counts=(2_000, 4_000), queries_per_type=QUERIES)
    assert set(result.data) == {2_000, 4_000}


def test_selectivity_experiment():
    result = experiment_selectivity(
        num_rows=ROWS, queries_per_type=QUERIES, selectivity_factors=(1.0,)
    )
    assert 1.0 in result.data
    assert all(m.correct for m in result.data[1.0]["measurements"])


def test_components_experiment():
    result = experiment_components(num_rows=ROWS, queries_per_type=QUERIES, datasets=("tpch",))
    variants = {m.index_name for m in result.data["tpch"]}
    assert variants == {"flood", "augmented-grid-only", "grid-tree-only", "tsunami"}
    assert all(m.correct for m in result.data["tpch"])


def test_optimizers_experiment():
    result = experiment_optimizers(
        num_rows=ROWS, queries_per_type=QUERIES, datasets=("tpch",), blackbox_iterations=1
    )
    methods = set(result.data["tpch"])
    assert methods == {"AGD", "GD", "Black Box", "AGD-NI"}
    for info in result.data["tpch"].values():
        assert info["actual_avg_seconds"] > 0
