"""Tests for incremental re-optimization (§8 extension, repro.core.incremental)."""

import numpy as np
import pytest

from repro.common.errors import IndexBuildError
from repro.core.incremental import IncrementalReoptimizer, RegionShift
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload


def build_index(table, workload) -> TsunamiIndex:
    config = TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=2_000)
    return TsunamiIndex(config).build(table, workload)


def shifted_workload(seed: int = 77) -> Workload:
    """A workload concentrated on the opposite corner of the data space."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(60):
        low = int(rng.integers(0, 2_000))
        queries.append(Query.from_ranges({"x": (low, low + 200), "z": (500, 999)}, query_type=0))
    for _ in range(20):
        low = int(rng.integers(20_000, 28_000))
        queries.append(Query.from_ranges({"y": (low, low + 800)}, query_type=1))
    return Workload(queries, name="shifted")


class TestConstruction:
    def test_requires_built_index(self):
        with pytest.raises(IndexBuildError):
            IncrementalReoptimizer(TsunamiIndex())

    def test_invalid_parameters_rejected(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        with pytest.raises(ValueError):
            IncrementalReoptimizer(index, shift_threshold=-0.1)
        with pytest.raises(ValueError):
            IncrementalReoptimizer(index, max_regions=0)


class TestShiftScoring:
    def test_shifts_cover_every_region(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        reoptimizer = IncrementalReoptimizer(index)
        shifts = reoptimizer.region_shifts(shifted_workload())
        assert len(shifts) == len(index._regions)
        assert all(isinstance(shift, RegionShift) for shift in shifts)
        assert all(0.0 <= shift.old_fraction <= 1.0 for shift in shifts)
        assert all(0.0 <= shift.new_fraction <= 1.0 for shift in shifts)

    def test_shifts_sorted_by_decreasing_magnitude(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        shifts = IncrementalReoptimizer(index).region_shifts(shifted_workload())
        magnitudes = [shift.shift for shift in shifts]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_identical_workload_has_no_shift(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        reoptimizer = IncrementalReoptimizer(index)
        shifts = reoptimizer.region_shifts(index.typed_workload)
        assert all(shift.shift == pytest.approx(0.0) for shift in shifts)


class TestReoptimization:
    def test_noop_below_threshold(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        reoptimizer = IncrementalReoptimizer(index, shift_threshold=1.1)
        report = reoptimizer.reoptimize(shifted_workload())
        assert report.regions_reoptimized == ()
        assert report.regions_considered == len(index._regions)

    def test_max_regions_budget_respected(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        reoptimizer = IncrementalReoptimizer(index, shift_threshold=0.0, max_regions=2)
        report = reoptimizer.reoptimize(shifted_workload())
        assert len(report.regions_reoptimized) <= 2

    def test_answers_remain_correct_after_reoptimization(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        reoptimizer = IncrementalReoptimizer(index, shift_threshold=0.01, max_regions=4)
        new_workload = shifted_workload()
        reoptimizer.reoptimize(new_workload)
        for query in list(new_workload)[:25] + list(fresh_workload)[:10]:
            expected, _ = execute_full_scan(index.table, query)
            assert index.execute(query).value == expected

    def test_recorded_workload_is_updated(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        reoptimizer = IncrementalReoptimizer(index, shift_threshold=0.01, max_regions=4)
        new_workload = shifted_workload()
        reoptimizer.reoptimize(new_workload)
        assert len(index.typed_workload) == len(new_workload)
        # A second pass against the same workload should find (almost) nothing
        # left to re-optimize.
        second = reoptimizer.reoptimize(new_workload)
        assert len(second.regions_reoptimized) <= 1

    def test_report_describes_itself(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        report = IncrementalReoptimizer(index, shift_threshold=0.0, max_regions=1).reoptimize(
            shifted_workload()
        )
        text = report.describe()
        assert "regions" in text
        assert report.seconds >= 0

    def test_workless_pass_does_not_advance_baseline(self, fresh_table, fresh_workload):
        """Selected-but-skipped passes must not reset the comparison baseline.

        An empty observed workload makes every previously-hit region's share
        drop (so regions are selected), but no region has queries to optimize
        for, so zero regions are re-optimized — the recorded workload must
        stay put or repeated sub-threshold shifts would never accumulate.
        """
        index = build_index(fresh_table, fresh_workload)
        baseline = index.typed_workload
        reoptimizer = IncrementalReoptimizer(index, shift_threshold=0.05)
        report = reoptimizer.reoptimize(Workload([], name="empty"))
        assert report.regions_reoptimized == ()
        # The pass really did select regions (the bug path, not the early return).
        assert any(shift.shift >= 0.05 for shift in report.shifts)
        assert index.typed_workload is baseline

    def test_reoptimized_regions_keep_planner_and_plan_cache(self, fresh_table, fresh_workload):
        """A repaired region must not silently lose the serving fast path."""
        index = build_index(fresh_table, fresh_workload)
        reoptimizer = IncrementalReoptimizer(index, shift_threshold=0.01, max_regions=4)
        report = reoptimizer.reoptimize(shifted_workload())
        assert report.regions_reoptimized  # sanity: the pass did work
        for region in index._regions:
            if region.node.region_id in report.regions_reoptimized:
                assert region.grid.planner == index.config.planner
                assert (region.grid.plan_cache is not None) == (
                    index.config.plan_cache_entries > 0
                )

    def test_incremental_touches_fewer_rows_than_full_rebuild(self, fresh_table, fresh_workload):
        index = build_index(fresh_table, fresh_workload)
        rows_before = {
            region.node.region_id: np.array(
                index.table.values("x")[region.row_offset : region.row_offset + region.num_rows]
            )
            for region in index._regions
        }
        reoptimizer = IncrementalReoptimizer(index, shift_threshold=0.05, max_regions=2)
        report = reoptimizer.reoptimize(shifted_workload())
        untouched = [
            region
            for region in index._regions
            if region.node.region_id not in report.regions_reoptimized
        ]
        # Rows of regions that were not re-optimized keep their exact physical order.
        for region in untouched:
            after = index.table.values("x")[
                region.row_offset : region.row_offset + region.num_rows
            ]
            assert np.array_equal(after, rows_before[region.node.region_id])
