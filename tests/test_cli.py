"""Tests for the top-level command-line tool (repro.cli)."""

import pytest

from repro.cli import INDEX_FACTORIES, build_parser, main

CSV_TEXT = "date,amount,region\n" + "\n".join(
    f"{day},{(day * 37) % 500},{['east', 'west'][day % 2]}" for day in range(200)
)


@pytest.fixture()
def csv_path(tmp_path):
    path = tmp_path / "sales.csv"
    path.write_text(CSV_TEXT + "\n")
    return path


class TestParser:
    def test_every_index_has_a_factory(self):
        for name, factory in INDEX_FACTORIES.items():
            index = factory(1024)
            assert hasattr(index, "build"), name

    def test_subcommands_exist(self):
        parser = build_parser()
        args = parser.parse_args(["inspect", "--dataset", "taxi", "--rows", "1000"])
        assert args.command == "inspect"
        args = parser.parse_args(
            ["query", "--dataset", "tpch", "--sql", "SELECT COUNT(*) FROM t"]
        )
        assert args.command == "query"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestInspect:
    def test_inspect_dataset(self, capsys):
        exit_code = main(["inspect", "--dataset", "stocks", "--rows", "2000", "--queries", "5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "2000 rows" in output
        assert "storage range" in output

    def test_inspect_csv(self, capsys, csv_path):
        exit_code = main(["inspect", "--csv", str(csv_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "region" in output
        assert "string" in output

    def test_missing_source_is_an_error(self, capsys):
        exit_code = main(["inspect"])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_both_sources_is_an_error(self, csv_path, capsys):
        exit_code = main(["inspect", "--dataset", "taxi", "--csv", str(csv_path)])
        assert exit_code == 2


class TestBuildQueryExplain:
    def test_build_then_query_snapshot(self, tmp_path, capsys, csv_path):
        snapshot = tmp_path / "snap"
        exit_code = main(
            [
                "build",
                "--csv",
                str(csv_path),
                "--index",
                "kd-tree",
                "--page-size",
                "64",
                "--snapshot",
                str(snapshot),
            ]
        )
        assert exit_code == 0
        assert (snapshot / "index.pkl").exists()
        capsys.readouterr()

        exit_code = main(
            [
                "query",
                "--snapshot",
                str(snapshot),
                "--sql",
                "SELECT COUNT(*) FROM sales WHERE date BETWEEN 0 AND 99",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "100.0" in output
        assert "scanned" in output

    def test_query_without_snapshot_builds_on_the_fly(self, capsys, csv_path):
        exit_code = main(
            [
                "query",
                "--csv",
                str(csv_path),
                "--index",
                "z-order",
                "--page-size",
                "64",
                "--sql",
                "SELECT SUM(amount) FROM sales WHERE region = 'east'",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "built z-order" in output

    def test_explain_reports_plan_counters(self, capsys, csv_path):
        exit_code = main(
            [
                "explain",
                "--csv",
                str(csv_path),
                "--index",
                "kd-tree",
                "--page-size",
                "32",
                "--sql",
                "SELECT COUNT(*) FROM sales WHERE date <= 50",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cell_ranges" in output
        assert "rows_to_scan" in output
        assert "table_fraction_scanned" in output
