"""Tests for repro.core.query_types (query-type clustering, §4.3.1)."""

import numpy as np
import pytest

from repro.core.query_types import cluster_query_types, queries_by_type
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    rng = np.random.default_rng(0)
    return Table.from_arrays(
        "t",
        {"a": rng.integers(0, 10_000, 5000), "b": rng.integers(0, 10_000, 5000)},
    )


def make_queries(table: Table, count: int, dims: dict[str, float], seed: int) -> list[Query]:
    """Queries filtering ``dims`` (dimension -> selectivity) at random positions."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        ranges = {}
        for dim, selectivity in dims.items():
            values = table.values(dim)
            width = int(selectivity * (values.max() - values.min()))
            low = int(rng.integers(values.min(), max(values.max() - width, values.min() + 1)))
            ranges[dim] = (low, low + width)
        queries.append(Query.from_ranges(ranges))
    return queries


class TestClusterQueryTypes:
    def test_different_dimension_sets_get_different_types(self, table):
        workload = Workload(
            make_queries(table, 20, {"a": 0.1}, 1) + make_queries(table, 20, {"b": 0.1}, 2)
        )
        labelled = cluster_query_types(table, workload)
        groups = queries_by_type(labelled)
        assert len(groups) >= 2
        for queries in groups.values():
            dims = {q.filtered_dimensions for q in queries}
            assert len(dims) == 1  # never mixes dimension sets

    def test_selectivity_separates_types(self, table):
        narrow = make_queries(table, 30, {"a": 0.01}, 3)
        wide = make_queries(table, 30, {"a": 0.6}, 4)
        labelled = cluster_query_types(table, Workload(narrow + wide))
        types_of_narrow = {q.query_type for q in list(labelled)[:30]}
        types_of_wide = {q.query_type for q in list(labelled)[30:]}
        assert types_of_narrow.isdisjoint(types_of_wide)

    def test_similar_queries_share_a_type(self, table):
        workload = Workload(make_queries(table, 40, {"a": 0.1, "b": 0.1}, 5))
        labelled = cluster_query_types(table, workload)
        assert len(set(q.query_type for q in labelled)) == 1

    def test_every_query_gets_a_type(self, table):
        workload = Workload(
            make_queries(table, 15, {"a": 0.05}, 6) + make_queries(table, 15, {"a": 0.4, "b": 0.2}, 7)
        )
        labelled = cluster_query_types(table, workload)
        assert all(q.query_type is not None for q in labelled)
        assert len(labelled) == len(workload)

    def test_empty_workload(self, table):
        assert len(cluster_query_types(table, Workload([]))) == 0

    def test_no_filter_queries_form_single_type(self, table):
        workload = Workload([Query(predicates=()) for _ in range(5)])
        labelled = cluster_query_types(table, workload)
        assert len({q.query_type for q in labelled}) == 1


class TestQueriesByType:
    def test_unlabelled_go_to_minus_one(self):
        groups = queries_by_type(Workload([Query.from_ranges({"a": (0, 1)})]))
        assert list(groups) == [-1]

    def test_grouping(self):
        workload = Workload(
            [
                Query.from_ranges({"a": (0, 1)}, query_type=0),
                Query.from_ranges({"a": (2, 3)}, query_type=1),
                Query.from_ranges({"a": (4, 5)}, query_type=0),
            ]
        )
        groups = queries_by_type(workload)
        assert len(groups[0]) == 2 and len(groups[1]) == 1


class TestPlanCache:
    def test_miss_then_hit(self):
        from repro.core.query_types import PlanCache

        cache = PlanCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), [(0, 5, True)])
        assert cache.get(("k",)) == [(0, 5, True)]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        from repro.core.query_types import PlanCache

        cache = PlanCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a"; "b" becomes LRU
        cache.put(("c",), 3)
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.stats.evictions == 1

    def test_clear_resets_entries_and_stats(self):
        from repro.core.query_types import PlanCache

        cache = PlanCache()
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_invalid_capacity_rejected(self):
        import pytest

        from repro.core.query_types import PlanCache

        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_stats_merge_and_hit_rate(self):
        from repro.core.query_types import PlanCacheStats

        total = PlanCacheStats(hits=3, misses=1)
        total.merge(PlanCacheStats(hits=1, misses=3, evictions=2))
        assert (total.hits, total.misses, total.evictions) == (4, 4, 2)
        assert total.hit_rate == 0.5
        assert PlanCacheStats().hit_rate == 0.0
