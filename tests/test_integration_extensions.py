"""End-to-end scenarios combining the §8 extension modules.

Each test exercises a realistic operational pipeline rather than a single
module: drift detection feeding incremental re-optimization, categorical
reordering feeding index construction, the delta buffer combined with
persistence, and CSV ingestion feeding the SQL front-end.
"""

import numpy as np

from repro.core.categorical import CategoricalReordering
from repro.core.delta import DeltaBufferedIndex
from repro.core.drift import WorkloadDriftDetector
from repro.core.incremental import IncrementalReoptimizer
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.query.sql import execute_sql, parse_query
from repro.query.workload import Workload
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.persistence import load_index, save_index
from repro.storage.table import Table


def small_config() -> TsunamiConfig:
    return TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=2_000)


def shifted_workload(seed: int = 31) -> Workload:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(50):
        low = int(rng.integers(0, 1_500))
        queries.append(Query.from_ranges({"x": (low, low + 150), "z": (600, 999)}, query_type=0))
    for _ in range(10):
        low = int(rng.integers(22_000, 28_000))
        queries.append(Query.from_ranges({"y": (low, low + 500)}, query_type=1))
    return Workload(queries, name="shifted")


class TestDriftThenIncrementalReopt:
    def test_detector_triggers_and_reopt_recovers_scan_work(self, fresh_table, fresh_workload):
        index = TsunamiIndex(small_config()).build(fresh_table, fresh_workload)
        detector = WorkloadDriftDetector().fit(index.table, fresh_workload)
        new_workload = shifted_workload()

        report = detector.observe(new_workload)
        assert report.drifted, "the shifted workload should be flagged as drift"

        _, before = index.execute_workload(new_workload)
        IncrementalReoptimizer(index, shift_threshold=0.02, max_regions=4).reoptimize(new_workload)
        _, after = index.execute_workload(new_workload)
        assert after.points_scanned <= before.points_scanned * 1.05
        for query in list(new_workload)[:15]:
            expected, _ = execute_full_scan(index.table, query)
            assert index.execute(query).value == expected

    def test_unchanged_workload_triggers_neither(self, fresh_table, fresh_workload):
        index = TsunamiIndex(small_config()).build(fresh_table, fresh_workload)
        detector = WorkloadDriftDetector().fit(index.table, fresh_workload)
        assert not detector.observe(fresh_workload).drifted
        report = IncrementalReoptimizer(index, shift_threshold=0.05).reoptimize(fresh_workload)
        assert report.regions_reoptimized == ()


class TestCategoricalReorderingWithIndex:
    @staticmethod
    def categorical_table(num_rows: int = 4_000, seed: int = 9) -> Table:
        rng = np.random.default_rng(seed)
        categories = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]
        return Table.from_dict(
            "events",
            {
                "kind": [categories[i] for i in rng.integers(0, len(categories), num_rows)],
                "day": rng.integers(0, 365, num_rows).tolist(),
                "value": rng.integers(0, 10_000, num_rows).tolist(),
            },
        )

    def test_index_over_reordered_table_stays_correct(self):
        table = self.categorical_table()
        alpha = table.column("kind").to_storage("alpha")
        foxtrot = table.column("kind").to_storage("foxtrot")
        rng = np.random.default_rng(3)
        queries = []
        for _ in range(40):
            day = int(rng.integers(250, 330))
            queries.append(
                Query.from_ranges(
                    {"kind": (min(alpha, foxtrot), max(alpha, foxtrot)), "day": (day, day + 30)},
                    query_type=0,
                )
            )
        workload = Workload(queries, name="events")

        reordering = CategoricalReordering.fit(table, "kind", workload)
        reordered_table = reordering.apply_to_table(table)
        rewritten = reordering.rewrite_workload(workload)
        index = TsunamiIndex(small_config()).build(reordered_table, rewritten)
        for original, query in zip(workload, rewritten):
            expected, _ = execute_full_scan(index.table, query)
            assert index.execute(query).value == expected
            # The rewritten range may widen, so it can only match at least as
            # many rows as the original predicate did on the original table.
            baseline, _ = execute_full_scan(table, original)
            assert index.execute(query).value >= baseline


class TestDeltaBufferWithPersistence:
    def test_insert_merge_snapshot_reload(self, tmp_path, fresh_table, fresh_workload):
        delta = DeltaBufferedIndex(
            lambda: TsunamiIndex(small_config()), merge_threshold=10_000
        )
        delta.build(fresh_table, fresh_workload)
        rng = np.random.default_rng(1)
        for _ in range(25):
            x = int(rng.integers(0, 10_000))
            delta.insert({"x": x, "y": 3 * x, "z": int(rng.integers(0, 1_000)), "c": 1})
        delta.merge()

        save_index(delta.base_index, tmp_path)
        restored = load_index(tmp_path)
        assert restored.table.num_rows == 5_000 + 25
        for query in list(fresh_workload)[:10]:
            expected, _ = execute_full_scan(restored.table, query)
            assert restored.execute(query).value == expected


class TestCsvToSqlPipeline:
    def test_csv_ingest_build_query_explain(self, tmp_path):
        rng = np.random.default_rng(17)
        source = Table.from_dict(
            "trips",
            {
                "day": rng.integers(0, 365, 3_000).tolist(),
                "distance": np.round(rng.uniform(0.5, 30.0, 3_000), 2).tolist(),
                "payment": [["card", "cash"][i] for i in rng.integers(0, 2, 3_000)],
            },
        )
        csv_path = write_csv(source, tmp_path / "trips.csv")
        table = read_csv(csv_path)
        index = TsunamiIndex(small_config()).build(table, None)

        sql = "SELECT COUNT(*) FROM trips WHERE day BETWEEN 300 AND 364 AND payment = 'card'"
        query = parse_query(sql, index.table)
        expected, _ = execute_full_scan(index.table, query)
        assert execute_sql(sql, index) == expected

        plan = index.explain(query)
        assert plan["rows_to_scan"] <= table.num_rows
        assert plan["cell_ranges"] >= 1
