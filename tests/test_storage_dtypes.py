"""Property-based tests (hypothesis) for narrow-dtype storage round-trips.

The invariant under test: narrowing the physical dtype is invisible to every
layer above storage.  Values survive ``Column.from_values`` → ``reorder`` →
delta insert/merge (including overflow widening past the current dtype's
range) → ``save_index``/``load_index`` (both memory-mapped and in-memory)
bit-exactly, and the dtype plus ``size_bytes()`` are deterministic functions
of the value range.
"""

import tempfile
from functools import partial

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import KdTreeIndex
from repro.common.validation import STORAGE_DTYPES, narrowest_dtype
from repro.core.delta import DeltaBufferedIndex
from repro.storage.column import Column
from repro.storage.persistence import load_index, load_table, save_index, save_table
from repro.storage.table import Table

PROP = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: One (low, high) regime per storage dtype, so narrowing exercises the
#: whole ladder rather than whatever range a uniform draw happens to hit.
REGIMES = st.sampled_from(
    [
        (0, 255),
        (-(2**15), 2**15 - 1),
        (-(2**31), 2**31 - 1),
        (-(2**62), 2**62),
    ]
)


@st.composite
def bounded_arrays(draw, min_size=1, max_size=200):
    low, high = draw(REGIMES)
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    values = draw(
        st.lists(
            st.integers(min_value=low, max_value=high),
            min_size=size,
            max_size=size,
        )
    )
    return np.asarray(values, dtype=np.int64)


class TestNarrowestDtype:
    @PROP
    @given(
        low=st.integers(min_value=-(2**63), max_value=2**63 - 1),
        high=st.integers(min_value=-(2**63), max_value=2**63 - 1),
    )
    def test_minimal_covering_dtype(self, low, high):
        low, high = min(low, high), max(low, high)
        dtype = narrowest_dtype(low, high)
        info = np.iinfo(dtype)
        assert info.min <= low and high <= info.max
        # No strictly narrower rung of the ladder also covers the range.
        for candidate in STORAGE_DTYPES:
            candidate_info = np.iinfo(candidate)
            if np.dtype(candidate).itemsize < np.dtype(dtype).itemsize:
                assert not (candidate_info.min <= low and high <= candidate_info.max)


class TestColumnRoundTrip:
    @PROP
    @given(values=bounded_arrays(), seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_from_values_then_reorder_preserves_everything(self, values, seed):
        column = Column.from_values("c", values.tolist())
        expected_dtype = narrowest_dtype(int(values.min()), int(values.max()))
        assert column.dtype == expected_dtype
        assert np.array_equal(column.values.astype(np.int64), values)
        size_before = column.size_bytes()
        assert size_before == values.size * np.dtype(expected_dtype).itemsize

        permutation = np.random.default_rng(seed).permutation(values.size)
        column.reorder(permutation)
        assert column.dtype == expected_dtype
        assert column.size_bytes() == size_before
        assert np.array_equal(column.values.astype(np.int64), values[permutation])

    @PROP
    @given(values=bounded_arrays(max_size=60))
    def test_save_load_table_preserves_dtype_and_bytes(self, values):
        table = Table.from_arrays("t", {"a": values, "b": np.arange(values.size)})
        with tempfile.TemporaryDirectory() as target:
            save_table(table, target)
            for mmap_mode in (None, "r"):
                loaded = load_table(target, mmap_mode=mmap_mode)
                for name in ("a", "b"):
                    original = table.column(name)
                    restored = loaded.column(name)
                    assert restored.dtype == original.dtype
                    assert restored.size_bytes() == original.size_bytes()
                    assert np.array_equal(restored.values, original.values)


class TestDeltaMergeWidening:
    def build_index(self, values: np.ndarray) -> DeltaBufferedIndex:
        table = Table.from_arrays(
            "t", {"a": values, "b": np.arange(values.size)}
        )
        index = DeltaBufferedIndex(
            partial(KdTreeIndex, page_size=64), merge_threshold=1_000_000
        )
        return index.build(table, None)

    @PROP
    @given(
        base=bounded_arrays(min_size=4, max_size=80),
        inserted=st.lists(
            st.integers(min_value=-(2**62), max_value=2**62),
            min_size=1,
            max_size=20,
        ),
    )
    def test_merge_widens_to_cover_inserted_range(self, base, inserted):
        index = self.build_index(base)
        index.insert_many(
            [{"a": int(value), "b": -1 - position} for position, value in enumerate(inserted)]
        )
        report = index.merge()
        assert report is not None and report.rows_merged == len(inserted)

        merged = np.concatenate([base, np.asarray(inserted, dtype=np.int64)])
        column = index.table.column("a")
        assert column.dtype == narrowest_dtype(int(merged.min()), int(merged.max()))
        # Clustering may reorder rows; the multiset of values is preserved.
        assert np.array_equal(
            np.sort(column.values.astype(np.int64)), np.sort(merged)
        )
        assert column.size_bytes() == merged.size * column.itemsize

    def test_uint8_column_widens_past_overflow(self):
        index = self.build_index(np.arange(10))
        assert index.table.column("a").dtype == np.uint8
        index.insert_many([{"a": 1_000_000, "b": -1}])
        index.merge()
        assert index.table.column("a").dtype == np.int32
        assert int(index.table.column("a").values.max()) == 1_000_000


class TestIndexSnapshotRoundTrip:
    @PROP
    @given(
        base=bounded_arrays(min_size=4, max_size=60),
        pending=st.lists(
            st.integers(min_value=-(2**62), max_value=2**62),
            min_size=0,
            max_size=8,
        ),
    )
    def test_save_load_index_preserves_dtype_values_and_pending(self, base, pending):
        table = Table.from_arrays("t", {"a": base, "b": np.arange(base.size)})
        index = DeltaBufferedIndex(
            partial(KdTreeIndex, page_size=64), merge_threshold=1_000_000
        )
        index.build(table, None)
        index.insert_many(
            [{"a": int(value), "b": -1 - position} for position, value in enumerate(pending)]
        )
        with tempfile.TemporaryDirectory() as target:
            save_index(index, target)
            for mmap_mode in (None, "r"):
                loaded = load_index(target, mmap_mode=mmap_mode)
                assert loaded.num_pending == len(pending)
                for name in ("a", "b"):
                    original = index.table.column(name)
                    restored = loaded.table.column(name)
                    assert restored.dtype == original.dtype
                    assert restored.size_bytes() == original.size_bytes()
                    assert np.array_equal(restored.values, original.values)
                    assert restored.is_memory_mapped == (mmap_mode == "r")
                    assert np.array_equal(
                        loaded.buffer.column(name), index.buffer.column(name)
                    )
