"""Fault-tolerance tests for the serving front-end (repro.serve.frontend).

The front-end's resilience promises: a backend failure fails only its own
batch (with solo retries isolating poison queries), per-query deadlines raise
a typed error, and an abnormal dispatcher exit completes every pending and
queued future with ``DispatcherCrashedError`` instead of stranding clients.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.baselines.base import QueryResult
from repro.common import faults
from repro.common.errors import (
    DispatcherCrashedError,
    InjectedFault,
    QueryTimeoutError,
    ServingError,
)
from repro.common.faults import FaultPlan, FaultSpec
from repro.query.query import Query
from repro.serve.batcher import MicroBatcher
from repro.serve.frontend import ServingConfig, ServingFrontend
from repro.storage.scan import ScanStats

INNOCENT = Query.from_ranges({"x": (0, 100)})
OTHER = Query.from_ranges({"x": (200, 300)})
POISON = Query.from_ranges({"x": (666, 777)})


def small_config(**overrides) -> ServingConfig:
    defaults = dict(
        max_batch_size=16,
        max_delay_seconds=0.002,
        max_queue_depth=512,
        cache_entries=0,
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


class ScriptedBackend:
    """Returns value 1.0 per query; raises whenever a poison query is present.

    ``healed`` switches the poison off, so tests can assert recovery and
    un-quarantining.
    """

    def __init__(self) -> None:
        self.healed = False
        self.batches: list[int] = []

    def run_batch(self, queries):
        self.batches.append(len(queries))
        if not self.healed and any(q == POISON for q in queries):
            raise ValueError("poison query crashed the batch")
        return [QueryResult(value=1.0, stats=ScanStats()) for _ in queries]


class BlockingBackend:
    """Blocks run_batch until released, to hold queries in flight."""

    def __init__(self) -> None:
        self.release = threading.Event()

    def run_batch(self, queries):
        self.release.wait(30.0)
        return [QueryResult(value=1.0, stats=ScanStats()) for _ in queries]


class TestConfigValidation:
    def test_bad_default_timeout_rejected(self):
        with pytest.raises(ServingError, match="default_timeout_seconds"):
            ServingConfig(default_timeout_seconds=0.0)

    def test_bad_quarantine_threshold_rejected(self):
        with pytest.raises(ServingError, match="quarantine_after"):
            ServingConfig(quarantine_after=0)


class TestBatcherDrain:
    def test_drain_empties_queue_without_flush_accounting(self):
        batcher = MicroBatcher(max_batch_size=4)
        batcher.put("a")
        batcher.put("b")
        drained = batcher.drain()
        assert drained == ["a", "b"]
        assert batcher.depth == 0
        assert batcher.stats.batches == 0
        assert batcher.drain() == []


class TestQueryDeadlines:
    def test_explicit_timeout_raises_typed_error(self):
        backend = BlockingBackend()
        frontend = ServingFrontend(backend, small_config())
        try:
            with pytest.raises(QueryTimeoutError) as excinfo:
                frontend.query(INNOCENT, timeout=0.05)
            assert excinfo.value.timeout_seconds == 0.05
        finally:
            backend.release.set()
            frontend.close()

    def test_config_default_timeout_applies(self):
        backend = BlockingBackend()
        frontend = ServingFrontend(
            backend, small_config(default_timeout_seconds=0.05)
        )
        try:
            with pytest.raises(QueryTimeoutError) as excinfo:
                frontend.query(INNOCENT)
            assert excinfo.value.timeout_seconds == 0.05
        finally:
            backend.release.set()
            frontend.close()


class TestBatchFailureIsolation:
    def test_single_query_failure_is_contained(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(backend, small_config())
        try:
            with pytest.raises(ValueError, match="poison"):
                frontend.query(POISON, timeout=5.0)
            # The dispatcher survived; the front-end still serves.
            assert frontend.query(INNOCENT, timeout=5.0).value == 1.0
            assert frontend.stats.batch_failures == 1
            assert frontend.stats.query_failures == 1
        finally:
            frontend.close()

    def test_poison_query_fails_alone_neighbours_survive(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(
            backend,
            small_config(
                max_batch_size=2,
                max_delay_seconds=0.2,
                idle_gap_seconds=None,  # wait the full window: arrivals coalesce
                quarantine_after=1,
            ),
        )
        try:
            with ThreadPoolExecutor(2) as pool:
                innocent_future = pool.submit(frontend.query, INNOCENT, 10.0)
                poison_future = pool.submit(frontend.query, POISON, 10.0)
                assert innocent_future.result(10.0).value == 1.0
                with pytest.raises(ValueError, match="poison"):
                    poison_future.result(10.0)
            assert frontend.stats.solo_retries == 2
            assert frontend.stats.quarantined == 1
            assert POISON in frontend.quarantine
        finally:
            frontend.close()

    def test_quarantined_query_runs_solo_and_is_released_on_success(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(
            backend,
            small_config(
                max_batch_size=2,
                max_delay_seconds=0.2,
                idle_gap_seconds=None,  # wait the full window: arrivals coalesce
                quarantine_after=1,
            ),
        )
        try:
            with ThreadPoolExecutor(2) as pool:
                pool.submit(frontend.query, INNOCENT, 10.0).result(10.0)
                with pytest.raises(ValueError):
                    pool.submit(frontend.query, POISON, 10.0).result(10.0)
                # Cohort poisoning got POISON quarantined (solo failure).
                with pytest.raises(ValueError):
                    frontend.query(POISON, timeout=10.0)
                assert POISON in frontend.quarantine
                failures_so_far = frontend.stats.batch_failures
                # Quarantined: POISON runs alone, so a shared window with an
                # innocent query no longer fails any cohort.
                innocent_future = pool.submit(frontend.query, OTHER, 10.0)
                poison_future = pool.submit(frontend.query, POISON, 10.0)
                assert innocent_future.result(10.0).value == 1.0
                with pytest.raises(ValueError):
                    poison_future.result(10.0)
                assert frontend.stats.batch_failures == failures_so_far
                # Backend heals: the next solo run succeeds and releases it.
                backend.healed = True
                assert frontend.query(POISON, timeout=10.0).value == 1.0
                assert POISON not in frontend.quarantine
        finally:
            frontend.close()

    def test_injected_batch_fault_fails_batch_then_recovers(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(backend, small_config())
        plan = FaultPlan([FaultSpec(site="frontend.batch", max_triggers=1)])
        try:
            with faults.active(plan):
                with pytest.raises(InjectedFault):
                    frontend.query(INNOCENT, timeout=5.0)
                assert frontend.query(INNOCENT, timeout=5.0).value == 1.0
        finally:
            frontend.close()

    def test_cache_failure_never_fails_clients(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(backend, small_config(cache_entries=64))
        plan = FaultPlan([FaultSpec(site="cache.put", max_triggers=1)])
        try:
            with faults.active(plan):
                assert frontend.query(INNOCENT, timeout=5.0).value == 1.0
            assert frontend.stats.batch_failures == 1
            assert frontend.query(OTHER, timeout=5.0).value == 1.0
            assert frontend.stats.dispatcher_crashes == 0
        finally:
            frontend.close()


class TestDispatcherCrash:
    def test_crash_fails_pending_futures_and_closes_admissions(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(backend, small_config())
        plan = FaultPlan([FaultSpec(site="frontend.dispatcher", max_triggers=1)])
        try:
            with faults.active(plan):
                with pytest.raises(DispatcherCrashedError, match="dispatcher crashed"):
                    frontend.query(INNOCENT, timeout=5.0)
            assert frontend.stats.dispatcher_crashes == 1
            # Later submissions are rejected with the same typed error
            # instead of queueing toward a dispatcher that no longer exists.
            with pytest.raises(DispatcherCrashedError):
                frontend.query(OTHER, timeout=5.0)
        finally:
            frontend.close()

    def test_queued_futures_are_drained_on_crash(self):
        """Requests queued behind the crashing batch unblock exceptionally."""
        backend = BlockingBackend()
        frontend = ServingFrontend(
            backend, small_config(max_batch_size=1, max_delay_seconds=0.001)
        )
        plan = FaultPlan(
            [FaultSpec(site="frontend.dispatcher", after_calls=1, max_triggers=1)]
        )
        try:
            with faults.active(plan):
                with ThreadPoolExecutor(3) as pool:
                    first = pool.submit(frontend.query, INNOCENT, 10.0)
                    time.sleep(0.05)  # first batch is in flight (blocked)
                    second = pool.submit(frontend.query, OTHER, 10.0)
                    third = pool.submit(frontend.query, POISON, 10.0)
                    time.sleep(0.05)  # second/third queued behind it
                    backend.release.set()
                    assert first.result(10.0).value == 1.0
                    with pytest.raises(DispatcherCrashedError):
                        second.result(10.0)
                    with pytest.raises(DispatcherCrashedError):
                        third.result(10.0)
            assert frontend.stats.dispatcher_crashes == 1
        finally:
            frontend.close()

    def test_close_still_works_after_crash(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(backend, small_config())
        plan = FaultPlan([FaultSpec(site="frontend.dispatcher", max_triggers=1)])
        with faults.active(plan):
            with pytest.raises(DispatcherCrashedError):
                frontend.query(INNOCENT, timeout=5.0)
        frontend.close()
        frontend.close()  # idempotent

    def test_describe_reports_resilience_counters(self):
        backend = ScriptedBackend()
        frontend = ServingFrontend(backend, small_config())
        try:
            serving = frontend.describe()["serving"]
            for key in (
                "batch_failures",
                "solo_retries",
                "query_failures",
                "quarantined",
                "dispatcher_crashes",
            ):
                assert serving[key] == 0
        finally:
            frontend.close()
