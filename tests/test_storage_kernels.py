"""Tests for repro.storage.kernels and the fused scan paths that use them.

The fused filter→aggregate kernels must be *bit-identical* to the
materializing reference (``values[mask]`` then a reduction): the differential
tests here run both over every aggregate and over empty/exact/boundary/inexact
ranges on mixed narrow dtypes.  The bytes-accounting tests pin the logical
``values_scanned``/``bytes_scanned`` counters the cost model and benchmark
gates rely on.
"""

import numpy as np
import pytest

from repro.storage.kernels import fused_count, fused_max, fused_min, fused_sum
from repro.storage.scan import RowRange, ScanExecutor
from repro.storage.table import Table

DTYPES = (np.uint8, np.int16, np.int32, np.int64)


class TestFusedKernels:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_sum_matches_materialized(self, dtype):
        rng = np.random.default_rng(11)
        info = np.iinfo(dtype)
        values = rng.integers(info.min, info.max, 500, dtype=np.int64).astype(dtype)
        mask = rng.random(500) < 0.3
        assert fused_sum(values, mask) == int(values[mask].astype(np.int64).sum())

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_min_max_match_materialized(self, dtype):
        rng = np.random.default_rng(12)
        info = np.iinfo(dtype)
        values = rng.integers(info.min, info.max, 500, dtype=np.int64).astype(dtype)
        mask = rng.random(500) < 0.3
        if not mask.any():
            mask[0] = True
        assert fused_min(values, mask) == int(values[mask].min())
        assert fused_max(values, mask) == int(values[mask].max())

    def test_count(self):
        mask = np.array([True, False, True, True, False])
        assert fused_count(mask) == 3
        assert fused_count(np.zeros(5, dtype=bool)) == 0

    def test_none_mask_reduces_whole_slice(self):
        values = np.array([3, 1, 4, 1, 5], dtype=np.uint8)
        assert fused_sum(values) == 14
        assert fused_min(values) == 1
        assert fused_max(values) == 5

    def test_sum_empty_mask_is_zero(self):
        values = np.arange(10, dtype=np.int16)
        assert fused_sum(values, np.zeros(10, dtype=bool)) == 0

    def test_sum_does_not_overflow_narrow_dtype(self):
        # 1000 values of 200 overflow uint8 (and int16) partial sums; the
        # kernel must accumulate in int64 like the materialized reference.
        values = np.full(1000, 200, dtype=np.uint8)
        mask = np.ones(1000, dtype=bool)
        assert fused_sum(values, mask) == 200_000

    def test_int64_extremes_are_exact(self):
        info = np.iinfo(np.int64)
        values = np.array([info.min, info.max], dtype=np.int64)
        assert fused_min(values, np.array([True, False])) == info.min
        assert fused_max(values, np.array([False, True])) == info.max


def reference_execute(table, ranges, filters, aggregate, aggregate_column):
    """The pre-fusion scan: materialize ``values[mask]`` per range, reduce,
    and accumulate per-range partials exactly like the merged executor."""
    count = 0
    total = 0.0
    minimum = None
    maximum = None
    for row_range in ranges:
        start, stop = row_range.start, row_range.stop
        mask = np.ones(stop - start, dtype=bool)
        if not row_range.exact:
            for dim, (low, high) in filters.items():
                values = table.values(dim)[start:stop]
                mask &= (values >= low) & (values <= high)
        matched = int(np.count_nonzero(mask))
        count += matched
        if aggregate == "count" or aggregate_column is None or matched == 0:
            continue
        selected = table.values(aggregate_column)[start:stop][mask].astype(np.int64)
        if aggregate in {"sum", "avg"}:
            total += float(selected.sum())
        if aggregate == "min":
            candidate = float(selected.min())
            minimum = candidate if minimum is None else min(minimum, candidate)
        if aggregate == "max":
            candidate = float(selected.max())
            maximum = candidate if maximum is None else max(maximum, candidate)
    if aggregate == "count":
        return float(count)
    if aggregate == "sum":
        return total
    if count == 0:
        return float("nan")
    if aggregate == "avg":
        return total / count
    return minimum if aggregate == "min" else maximum


@pytest.fixture()
def mixed_table() -> Table:
    """Four columns spanning all four storage dtypes."""
    rng = np.random.default_rng(77)
    num_rows = 2_000
    return Table.from_arrays(
        "mixed",
        {
            "tiny": rng.integers(0, 200, num_rows),  # uint8
            "small": rng.integers(-30_000, 30_000, num_rows),  # int16
            "wide": rng.integers(-(2**30), 2**30, num_rows),  # int32
            "huge": rng.integers(-(2**60), 2**60, num_rows),  # int64
        },
    )


class TestFusedExecutorDifferential:
    AGGREGATES = ("count", "sum", "avg", "min", "max")

    def cases(self, table):
        """(ranges, filters) pairs covering empty/exact/boundary/inexact."""
        n = table.num_rows
        tiny = table.values("tiny")
        low, high = int(tiny.min()), int(tiny.max())
        return [
            # inexact ranges, mid-selectivity filter
            ([RowRange(0, n)], {"tiny": (50, 150)}),
            # multi-dimensional filter mixing dtypes
            ([RowRange(0, n)], {"tiny": (0, 120), "small": (-10_000, 10_000)}),
            # empty match
            ([RowRange(0, n)], {"tiny": (500, 600)}),
            # exact range: no filter evaluation at all
            ([RowRange(0, n // 2, exact=True)], {"tiny": (500, 600)}),
            # boundary: filter bounds equal to the column bounds (all match)
            ([RowRange(0, n)], {"tiny": (low, high)}),
            # boundary: single-value equality filter
            ([RowRange(0, n)], {"tiny": (low, low)}),
            # mixed exact + inexact ranges
            (
                [RowRange(0, 100, exact=True), RowRange(500, 900), RowRange(1500, n)],
                {"small": (-5_000, 5_000)},
            ),
            # zero-length range list
            ([], {"tiny": (0, 200)}),
        ]

    @pytest.mark.parametrize("aggregate", AGGREGATES)
    @pytest.mark.parametrize("column", ["tiny", "small", "wide", "huge"])
    def test_bit_identical_to_materialized_reference(
        self, mixed_table, aggregate, column
    ):
        executor = ScanExecutor(mixed_table)
        aggregate_column = None if aggregate == "count" else column
        for ranges, filters in self.cases(mixed_table):
            expected = reference_execute(
                mixed_table, ranges, filters, aggregate, aggregate_column
            )
            value, _ = executor.execute(ranges, filters, aggregate, aggregate_column)
            if np.isnan(expected):
                assert np.isnan(value)
            else:
                # Bit-identical, not approximately equal.
                assert value == expected, (aggregate, column, ranges, filters)

    def test_no_row_materialization_on_aggregate_path(self, mixed_table):
        # The fused executor must not allocate values[mask]; as a proxy, the
        # aggregate over a full inexact range allocates nothing proportional
        # to matched rows — verified here by equality on a selective filter
        # whose materialized copy would differ in dtype handling.
        executor = ScanExecutor(mixed_table)
        n = mixed_table.num_rows
        value, stats = executor.execute(
            [RowRange(0, n)], {"tiny": (0, 10)}, "sum", "huge"
        )
        expected = reference_execute(
            mixed_table, [RowRange(0, n)], {"tiny": (0, 10)}, "sum", "huge"
        )
        assert value == expected
        assert stats.rows_matched < n


class TestScanBytesAccounting:
    def test_inexact_filter_charges_itemsize(self, mixed_table):
        executor = ScanExecutor(mixed_table)
        n = mixed_table.num_rows
        _, stats = executor.execute([RowRange(0, n)], {"tiny": (0, 100)}, "count")
        # One uint8 filter column over n rows.
        assert stats.values_scanned == n
        assert stats.bytes_scanned == n

    def test_multi_filter_sums_per_column_itemsizes(self, mixed_table):
        executor = ScanExecutor(mixed_table)
        n = mixed_table.num_rows
        _, stats = executor.execute(
            [RowRange(0, n)],
            {"tiny": (0, 200), "small": (-30_000, 30_000), "huge": (-(2**62), 2**62)},
            "count",
        )
        assert stats.values_scanned == 3 * n
        assert stats.bytes_scanned == (1 + 2 + 8) * n

    def test_aggregate_column_charged_at_its_own_width(self, mixed_table):
        executor = ScanExecutor(mixed_table)
        n = mixed_table.num_rows
        _, stats = executor.execute(
            [RowRange(0, n)], {"tiny": (0, 200)}, "sum", "small"
        )
        assert stats.values_scanned == 2 * n  # filter column + aggregate column
        assert stats.bytes_scanned == 1 * n + 2 * n

    def test_exact_count_touches_no_bytes(self, mixed_table):
        executor = ScanExecutor(mixed_table)
        _, stats = executor.execute(
            [RowRange(0, 500, exact=True)], {"tiny": (0, 0)}, "count"
        )
        assert stats.values_scanned == 0
        assert stats.bytes_scanned == 0

    def test_exact_aggregate_charges_only_aggregate_column(self, mixed_table):
        executor = ScanExecutor(mixed_table)
        _, stats = executor.execute(
            [RowRange(0, 500, exact=True)], {"tiny": (0, 0)}, "sum", "wide"
        )
        assert stats.values_scanned == 500
        assert stats.bytes_scanned == 4 * 500  # int32

    def test_int64_baseline_is_eight_bytes_per_value(self):
        rng = np.random.default_rng(5)
        table = Table.from_arrays(
            "wide", {"a": rng.integers(0, 100, 1000), "b": rng.integers(0, 100, 1000)},
            narrow=False,
        )
        assert table.column("a").dtype == np.int64
        executor = ScanExecutor(table)
        _, stats = executor.execute(
            [RowRange(0, 1000)], {"a": (0, 50)}, "sum", "b"
        )
        assert stats.bytes_scanned == 8 * stats.values_scanned

    def test_batch_accounting_matches_singles(self, mixed_table):
        executor = ScanExecutor(mixed_table)
        n = mixed_table.num_rows
        specs = [
            ([RowRange(0, n)], {"tiny": (0, 100)}),
            ([RowRange(0, n)], {"small": (-100, 100)}),
        ]
        batched = executor.execute_batch(
            [r for r, _ in specs], [f for _, f in specs]
        )
        for (ranges, filters), (value, stats) in zip(specs, batched):
            single_value, single_stats = executor.execute(ranges, filters)
            assert value == single_value
            assert stats.values_scanned == single_stats.values_scanned
            assert stats.bytes_scanned == single_stats.bytes_scanned
