"""Tests for repro.stats.cdf."""

import numpy as np
import pytest

from repro.common.errors import IndexBuildError
from repro.stats.cdf import ConditionalCDF, EmpiricalCDF, HistogramCDF


class TestEmpiricalCDF:
    def test_monotone_and_bounded(self):
        values = np.random.default_rng(0).integers(0, 1000, 5000)
        cdf = EmpiricalCDF(values)
        xs = np.linspace(-100, 1100, 50)
        evaluations = [cdf.evaluate(float(x)) for x in xs]
        assert all(0.0 <= e <= 1.0 for e in evaluations)
        assert all(a <= b + 1e-12 for a, b in zip(evaluations, evaluations[1:]))

    def test_extremes(self):
        cdf = EmpiricalCDF(np.arange(100))
        assert cdf.evaluate(-1) == 0.0
        assert cdf.evaluate(99) == 1.0
        assert cdf.evaluate(1000) == 1.0

    def test_equal_depth_partitions(self):
        values = np.arange(10_000)
        cdf = EmpiricalCDF(values)
        partitions = cdf.partitions_of(values, 10)
        counts = np.bincount(partitions, minlength=10)
        # Equal-depth up to quantization noise.
        assert counts.min() > 800 and counts.max() < 1200

    def test_partition_of_range_consistency(self):
        values = np.random.default_rng(1).normal(0, 100, 4000).astype(np.int64)
        cdf = EmpiricalCDF(values)
        first, last = cdf.partition_range(-50, 50, 8)
        assert first == cdf.partition_of(-50, 8)
        assert last == cdf.partition_of(50, 8)
        assert first <= last

    def test_partition_bounds(self):
        cdf = EmpiricalCDF(np.arange(100))
        assert cdf.partition_of(99, 4) == 3
        assert cdf.partition_of(0, 4) == 0

    def test_knot_compression(self):
        values = np.random.default_rng(2).integers(0, 10_000, 50_000)
        compact = EmpiricalCDF(values, max_knots=64)
        exact = EmpiricalCDF(values, max_knots=100_000)
        xs = np.linspace(0, 10_000, 200)
        errors = np.abs(compact.evaluate_many(xs) - exact.evaluate_many(xs))
        assert errors.max() < 0.05
        assert compact.size_bytes() < exact.size_bytes()

    def test_empty_rejected(self):
        with pytest.raises(IndexBuildError):
            EmpiricalCDF(np.array([]))

    def test_invalid_partition_count(self):
        cdf = EmpiricalCDF(np.arange(10))
        with pytest.raises(ValueError):
            cdf.partition_of(5, 0)

    def test_constant_values(self):
        cdf = EmpiricalCDF(np.full(100, 7))
        assert cdf.partition_of(7, 4) in (0, 3)
        assert cdf.evaluate(6) == 0.0


class TestHistogramCDF:
    def test_monotone(self):
        values = np.random.default_rng(3).integers(0, 1000, 5000)
        cdf = HistogramCDF(values)
        xs = np.linspace(0, 1000, 100)
        evaluations = [cdf.evaluate(float(x)) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(evaluations, evaluations[1:]))

    def test_partition_of(self):
        cdf = HistogramCDF(np.arange(1000))
        assert cdf.partition_of(0, 4) == 0
        assert cdf.partition_of(999, 4) == 3

    def test_empty_rejected(self):
        with pytest.raises(IndexBuildError):
            HistogramCDF(np.array([]))


class TestConditionalCDF:
    def _make(self):
        rng = np.random.default_rng(4)
        x = rng.integers(0, 1000, 20_000)
        y = x * 2 + rng.integers(-10, 11, 20_000)
        x_cdf = EmpiricalCDF(x)
        x_partitions = x_cdf.partitions_of(x, 8)
        return x, y, x_partitions, ConditionalCDF(x_partitions, y, 8)

    def test_partitions_are_equal_depth_within_base(self):
        x, y, x_partitions, conditional = self._make()
        y_partitions = conditional.partitions_of(y, x_partitions, 4)
        for base in range(8):
            counts = np.bincount(y_partitions[x_partitions == base], minlength=4)
            assert counts.min() > 0.5 * counts.mean()

    def test_staggered_boundaries_on_correlated_data(self):
        # With y ~ 2x, the conditional median of y given the lowest x partition
        # must be far below the conditional median given the highest partition.
        _, y, x_partitions, conditional = self._make()
        low_model = conditional.model_for(0)
        high_model = conditional.model_for(7)
        median_low = np.quantile(y[x_partitions == 0], 0.5)
        assert low_model.evaluate(float(median_low)) > 0.4
        assert high_model.evaluate(float(median_low)) == 0.0

    def test_partition_range_given_base(self):
        _, y, x_partitions, conditional = self._make()
        first, last = conditional.partition_range(float(y.min()), float(y.max()), 3, 4)
        assert (first, last) == (0, 3)

    def test_invalid_base_partition(self):
        _, _, _, conditional = self._make()
        with pytest.raises(ValueError):
            conditional.model_for(99)

    def test_empty_base_partition_falls_back_to_marginal(self):
        y = np.arange(100)
        base = np.zeros(100, dtype=np.int64)  # partition 1 is empty
        conditional = ConditionalCDF(base, y, 2)
        assert conditional.model_for(1).evaluate(50) == pytest.approx(
            EmpiricalCDF(y).evaluate(50), abs=0.05
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(IndexBuildError):
            ConditionalCDF(np.zeros(5, dtype=np.int64), np.arange(4), 2)

    def test_size_bytes_positive(self):
        _, _, _, conditional = self._make()
        assert conditional.size_bytes() > 0
