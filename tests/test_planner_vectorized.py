"""Differential tests: the vectorized planner vs the reference recursive planner.

The vectorized planner (the default) must be indistinguishable from the
original per-cell recursive enumeration: identical spans, identical order,
identical ``exact`` flags, on every skeleton shape (independent / mapped /
conditional dimensions), partition vector, and query — including degenerate
queries with empty or inverted windows.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
from repro.core.query_types import PlanCache
from repro.core.skeleton import (
    ConditionalCDFStrategy,
    FunctionalMappingStrategy,
    IndependentCDFStrategy,
    Skeleton,
)
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.storage.table import Table

DIMS = ("a", "b", "c", "d")


def make_table(num_rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 10_000, num_rows)
    b = a * 2 + rng.integers(-60, 61, num_rows)  # tight correlation with a
    c = rng.integers(0, 700, num_rows)
    d = (a // 3) + rng.integers(-200, 201, num_rows)  # loose correlation
    return Table.from_arrays("diff", {"a": a, "b": b, "c": c, "d": d})


@st.composite
def planner_cases(draw):
    """A random (skeleton, partitions, table seed, queries) configuration."""
    num_dims = draw(st.integers(min_value=2, max_value=4))
    dims = DIMS[:num_dims]
    # Dimension "a" anchors the skeleton: bases and targets must stay
    # independent, so every other dimension may reference it.
    strategies = {"a": IndependentCDFStrategy()}
    for dim in dims[1:]:
        choice = draw(st.sampled_from(["independent", "conditional", "mapped"]))
        if choice == "conditional":
            strategies[dim] = ConditionalCDFStrategy(base="a")
        elif choice == "mapped":
            strategies[dim] = FunctionalMappingStrategy(target="a")
        else:
            strategies[dim] = IndependentCDFStrategy()
    skeleton = Skeleton(strategies)
    partitions = {
        dim: draw(st.integers(min_value=1, max_value=6))
        for dim in skeleton.grid_dimensions
    }
    table_seed = draw(st.integers(min_value=0, max_value=50))
    num_rows = draw(st.integers(min_value=200, max_value=800))

    queries = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        filtered = draw(
            st.lists(st.sampled_from(dims), unique=True, min_size=0, max_size=num_dims)
        )
        ranges = {}
        for dim in filtered:
            low = draw(st.integers(min_value=-2_000, max_value=22_000))
            # Occasionally inverted (low > high) to exercise empty windows.
            high = low + draw(st.integers(min_value=-500, max_value=9_000))
            ranges[dim] = (low, high)
        if not ranges:
            ranges = {"a": (0, draw(st.integers(min_value=0, max_value=10_000)))}
        try:
            queries.append(Query.from_ranges(ranges))
        except Exception:
            pass
    return skeleton, partitions, num_rows, table_seed, queries


class TestDifferentialPlanning:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(planner_cases())
    def test_vectorized_planner_matches_reference(self, case):
        skeleton, partitions, num_rows, table_seed, queries = case
        table = make_table(num_rows, table_seed)
        config = AugmentedGridConfig(skeleton=skeleton, partitions=partitions)
        model_cache: dict = {}
        vectorized = AugmentedGrid(config, planner="vectorized")
        reference = AugmentedGrid(config, planner="reference")
        vectorized.fit(table, model_cache=model_cache)
        reference.fit(table, model_cache=model_cache)
        for query in queries:
            spans_v, features_v = vectorized.plan(query)
            spans_r, features_r = reference.plan(query)
            assert spans_v == spans_r
            assert features_v == features_r

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(planner_cases())
    def test_cached_plans_match_reference(self, case):
        """Plan-cache hits must replay exactly the reference plan."""
        skeleton, partitions, num_rows, table_seed, queries = case
        table = make_table(num_rows, table_seed)
        config = AugmentedGridConfig(skeleton=skeleton, partitions=partitions)
        model_cache: dict = {}
        cached = AugmentedGrid(config, plan_cache=PlanCache())
        reference = AugmentedGrid(config, planner="reference")
        cached.fit(table, model_cache=model_cache)
        reference.fit(table, model_cache=model_cache)
        for query in queries * 2:  # second pass is all cache hits
            spans_c, _ = cached.plan(query)
            spans_r, _ = reference.plan(query)
            assert spans_c == spans_r
        assert cached.plan_cache.stats.hits >= len(queries)


class TestPlannerConfiguration:
    def test_unknown_planner_rejected(self):
        config = AugmentedGridConfig(
            skeleton=Skeleton.all_independent(["a"]), partitions={"a": 2}
        )
        with pytest.raises(ValueError):
            AugmentedGrid(config, planner="quantum")

    def test_fit_clears_plan_cache(self):
        table = make_table(400, seed=3)
        config = AugmentedGridConfig(
            skeleton=Skeleton.all_independent(["a", "b", "c", "d"]),
            partitions={"a": 4, "b": 4, "c": 2, "d": 2},
        )
        grid = AugmentedGrid(config, plan_cache=PlanCache())
        grid.fit(table)
        grid.plan(Query.from_ranges({"a": (0, 5_000)}))
        assert len(grid.plan_cache) == 1
        grid.fit(table)
        assert len(grid.plan_cache) == 0

    def test_vectorized_answers_match_full_scan(self):
        table = make_table(700, seed=4)
        config = AugmentedGridConfig(
            skeleton=Skeleton(
                {
                    "a": IndependentCDFStrategy(),
                    "b": ConditionalCDFStrategy(base="a"),
                    "c": IndependentCDFStrategy(),
                    "d": FunctionalMappingStrategy(target="a"),
                }
            ),
            partitions={"a": 5, "b": 4, "c": 3},
        )
        grid = AugmentedGrid(config)
        permutation = grid.fit(table)
        table.reorder(permutation)
        from repro.storage.scan import ScanExecutor

        executor = ScanExecutor(table)
        for ranges in (
            {"a": (1_000, 6_000)},
            {"b": (2_000, 9_000), "c": (100, 400)},
            {"d": (500, 2_500)},
            {"a": (20_000, 30_000)},  # empty result
        ):
            query = Query.from_ranges(ranges)
            expected, _ = execute_full_scan(table, query)
            value, _ = executor.execute(
                grid.ranges_for_query(query), query.filters(), query.aggregate
            )
            assert value == expected
