"""Tests for repro.core.cost_model."""

import pytest

from repro.core.cost_model import CostModel, QueryPlanFeatures


class TestQueryPlanFeatures:
    def test_scan_work(self):
        features = QueryPlanFeatures(num_cell_ranges=2, points_scanned=100, num_filtered_dimensions=3)
        assert features.scan_work == 300

    def test_scan_work_with_no_filters(self):
        features = QueryPlanFeatures(1, 50, 0)
        assert features.scan_work == 50

    def test_scanned_points_alias_is_gone(self):
        # The PR-2-era deprecated spelling was removed once the migration to
        # points_scanned completed; both the keyword and the attribute fail.
        with pytest.raises(TypeError):
            QueryPlanFeatures(
                num_cell_ranges=1, scanned_points=25, num_filtered_dimensions=2
            )
        features = QueryPlanFeatures(1, 25, 2)
        assert not hasattr(features, "scanned_points")


class TestCostModelPredict:
    def test_linear_form(self):
        model = CostModel(w0=10.0, w1=2.0)
        features = QueryPlanFeatures(num_cell_ranges=3, points_scanned=100, num_filtered_dimensions=2)
        assert model.predict(features) == 10 * 3 + 2 * 200

    def test_average(self):
        model = CostModel(w0=1.0, w1=1.0)
        features = [
            QueryPlanFeatures(1, 10, 1),
            QueryPlanFeatures(1, 30, 1),
        ]
        assert model.predict_average(features) == pytest.approx((11 + 31) / 2)

    def test_average_of_empty(self):
        assert CostModel().predict_average([]) == 0.0

    def test_more_scanning_costs_more(self):
        model = CostModel()
        cheap = QueryPlanFeatures(1, 10, 2)
        expensive = QueryPlanFeatures(1, 10_000, 2)
        assert model.predict(expensive) > model.predict(cheap)


class TestCalibration:
    def test_recovers_known_weights(self):
        true_model = CostModel(w0=40.0, w1=3.0)
        features = [
            QueryPlanFeatures(ranges, points, dims)
            for ranges, points, dims in [(1, 100, 1), (5, 50, 2), (10, 500, 3), (2, 1000, 1), (7, 10, 2)]
        ]
        times = [true_model.predict(f) for f in features]
        fitted = CostModel.calibrate(features, times)
        assert fitted.w0 == pytest.approx(40.0, rel=1e-6)
        assert fitted.w1 == pytest.approx(3.0, rel=1e-6)

    def test_weights_never_negative(self):
        features = [QueryPlanFeatures(1, 10, 1), QueryPlanFeatures(2, 20, 1), QueryPlanFeatures(3, 5, 2)]
        fitted = CostModel.calibrate(features, [1.0, 0.5, 0.1])
        assert fitted.w0 >= 0.0 and fitted.w1 >= 0.0

    def test_degenerate_inputs_fall_back(self):
        fitted = CostModel.calibrate([QueryPlanFeatures(1, 10, 1)], [5.0])
        assert isinstance(fitted, CostModel)

    def test_collinear_features(self):
        features = [QueryPlanFeatures(1, 10, 1)] * 5
        fitted = CostModel.calibrate(features, [10.0] * 5)
        assert fitted.predict(features[0]) == pytest.approx(10.0, rel=0.2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CostModel.calibrate([QueryPlanFeatures(1, 1, 1)], [1.0, 2.0])


class TestRelativeError:
    def test_zero_for_perfect_model(self):
        model = CostModel(w0=5.0, w1=1.0)
        features = [QueryPlanFeatures(2, 100, 1), QueryPlanFeatures(4, 10, 2)]
        times = [model.predict(f) for f in features]
        assert model.relative_error(features, times) == pytest.approx(0.0)

    def test_empty_features(self):
        assert CostModel().relative_error([], []) == 0.0

    def test_nonzero_for_wrong_model(self):
        features = [QueryPlanFeatures(1, 100, 1)]
        assert CostModel(w0=0.0, w1=1.0).relative_error(features, [200.0]) == pytest.approx(0.5)
