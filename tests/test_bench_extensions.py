"""Tests for the extension-ablation experiment drivers (repro.bench.extensions).

These run the drivers at a deliberately tiny scale; the assertions are about
structure and the qualitative ordering each driver exists to demonstrate, not
about absolute numbers (the benchmarks in ``benchmarks/`` run the real scale).
"""

import pytest

from repro.bench.experiments import ExperimentResult
from repro.bench.extensions import (
    experiment_extended_baselines,
    experiment_incremental_reopt,
    experiment_outlier_mappings,
)


class TestExtendedBaselines:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return experiment_extended_baselines(
            num_rows=4_000, queries_per_type=5, datasets=("tpch",), page_size=512
        )

    def test_returns_experiment_result_with_report(self, result):
        assert isinstance(result, ExperimentResult)
        assert "grid-file" in result.report
        assert "r-tree" in result.report

    def test_all_indexes_answer_correctly(self, result):
        for measurements in result.data.values():
            assert all(measurement.correct for measurement in measurements)

    def test_added_baselines_are_measured(self, result):
        names = {m.index_name for m in result.data["tpch"]}
        assert {"grid-file", "r-tree", "flood", "tsunami"} <= names


class TestOutlierMappings:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return experiment_outlier_mappings(num_rows=6_000, num_queries=20, partitions=32)

    def test_three_variants_reported(self, result):
        assert len(result.data) == 3
        assert "functional mapping (plain)" in result.data

    def test_outlier_buffer_beats_plain_mapping(self, result):
        plain = result.data["functional mapping (plain)"]["scanned"]
        buffered = result.data["functional mapping (outlier buffer)"]["scanned"]
        assert buffered < plain

    def test_mapping_variants_are_smaller_than_full_grid(self, result):
        grid = result.data["independent CDFs (no mapping)"]["size"]
        plain = result.data["functional mapping (plain)"]["size"]
        assert plain < grid


class TestIncrementalReopt:
    @pytest.fixture(scope="class")
    def result(self) -> ExperimentResult:
        return experiment_incremental_reopt(num_rows=6_000, queries_per_type=5, max_regions=2)

    def test_three_strategies_reported(self, result):
        assert set(result.data) == {"none", "incremental", "full"}

    def test_incremental_is_cheaper_than_full(self, result):
        assert (
            result.data["incremental"]["adaptation (s)"]
            < result.data["full"]["adaptation (s)"]
        )

    def test_incremental_never_hurts_scan_work(self, result):
        assert (
            result.data["incremental"]["avg points scanned (shifted)"]
            <= result.data["none"]["avg points scanned (shifted)"] * 1.10
        )
