"""Integration tests: realistic dataset/workload pairs through the full stack.

These are the closest tests to the paper's evaluation: every index must return
exactly the same answers as a full scan on every generated dataset, and the
learned indexes must show the qualitative advantages the paper claims
(Tsunami scans no more than Flood on skewed/correlated workloads).
"""

import pytest

from repro.baselines import FloodIndex, KdTreeIndex
from repro.bench.harness import expected_answers, run_comparison
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.datasets import load_dataset, make_correlated_dataset, synthetic_scaling_workload

FAST = dict(optimizer_iterations=1, optimizer_sample_rows=3_000)


@pytest.mark.parametrize("dataset", ["tpch", "taxi", "perfmon", "stocks"])
def test_all_indexes_agree_with_full_scan(dataset):
    table, workload = load_dataset(dataset, num_rows=8_000, queries_per_type=6)
    factories = {
        "kd-tree": lambda: KdTreeIndex(page_size=1024),
        "flood": lambda: FloodIndex(optimizer_iterations=1, sample_rows=3_000),
        "tsunami": lambda: TsunamiIndex(TsunamiConfig(**FAST)),
    }
    measurements = run_comparison(table, workload, factories, dataset_name=dataset)
    for measurement in measurements:
        assert measurement.correct, f"{measurement.index_name} wrong on {dataset}"


def test_tsunami_beats_flood_on_scanned_points_for_skewed_taxi():
    table, workload = load_dataset("taxi", num_rows=15_000, queries_per_type=12)
    expected = expected_answers(table, workload)
    flood = FloodIndex(optimizer_iterations=2, sample_rows=5_000)
    flood.build(table, workload)
    _, flood_stats = flood.execute_workload(workload)

    tsunami = TsunamiIndex(TsunamiConfig(optimizer_iterations=2, optimizer_sample_rows=5_000))
    tsunami.build(table, workload)
    results, tsunami_stats = tsunami.execute_workload(workload)

    assert [r.value for r in results] == expected
    assert tsunami_stats.points_scanned <= flood_stats.points_scanned


def test_augmented_grid_exploits_correlation_on_synthetic_data():
    table = make_correlated_dataset(num_rows=15_000, num_dimensions=6, seed=3)
    workload = synthetic_scaling_workload(table, queries_per_type=15, seed=4)
    expected = expected_answers(table, workload)

    flood = FloodIndex(optimizer_iterations=2, sample_rows=5_000)
    flood.build(table, workload)
    _, flood_stats = flood.execute_workload(workload)

    # Default Tsunami configuration (the one the benchmarks use).
    tsunami = TsunamiIndex(TsunamiConfig(optimizer_sample_rows=5_000))
    tsunami.build(table, workload)
    results, tsunami_stats = tsunami.execute_workload(workload)

    assert [r.value for r in results] == expected
    assert tsunami_stats.points_scanned <= flood_stats.points_scanned * 1.05


def test_rebuilding_on_same_table_is_idempotent():
    table, workload = load_dataset("stocks", num_rows=6_000, queries_per_type=5)
    expected = expected_answers(table, workload)
    index = TsunamiIndex(TsunamiConfig(**FAST))
    index.build(table, workload)
    index.build(table, workload)  # rebuild over the already-clustered table
    assert [index.execute(q).value for q in workload] == expected


def test_workload_statistics_are_in_paper_selectivity_band():
    table, workload = load_dataset("tpch", num_rows=20_000, queries_per_type=10)
    stats = workload.statistics(table)
    # The paper's workloads have average query selectivities below ~1.5%.
    assert stats.avg_selectivity < 0.05
    assert stats.num_query_types == 5
