"""Differential and concurrency tests for the serving front-end.

The front-end is the first component whose correctness is
concurrency-dependent, so the core assertions here are differential:
concurrent, cached, micro-batched serving must be bit-identical to
sequential uncached execution — including across the cache invalidations a
merge, a lifecycle reoptimization, or a sharded-index merge triggers.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.baselines.base import QueryResult
from repro.common.errors import (
    QueryError,
    SchemaError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.core.delta import DeltaBufferedIndex
from repro.core.lifecycle import LifecycleConfig, LifecycleManager
from repro.core.sharding import ShardedIndex
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine, execute_full_scan
from repro.query.query import Query
from repro.serve import ServingConfig, ServingFrontend
from repro.storage.table import Table


def tsunami_factory():
    return TsunamiIndex(TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=2_000))


def small_config(**overrides) -> ServingConfig:
    defaults = dict(max_batch_size=16, max_delay_seconds=0.002, max_queue_depth=512)
    defaults.update(overrides)
    return ServingConfig(**defaults)


def zipf_stream(queries: list[Query], count: int, seed: int = 5) -> list[Query]:
    """A bursty stream repeating ``queries`` with zipf-skewed frequencies."""
    rng = np.random.default_rng(seed)
    draws = rng.zipf(1.3, size=count) - 1
    return [queries[int(d) % len(queries)] for d in draws]


def serve_concurrently(
    frontend: ServingFrontend, stream: list[Query], num_clients: int = 8
) -> list[QueryResult]:
    with ThreadPoolExecutor(num_clients) as pool:
        return list(pool.map(frontend.query, stream))


def union_table(table: Table, rows: list[dict]) -> Table:
    """The original table plus ``rows`` — the full-scan oracle after inserts."""
    data = {
        name: np.concatenate(
            [table.values(name), np.asarray([row[name] for row in rows], dtype=np.int64)]
        )
        for name in table.column_names
    }
    return Table.from_arrays("oracle", data)


def insert_rows(count: int, seed: int = 23) -> list[dict]:
    rng = np.random.default_rng(seed)
    return [
        {
            "x": int(v),
            "y": int(v) * 3,
            "z": int(rng.integers(0, 1_000)),
            "c": int(rng.integers(0, 8)),
        }
        for v in rng.integers(0, 10_000, count)
    ]


class BlockingBackend:
    """A backend whose run_batch blocks until released (for queue tests)."""

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self.batches: list[list[Query]] = []

    def run_batch(self, queries):
        self.batches.append(list(queries))
        self.started.set()
        self.release.wait(timeout=30.0)
        from repro.storage.scan import ScanStats

        return [QueryResult(value=0.0, stats=ScanStats()) for _ in queries]


class TestConstruction:
    def test_backend_must_have_run_batch(self):
        with pytest.raises(ServingError):
            ServingFrontend(object())

    def test_negative_cache_capacity_rejected(self):
        with pytest.raises(ServingError):
            ServingConfig(cache_entries=-1)

    def test_cache_can_be_disabled(self, fresh_table, fresh_workload):
        index = tsunami_factory().build(fresh_table, fresh_workload)
        with ServingFrontend(
            QueryEngine(index), small_config(cache_entries=0)
        ) as frontend:
            assert frontend.cache is None
            query = list(fresh_workload)[0]
            assert frontend.query(query).value == index.execute(query).value
            assert frontend.stats.cache_hits == 0


class TestConcurrentDifferential:
    def test_concurrent_cached_equals_sequential_uncached(
        self, fresh_table, fresh_workload
    ):
        index = tsunami_factory().build(fresh_table, fresh_workload)
        queries = list(fresh_workload)
        # Sequential uncached reference: one engine, one query at a time.
        expected = {q: QueryEngine(index).run(q) for q in set(queries)}
        stream = zipf_stream(queries, 400)
        with ServingFrontend(QueryEngine(index), small_config()) as frontend:
            results = serve_concurrently(frontend, stream)
            for query, result in zip(stream, results):
                reference = expected[query]
                assert result.value == reference.value
                assert result.stats.rows_matched == reference.stats.rows_matched
            stats = frontend.describe()
        # The zipf stream actually exercised both the cache and the batcher.
        assert stats["cache"]["hits"] > 0
        assert stats["batching"]["batches"] < stats["serving"]["queries_submitted"]

    def test_lifecycle_backend_serves_identically(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=100_000)
        index.build(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=100_000))
        queries = list(fresh_workload)[:12]
        expected = [index.execute(q).value for q in queries]
        with ServingFrontend(manager, small_config()) as frontend:
            results = serve_concurrently(frontend, queries * 3)
        for query, result in zip(queries * 3, results):
            assert result.value == expected[queries.index(query)]


class TestWriteInvalidation:
    def test_insert_triggered_merge_invalidates_cache(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=50)
        index.build(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=100_000, merge_pressure=None)
        )
        probe = Query.from_ranges({"x": (2_000, 2_300)})
        rows = [{"x": 2_100, "y": 6_300, "z": 5, "c": 1} for _ in range(60)]
        with ServingFrontend(manager, small_config()) as frontend:
            before = frontend.query(probe).value
            assert frontend.query(probe).value == before  # warm: a cache hit
            assert frontend.stats.cache_hits >= 1
            frontend.insert_many(rows)  # 60 rows > threshold 50: merge fires
            assert len(index.merge_history) == 1
            assert frontend.stats.invalidations >= 1
            after = frontend.query(probe).value
            assert after == before + 60
            # Differential vs a fresh engine over the post-merge state (the
            # merged table plus the 10 rows still pending in the buffer).
            oracle = union_table(fresh_table, rows)
            expected, _ = execute_full_scan(oracle, probe)
            assert after == expected
            # And the re-cached entry keeps returning the post-merge answer.
            assert frontend.query(probe).value == expected

    def test_lifecycle_reoptimize_invalidates_cache(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=100_000)
        index.build(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=32, merge_pressure=None)
        )
        # 32 distinct novel queries (wide, single-dimension) so every one
        # misses the cache, reaches the backend, and is observed for drift.
        novel = [
            Query.from_ranges({"x": (low, low + 7_000)})
            for low in range(0, 3_200, 100)
        ]
        rows = insert_rows(15)
        with ServingFrontend(manager, small_config()) as frontend:
            warm = frontend.query(novel[0]).value
            frontend.insert_many(rows)
            invalidations_after_write = frontend.stats.invalidations
            serve_concurrently(frontend, novel)
            report = manager.report()
            assert report.drifts_detected == 1
            assert report.reoptimizations == 1
            assert report.merges == 1  # pending rows folded in before repair
            # The drift-triggered merge/reoptimize invalidated through the
            # lifecycle subscription, beyond the write-path invalidation.
            assert frontend.stats.invalidations > invalidations_after_write
            # Post-reoptimize answers are bit-identical to the full-scan
            # oracle over the merged table (nothing pending anymore).
            assert index.num_pending == 0
            for query in novel[:6] + list(fresh_workload)[:6]:
                expected, _ = execute_full_scan(index.table, query)
                assert frontend.query(query).value == expected
            oracle_warm, _ = execute_full_scan(index.table, novel[0])
            assert oracle_warm == warm + sum(
                1 for row in rows if 0 <= row["x"] <= 7_000
            )

    def test_sharded_merge_returns_post_merge_answers(self, fresh_table, fresh_workload):
        sharded = ShardedIndex(
            lambda: DeltaBufferedIndex(tsunami_factory, merge_threshold=40),
            num_shards=4,
            shard_dimension="x",
            parallelism=2,
        )
        sharded.build(fresh_table, fresh_workload)
        probe = Query.from_ranges({"x": (4_000, 4_300)})
        # All inserts land on one shard, so its buffer passes the merge
        # threshold and the shard merges mid-insert.
        rows = [{"x": 4_100, "y": 12_300, "z": 7, "c": 2} for _ in range(60)]
        with ServingFrontend(QueryEngine(sharded), small_config()) as frontend:
            before = frontend.query(probe).value
            assert frontend.query(probe).value == before
            frontend.insert_many(rows)
            assert any(len(shard.merge_history) == 1 for shard in sharded.shards)
            after = frontend.query(probe).value
            assert after == before + 60
            oracle = union_table(fresh_table, rows)
            for query in [probe] + list(fresh_workload)[:8]:
                expected, _ = execute_full_scan(oracle, query)
                assert frontend.query(query).value == expected
        # Frontend close flowed through QueryEngine.close to the shard pool.
        assert sharded._pool is None


class TestBackpressureAndShutdown:
    def test_overload_rejection_is_typed(self):
        backend = BlockingBackend()
        frontend = ServingFrontend(
            backend,
            ServingConfig(
                max_batch_size=1,
                max_delay_seconds=0.0,
                max_queue_depth=2,
                cache_entries=0,
            ),
        )
        queries = [Query.from_ranges({"x": (i, i + 1)}) for i in range(5)]
        threads = [
            threading.Thread(target=frontend.query, args=(queries[i],))
            for i in range(3)
        ]
        threads[0].start()
        assert backend.started.wait(timeout=5.0)  # dispatcher is mid-batch
        for thread in threads[1:]:
            thread.start()
        deadline = time.monotonic() + 5.0
        while frontend.batcher.depth < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert frontend.batcher.depth == 2  # admission queue is now full
        with pytest.raises(ServerOverloadedError):
            frontend.query(queries[3])
        assert frontend.stats.rejections == 1
        backend.release.set()
        for thread in threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        frontend.close()

    def test_query_timeout(self):
        backend = BlockingBackend()
        frontend = ServingFrontend(
            backend, ServingConfig(max_batch_size=1, cache_entries=0)
        )
        with pytest.raises(ServingError):
            frontend.query(Query.from_ranges({"x": (0, 1)}), timeout=0.05)
        backend.release.set()
        frontend.close()

    def test_backend_error_propagates_to_client(self, fresh_table, fresh_workload):
        index = tsunami_factory().build(fresh_table, fresh_workload)
        with ServingFrontend(QueryEngine(index), small_config()) as frontend:
            with pytest.raises(SchemaError):
                frontend.query(Query.from_ranges({"nope": (0, 1)}))
            # The dispatcher survives a failed batch and keeps serving.
            good = list(fresh_workload)[0]
            assert frontend.query(good).value == index.execute(good).value

    def test_close_rejects_new_queries_and_is_idempotent(
        self, fresh_table, fresh_workload
    ):
        index = tsunami_factory().build(fresh_table, fresh_workload)
        frontend = ServingFrontend(QueryEngine(index), small_config())
        query = list(fresh_workload)[0]
        frontend.query(query)
        frontend.close()
        frontend.close()  # idempotent
        assert frontend.closed
        with pytest.raises(ServerClosedError):
            frontend.query(query)
        with pytest.raises(ServerClosedError):
            frontend.insert_many(insert_rows(1))

    def test_close_unsubscribes_from_lifecycle(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=100_000)
        index.build(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=100_000))
        frontend = ServingFrontend(manager, small_config())
        assert manager._listeners == [frontend._on_lifecycle_event]
        frontend.close()
        assert manager._listeners == []

    def test_non_updatable_backend_rejects_inserts(self, fresh_table, fresh_workload):
        index = tsunami_factory().build(fresh_table, fresh_workload)
        # QueryEngine forwards insert_many, but a read-only index refuses it.
        with ServingFrontend(QueryEngine(index), small_config()) as frontend:
            with pytest.raises(QueryError):
                frontend.insert_many(insert_rows(1))


class TestLifecycleSubscription:
    def test_subscribe_is_deduplicated_and_unsubscribe_safe(
        self, fresh_table, fresh_workload
    ):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=100_000)
        index.build(fresh_table, fresh_workload)
        manager = LifecycleManager(index)
        events = []
        manager.subscribe(events.append)
        manager.subscribe(events.append)  # registered once
        manager.insert_many(insert_rows(600))  # pressure merge at 10%
        assert [event.kind for event in events] == ["merge"]
        manager.unsubscribe(events.append)
        manager.unsubscribe(events.append)  # unknown listener: ignored
        manager.insert_many(insert_rows(700, seed=29))
        assert len(events) == 1


class TestCacheHitObservation:
    """Cache hits must still feed the backend's drift observer (PR 8).

    The PR 6 cache answered repeated templates without touching the backend,
    so a LifecycleManager behind the front-end never saw the hottest queries
    and its drift windows starved exactly when caching worked best.
    """

    def test_cache_hits_reach_lifecycle_observer(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=100_000)
        index.build(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=64, reoptimize_on_drift=False)
        )
        query = list(fresh_workload)[0]
        with ServingFrontend(manager, small_config()) as frontend:
            for _ in range(260):
                frontend.query(query)
            # Only the cache misses executed, but every hit was observed:
            # submissions = backend executions + observed cache hits.
            frontend.query(query)  # one more round trip flushes stragglers
        stats = frontend.stats
        assert stats.cache_hits > 0
        report = manager.report()
        observed = stats.observed_cache_hits
        assert observed > 0
        assert observed <= stats.cache_hits
        # The drift windows were fed by cached traffic: far more windows than
        # the handful of actually-executed queries could ever fill.
        executed = report.queries_served
        assert executed + observed >= 64 * report.windows_observed
        assert report.windows_observed >= (executed + observed) // 64 - 1
        assert report.windows_observed > executed // 64

    def test_observation_preserves_served_values(self, fresh_table, fresh_workload):
        index = DeltaBufferedIndex(tsunami_factory, merge_threshold=100_000)
        index.build(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=32))
        queries = list(fresh_workload)[:8]
        expected = [index.execute(q).value for q in queries]
        stream = zipf_stream(queries, 500, seed=9)
        with ServingFrontend(manager, small_config()) as frontend:
            results = serve_concurrently(frontend, stream)
            observed = frontend.stats.observed_cache_hits
        for query, result in zip(stream, results):
            assert result.value == expected[queries.index(query)]
        assert observed > 0

    def test_engine_backend_has_no_observer(self, fresh_table, fresh_workload):
        index = tsunami_factory().build(fresh_table, fresh_workload)
        query = list(fresh_workload)[0]
        with ServingFrontend(QueryEngine(index), small_config()) as frontend:
            for _ in range(20):
                frontend.query(query)
            assert frontend.stats.cache_hits > 0
            assert frontend.stats.observed_cache_hits == 0
