"""Tests for the dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    load_dataset,
    make_correlated_dataset,
    make_perfmon_dataset,
    make_stocks_dataset,
    make_taxi_dataset,
    make_tpch_dataset,
    make_uniform_dataset,
    synthetic_scaling_workload,
)
from repro.datasets.tpch import tpch_shifted_templates, tpch_templates
from repro.stats.correlation import monotonic_correlation


class TestRegistry:
    def test_all_four_datasets_registered(self):
        assert set(DATASETS) == {"tpch", "taxi", "perfmon", "stocks"}

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_load_dataset_matches_paper_schema(self, name):
        table, workload = load_dataset(name, num_rows=3_000, queries_per_type=5)
        spec = DATASETS[name]
        assert table.num_rows == 3_000
        assert table.num_dimensions >= spec.paper_dimensions - 1
        assert len(workload) == spec.paper_query_types * 5
        assert len(workload.query_types()) == spec.paper_query_types

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("unknown")

    def test_deterministic_generation(self):
        table_a, workload_a = load_dataset("stocks", num_rows=2_000, queries_per_type=3)
        table_b, workload_b = load_dataset("stocks", num_rows=2_000, queries_per_type=3)
        assert np.array_equal(table_a.values("close"), table_b.values("close"))
        assert workload_a[0].filters() == workload_b[0].filters()

    def test_different_seeds_differ(self):
        table_a, _ = load_dataset("taxi", num_rows=2_000, seed=1)
        table_b, _ = load_dataset("taxi", num_rows=2_000, seed=2)
        assert not np.array_equal(table_a.values("fare"), table_b.values("fare"))


class TestDocumentedCorrelations:
    def test_tpch_date_correlations(self):
        table = make_tpch_dataset(num_rows=10_000)
        rho = monotonic_correlation(table.values("shipdate"), table.values("receiptdate"))
        assert rho > 0.95

    def test_tpch_price_quantity_correlation(self):
        table = make_tpch_dataset(num_rows=10_000)
        rho = monotonic_correlation(table.values("quantity"), table.values("extendedprice"))
        assert rho > 0.3

    def test_taxi_fare_distance_correlation(self):
        table = make_taxi_dataset(num_rows=10_000)
        rho = monotonic_correlation(table.values("trip_distance"), table.values("fare"))
        assert rho > 0.9

    def test_taxi_pickup_dropoff_correlation(self):
        table = make_taxi_dataset(num_rows=10_000)
        rho = monotonic_correlation(table.values("pickup_time"), table.values("dropoff_time"))
        assert rho > 0.99

    def test_perfmon_load_correlation(self):
        table = make_perfmon_dataset(num_rows=10_000)
        rho = monotonic_correlation(table.values("load_1m"), table.values("load_5m"))
        assert rho > 0.8

    def test_stocks_open_close_correlation(self):
        table = make_stocks_dataset(num_rows=10_000)
        rho = monotonic_correlation(table.values("open"), table.values("close"))
        assert rho > 0.95

    def test_taxi_passenger_count_skew(self):
        table = make_taxi_dataset(num_rows=10_000)
        counts = np.bincount(table.values("passenger_count"))
        assert counts[1] > 0.6 * table.num_rows  # most trips are single-passenger


class TestSyntheticDatasets:
    def test_uniform_dimensions_uncorrelated(self):
        table = make_uniform_dataset(num_rows=10_000, num_dimensions=6)
        assert table.num_dimensions == 6
        rho = monotonic_correlation(table.values("d0"), table.values("d3"))
        assert abs(rho) < 0.05

    def test_correlated_dataset_pairs(self):
        table = make_correlated_dataset(num_rows=10_000, num_dimensions=8)
        # d4 is strongly correlated with d0, d5 loosely with d1.
        assert monotonic_correlation(table.values("d0"), table.values("d4")) > 0.99
        assert monotonic_correlation(table.values("d1"), table.values("d5")) > 0.8

    def test_correlated_dataset_needs_two_dims(self):
        with pytest.raises(ValueError):
            make_correlated_dataset(num_dimensions=1)

    @pytest.mark.parametrize("dims", [4, 8, 12])
    def test_dimension_counts(self, dims):
        table = make_correlated_dataset(num_rows=2_000, num_dimensions=dims)
        assert table.num_dimensions == dims

    def test_scaling_workload_has_four_types(self):
        table = make_correlated_dataset(num_rows=5_000, num_dimensions=8)
        workload = synthetic_scaling_workload(table, queries_per_type=10)
        assert len(workload.query_types()) == 4
        assert len(workload) == 40

    def test_earlier_dimensions_more_selective(self):
        table = make_uniform_dataset(num_rows=20_000, num_dimensions=8)
        workload = synthetic_scaling_workload(table, queries_per_type=20)
        from repro.query.selectivity import average_dimension_selectivity

        sel_first = average_dimension_selectivity(
            table, [q for q in workload if q.predicate_for("d0")], "d0"
        )
        sel_last_filtered = average_dimension_selectivity(
            table, [q for q in workload if q.predicate_for("d3")], "d3"
        )
        assert sel_first < sel_last_filtered


class TestTpchWorkloads:
    def test_shifted_templates_differ_from_original(self):
        original = {t.name for t in tpch_templates()}
        shifted = {t.name for t in tpch_shifted_templates()}
        assert original.isdisjoint(shifted)

    def test_templates_reference_existing_columns(self):
        table = make_tpch_dataset(num_rows=1_000)
        for template in tpch_templates() + tpch_shifted_templates():
            for dim in template.filters:
                assert dim in table
