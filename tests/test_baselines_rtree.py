"""Tests for the STR bulk-loaded R-tree baseline (repro.baselines.rtree)."""

import numpy as np
import pytest

from repro.baselines.rtree import RTreeIndex
from repro.common.errors import IndexBuildError
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.storage.table import Table


def extra_queries(seed: int = 1) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(15):
        low_x = int(rng.integers(0, 9_000))
        low_z = int(rng.integers(0, 900))
        queries.append(
            Query.from_ranges({"x": (low_x, low_x + 500), "z": (low_z, low_z + 80)})
        )
    queries.append(Query.from_ranges({"y": (0, 5_000)}))
    queries.append(Query.from_ranges({"x": (50_000, 60_000)}))  # empty result
    queries.append(Query(predicates=()))  # unfiltered
    return queries


class TestCorrectness:
    def test_workload_and_extra_queries(self, fresh_table, fresh_workload):
        index = RTreeIndex(page_size=256)
        index.build(fresh_table, fresh_workload)
        for query in list(fresh_workload) + extra_queries():
            expected, _ = execute_full_scan(fresh_table, query)
            assert index.execute(query).value == expected

    def test_aggregations(self, fresh_table, fresh_workload):
        index = RTreeIndex(page_size=256).build(fresh_table, fresh_workload)
        for aggregate in ("sum", "min", "max"):
            query = Query.from_ranges(
                {"x": (500, 7_500)}, aggregate=aggregate, aggregate_column="y"
            )
            expected, _ = execute_full_scan(fresh_table, query)
            assert index.execute(query).value == pytest.approx(expected)

    def test_build_without_workload(self, fresh_table):
        index = RTreeIndex(page_size=512).build(fresh_table, None)
        query = Query.from_ranges({"x": (2_000, 3_000)})
        expected, _ = execute_full_scan(fresh_table, query)
        assert index.execute(query).value == expected

    def test_filter_on_unindexed_dimension_still_correct(self, fresh_table, fresh_workload):
        index = RTreeIndex(page_size=256, max_indexed_dimensions=1)
        index.build(fresh_table, fresh_workload)
        query = Query.from_ranges({"c": (0, 2), "x": (0, 4_000)})
        expected, _ = execute_full_scan(fresh_table, query)
        assert index.execute(query).value == expected


class TestStructure:
    def test_leaves_respect_page_size(self, fresh_table, fresh_workload):
        index = RTreeIndex(page_size=200).build(fresh_table, fresh_workload)
        assert index._num_leaves >= fresh_table.num_rows / 200

    def test_height_grows_with_smaller_fanout(self, fresh_table, fresh_workload):
        wide = RTreeIndex(page_size=128, fanout=64).build(fresh_table, fresh_workload)
        narrow = RTreeIndex(page_size=128, fanout=2).build(fresh_table, fresh_workload)
        assert narrow.height >= wide.height

    def test_pruning_reduces_scanned_points(self, fresh_table, fresh_workload):
        index = RTreeIndex(page_size=128).build(fresh_table, fresh_workload)
        narrow = Query.from_ranges({"x": (100, 400)})
        result = index.execute(narrow)
        assert result.stats.points_scanned < fresh_table.num_rows

    def test_selective_dimensions_come_first(self, fresh_table, fresh_workload):
        index = RTreeIndex(page_size=256).build(fresh_table, fresh_workload)
        assert set(index.dimensions) <= set(fresh_table.column_names)
        assert len(index.dimensions) <= index.max_indexed_dimensions

    def test_describe_and_size(self, fresh_table, fresh_workload):
        index = RTreeIndex(page_size=256).build(fresh_table, fresh_workload)
        info = index.describe()
        assert info["name"] == "r-tree"
        assert info["num_leaves"] == index._num_leaves
        assert info["height"] == index.height
        assert index.index_size_bytes() > 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_size": 0},
            {"fanout": 1},
            {"max_indexed_dimensions": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RTreeIndex(**kwargs)

    def test_empty_requested_dimensions_rejected(self, fresh_table):
        with pytest.raises(IndexBuildError):
            RTreeIndex(dimensions=[]).build(fresh_table, None)

    def test_empty_table_rejected(self):
        empty = Table.from_arrays("e", {"x": np.array([], dtype=np.int64)})
        with pytest.raises(IndexBuildError):
            RTreeIndex().build(empty, None)

    def test_query_before_build_raises(self):
        with pytest.raises(IndexBuildError):
            RTreeIndex().execute(Query.from_ranges({"x": (0, 1)}))
