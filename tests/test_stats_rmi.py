"""Tests for repro.stats.rmi."""

import numpy as np
import pytest

from repro.common.errors import IndexBuildError
from repro.stats.cdf import EmpiricalCDF
from repro.stats.rmi import RecursiveModelIndex


class TestRecursiveModelIndex:
    def test_bounded_output(self):
        values = np.random.default_rng(0).integers(0, 100_000, 20_000)
        rmi = RecursiveModelIndex(values)
        for x in np.linspace(-1000, 101_000, 64):
            assert 0.0 <= rmi.evaluate(float(x)) <= 1.0

    def test_extremes(self):
        rmi = RecursiveModelIndex(np.arange(1000))
        assert rmi.evaluate(-1) == 0.0
        assert rmi.evaluate(2000) == 1.0

    def test_close_to_empirical_cdf_on_uniform_data(self):
        values = np.random.default_rng(1).integers(0, 1_000_000, 50_000)
        rmi = RecursiveModelIndex(values, num_leaf_models=64)
        cdf = EmpiricalCDF(values)
        xs = np.linspace(0, 1_000_000, 200)
        errors = np.abs(rmi.evaluate_many(xs) - cdf.evaluate_many(xs))
        assert errors.max() < 0.05

    def test_partition_of_in_range(self):
        values = np.random.default_rng(2).normal(0, 1000, 10_000).astype(np.int64)
        rmi = RecursiveModelIndex(values)
        for x in (-3000, 0, 3000):
            assert 0 <= rmi.partition_of(x, 16) < 16

    def test_skewed_data(self):
        values = np.random.default_rng(3).exponential(100, 30_000).astype(np.int64)
        rmi = RecursiveModelIndex(values, num_leaf_models=32)
        cdf = EmpiricalCDF(values)
        xs = np.linspace(0, float(values.max()), 100)
        errors = np.abs(rmi.evaluate_many(xs) - cdf.evaluate_many(xs))
        assert errors.mean() < 0.05

    def test_constant_values(self):
        rmi = RecursiveModelIndex(np.full(100, 42))
        assert rmi.evaluate(41) == 0.0
        assert rmi.evaluate(43) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(IndexBuildError):
            RecursiveModelIndex(np.array([]))

    def test_invalid_leaf_count(self):
        with pytest.raises(ValueError):
            RecursiveModelIndex(np.arange(10), num_leaf_models=0)

    def test_size_bytes_scales_with_leaves(self):
        small = RecursiveModelIndex(np.arange(1000), num_leaf_models=8)
        large = RecursiveModelIndex(np.arange(1000), num_leaf_models=64)
        assert large.size_bytes() > small.size_bytes()
