"""Tests for repro.stats.clustering (from-scratch DBSCAN)."""

import numpy as np
import pytest

from repro.stats.clustering import NOISE, assign_noise_to_clusters, dbscan


def two_blobs(n_per_blob: int = 50, separation: float = 10.0, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    blob_a = rng.normal(0.0, 0.3, size=(n_per_blob, 2))
    blob_b = rng.normal(separation, 0.3, size=(n_per_blob, 2))
    return np.vstack([blob_a, blob_b])


class TestDbscan:
    def test_two_well_separated_blobs(self):
        points = two_blobs()
        labels = dbscan(points, eps=1.5, min_samples=4)
        assert set(labels[:50]) == {labels[0]}
        assert set(labels[50:]) == {labels[50]}
        assert labels[0] != labels[50]

    def test_single_cluster(self):
        points = np.random.default_rng(1).normal(0, 0.2, size=(40, 2))
        labels = dbscan(points, eps=1.0, min_samples=4)
        assert len(set(labels.tolist())) == 1
        assert NOISE not in labels

    def test_all_noise_when_eps_tiny(self):
        points = two_blobs(n_per_blob=10)
        labels = dbscan(points, eps=1e-9, min_samples=3)
        assert set(labels.tolist()) == {NOISE}

    def test_isolated_point_is_noise(self):
        points = np.vstack([np.zeros((20, 2)), np.array([[100.0, 100.0]])])
        labels = dbscan(points, eps=1.0, min_samples=4)
        assert labels[-1] == NOISE

    def test_one_dimensional_input(self):
        points = np.concatenate([np.zeros(20), np.full(20, 50.0)])
        labels = dbscan(points, eps=1.0, min_samples=3)
        assert labels[0] != labels[-1]

    def test_empty_input(self):
        assert dbscan(np.empty((0, 2)), eps=0.5).size == 0

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 2)), eps=0.0)

    def test_invalid_min_samples(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 2)), eps=1.0, min_samples=0)

    def test_deterministic(self):
        points = two_blobs(seed=5)
        labels_a = dbscan(points, eps=1.5, min_samples=4)
        labels_b = dbscan(points, eps=1.5, min_samples=4)
        assert np.array_equal(labels_a, labels_b)


class TestAssignNoise:
    def test_noise_folded_into_nearest_cluster(self):
        points = np.vstack([np.zeros((20, 2)), np.full((20, 2), 10.0), [[9.0, 9.0]]])
        labels = dbscan(points, eps=1.0, min_samples=4)
        assert labels[-1] == NOISE
        folded = assign_noise_to_clusters(points, labels)
        assert folded[-1] == folded[20]

    def test_all_noise_becomes_singletons(self):
        points = np.array([[0.0, 0.0], [100.0, 0.0], [200.0, 0.0]])
        labels = dbscan(points, eps=1.0, min_samples=2)
        folded = assign_noise_to_clusters(points, labels)
        assert len(set(folded.tolist())) == 3

    def test_no_noise_is_identity(self):
        points = np.random.default_rng(2).normal(0, 0.1, size=(30, 2))
        labels = dbscan(points, eps=1.0, min_samples=3)
        assert np.array_equal(labels, assign_noise_to_clusters(points, labels))
