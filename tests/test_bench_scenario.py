"""Tests for the config-driven scenario harness (PR 8).

Covers the three layers of ``repro.bench``'s scenario subsystem:

* :mod:`repro.bench.scenario` — the declarative config schema: parsing,
  strict validation, round-tripping, and the shipped ``benchmarks/configs/``
  directory.
* :mod:`repro.bench.workloads` — axis materialization: seed threading (the
  whole scenario derives from ``ScenarioConfig.seed``), template roles,
  drift schedules, write schedules, and the categorical column.
* :mod:`repro.bench.runner` — end-to-end scenario runs with the full-scan
  oracle, including the ≥100k-row categorical differential across the plain,
  delta-buffered, and sharded serving paths, threshold gating, and report
  schema validation.
"""

from pathlib import Path

import pytest

from repro.bench.runner import run_scenario, validate_report
from repro.bench.scenario import (
    FigureConfig,
    ScenarioConfig,
    TrackerConfig,
    load_config,
    parse_config,
    validate_directory,
)
from repro.bench.workloads import build_fault_plan, build_scenario_data
from repro.common.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG_DIR = REPO_ROOT / "benchmarks" / "configs"


def scenario_raw(**overrides) -> dict:
    raw = {
        "kind": "scenario",
        "name": "unit",
        "seed": 42,
        "dataset": {"source": "correlated_xyz", "num_rows": 4_000},
        "workload": {"num_templates": 8, "num_queries": 64},
        "indexes": [{"kind": "kdtree"}],
    }
    raw.update(overrides)
    return raw


class TestConfigSchema:
    def test_round_trip(self):
        config = parse_config(scenario_raw())
        assert isinstance(config, ScenarioConfig)
        again = parse_config(config.to_dict())
        assert again == config

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            parse_config(scenario_raw(surprise=1))

    def test_unknown_nested_key_rejected(self):
        raw = scenario_raw()
        raw["workload"]["typo_knob"] = 3
        with pytest.raises(ConfigError, match="typo_knob"):
            parse_config(raw)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            parse_config(scenario_raw(kind="mystery"))

    def test_unknown_index_kind_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(scenario_raw(indexes=[{"kind": "btree"}]))

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ConfigError, match="schema_version"):
            parse_config(scenario_raw(schema_version=99))

    def test_writes_require_updatable_variant(self):
        raw = scenario_raw(indexes=[{"kind": "kdtree"}])
        raw["workload"]["writes"] = {"write_fraction": 0.1}
        with pytest.raises(ConfigError, match="write"):
            parse_config(raw)

    def test_writes_accept_delta_variant(self):
        raw = scenario_raw(indexes=[{"kind": "kdtree", "variant": "delta"}])
        raw["workload"]["writes"] = {"write_fraction": 0.1}
        config = parse_config(raw)
        assert config.workload.writes is not None

    def test_faults_require_all_sharded_and_no_verify(self):
        raw = scenario_raw(
            faults={"error_probability": 0.1},
            indexes=[{"kind": "kdtree"}],
        )
        with pytest.raises(ConfigError, match="shard"):
            parse_config(raw)
        sharded = scenario_raw(
            faults={"error_probability": 0.1},
            indexes=[{"kind": "kdtree", "variant": "sharded"}],
            thresholds={"require_correct": False},
        )
        with pytest.raises(ConfigError, match="verify"):
            parse_config(sharded)
        sharded["verify"] = False
        assert parse_config(sharded).faults is not None

    def test_duplicate_index_labels_rejected(self):
        with pytest.raises(ConfigError, match="label"):
            parse_config(scenario_raw(indexes=[{"kind": "kdtree"}, {"kind": "kdtree"}]))

    def test_dimension_sweep(self):
        raw = scenario_raw(
            dataset={"source": "uniform", "num_rows": 1_000, "num_dimensions": [3, 5]}
        )
        config = parse_config(raw)
        assert config.dataset.dimension_sweep() == (3, 5)

    def test_tracker_requires_both_scales(self):
        raw = {
            "kind": "tracker",
            "name": "t",
            "tracker": "faults",
            "output": "BENCH_x.json",
            "scales": {"smoke": {"num_rows": 1}},
        }
        with pytest.raises(ConfigError, match="full"):
            parse_config(raw)

    def test_figure_rejects_unknown_experiment(self):
        raw = {"kind": "figure", "name": "f", "experiment": "fig99"}
        with pytest.raises(ConfigError, match="fig99"):
            parse_config(raw)

    def test_load_config_reports_bad_json(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_config(bad)


class TestShippedConfigs:
    def test_every_shipped_config_is_valid(self):
        configs = validate_directory(CONFIG_DIR)
        assert len(configs) >= 15
        kinds = {type(config).__name__ for _, config in configs}
        assert kinds == {"ScenarioConfig", "TrackerConfig", "FigureConfig"}

    def test_tracker_configs_cover_all_five_bench_outputs(self):
        outputs = {
            config.output
            for _, config in validate_directory(CONFIG_DIR)
            if isinstance(config, TrackerConfig)
        }
        assert outputs == {
            "BENCH_throughput.json",
            "BENCH_updates.json",
            "BENCH_shards.json",
            "BENCH_serving.json",
            "BENCH_faults.json",
        }

    def test_scenario_axes_are_all_covered(self):
        scenarios = [
            config
            for _, config in validate_directory(CONFIG_DIR)
            if isinstance(config, ScenarioConfig)
        ]
        assert any(s.workload.writes is not None for s in scenarios)
        assert any(s.workload.point_lookup_fraction > 0 for s in scenarios)
        assert any(s.workload.categorical_fraction > 0 for s in scenarios)
        assert any(len(s.dataset.dimension_sweep()) > 1 for s in scenarios)
        schedules = {s.workload.drift.schedule for s in scenarios}
        assert {"step_shift", "rotating_hotspot"} <= schedules
        # Every new axis runs across at least three distinct baselines.
        kinds = {ix.kind for s in scenarios for ix in s.indexes}
        assert {"flood", "kdtree", "rtree", "zorder", "gridfile", "octree"} <= kinds

    def test_figure_configs_map_paper_experiments(self):
        figures = {
            config.experiment
            for _, config in validate_directory(CONFIG_DIR)
            if isinstance(config, FigureConfig)
        }
        assert {"fig7", "fig9a", "fig9b", "fig10"} <= figures


class TestSeedThreading:
    """One ``seed`` drives dataset, templates, stream, writes, and faults."""

    def _config(self, seed=42):
        raw = scenario_raw(
            seed=seed,
            verify=False,
            indexes=[
                {"kind": "kdtree", "variant": "sharded", "num_shards": 2}
            ],
            faults={"error_probability": 0.2},
            thresholds={"require_correct": False},
        )
        return parse_config(raw)

    def test_same_seed_reproduces_everything(self):
        config = self._config()
        a = build_scenario_data(config, 3)
        b = build_scenario_data(config, 3)
        assert a.stream == b.stream
        assert list(a.build_workload) == list(b.build_workload)
        assert a.fault_seed == b.fault_seed
        for name in a.table.column_names:
            assert (a.table.values(name) == b.table.values(name)).all()
        plan_a, plan_b = build_fault_plan(config, a), build_fault_plan(config, b)
        assert plan_a is not None and plan_b is not None
        # Both plans are seeded from the same derived fault seed, so their
        # injection decisions replay identically.
        assert plan_a._rng.random() == plan_b._rng.random()

    def test_same_seed_reproduces_write_batches(self):
        raw = scenario_raw(indexes=[{"kind": "kdtree", "variant": "delta"}])
        raw["workload"]["writes"] = {"write_fraction": 0.2, "rows_per_write": 16}
        config = parse_config(raw)
        a = build_scenario_data(config, 3)
        b = build_scenario_data(config, 3)
        assert [w.position for w in a.writes] == [w.position for w in b.writes]
        assert a.writes and a.writes[0].rows == b.writes[0].rows

    def test_different_seed_changes_the_stream(self):
        a = build_scenario_data(self._config(seed=1), 3)
        b = build_scenario_data(self._config(seed=2), 3)
        assert a.stream != b.stream
        assert a.fault_seed != b.fault_seed


class TestWorkloadAxes:
    def test_point_lookup_fraction_yields_equality_templates(self):
        raw = scenario_raw()
        raw["workload"]["point_lookup_fraction"] = 1.0
        data = build_scenario_data(parse_config(raw), 3)
        for query in data.build_workload:
            for low, high in query.filters().values():
                assert low == high

    def test_categorical_axis_adds_dictionary_predicates(self):
        raw = scenario_raw(
            dataset={
                "source": "correlated_xyz",
                "num_rows": 4_000,
                "categorical": {"dimension": "cat", "cardinality": 8},
            }
        )
        raw["workload"]["categorical_fraction"] = 1.0
        data = build_scenario_data(parse_config(raw), 3)
        assert "cat" in data.table.column_names
        assert data.table.column("cat").dictionary is not None
        hybrid = [q for q in data.build_workload if "cat" in q.filters()]
        assert hybrid, "no hybrid categorical templates generated"
        for query in hybrid:
            low, high = query.filters()["cat"]
            assert low == high  # dictionary predicates are equalities
            assert len(query.filters()) > 1  # hybrid: ranges + category

    def test_step_shift_changes_template_pool_between_phases(self):
        raw = scenario_raw()
        raw["workload"]["drift"] = {"schedule": "step_shift", "phases": 2}
        raw["workload"]["num_queries"] = 200
        data = build_scenario_data(parse_config(raw), 3)
        first = set(data.stream[:100])
        second = set(data.stream[100:])
        assert first.isdisjoint(second), "phases must draw from shifted pools"

    def test_write_schedule_interleaves_by_fraction(self):
        raw = scenario_raw(indexes=[{"kind": "kdtree", "variant": "delta"}])
        raw["workload"]["num_queries"] = 100
        raw["workload"]["writes"] = {"write_fraction": 0.25, "rows_per_write": 8}
        data = build_scenario_data(parse_config(raw), 3)
        # 25% writes -> one write event every ~3 queries, bounded by stream.
        assert len(data.writes) >= 20
        assert all(len(w.rows) == 8 for w in data.writes)
        assert all(0 < w.position <= 100 for w in data.writes)


class TestScenarioRunner:
    def test_report_passes_schema_validation(self):
        report = run_scenario(parse_config(scenario_raw()))
        assert validate_report(report) is report
        assert report["ok"] is True
        assert report["schema_version"] == 1

    def test_validate_report_rejects_missing_keys(self):
        report = run_scenario(parse_config(scenario_raw()))
        del report["results"][0]["indexes"][0]["queries_per_second"]
        with pytest.raises(ConfigError):
            validate_report(report)

    def test_oracle_catches_threshold_violation(self):
        raw = scenario_raw(
            thresholds={"min_queries_per_second": 1e12},
        )
        report = run_scenario(parse_config(raw))
        assert report["ok"] is False
        assert any("qps floor" in v for v in report["violations"])

    def test_relative_speedup_threshold(self):
        raw = scenario_raw(
            indexes=[{"kind": "kdtree"}, {"kind": "octree"}],
            thresholds={
                "speedup_of": "kdtree",
                "speedup_over": "octree",
                "min_speedup": 1e9,
            },
        )
        report = run_scenario(parse_config(raw))
        assert report["ok"] is False
        assert any("x floor" in v and "kdtree" in v for v in report["violations"])

    def test_dimension_sweep_produces_one_cell_per_dimensionality(self):
        raw = scenario_raw(
            dataset={"source": "uniform", "num_rows": 2_000, "num_dimensions": [3, 4]},
            workload={"num_templates": 6, "num_queries": 32},
        )
        report = run_scenario(parse_config(raw))
        assert [cell["num_dimensions"] for cell in report["results"]] == [3, 4]
        assert report["ok"] is True


class TestCategoricalDifferential:
    """Hybrid categorical predicates vs the full-scan oracle at 100k rows.

    ``CategoricalReordering`` rewrites dictionary equalities over the
    reordered column; the scenario runner serves every query through the
    index under test *and* replays it through ``execute_full_scan`` on the
    same reordered table, so any rewrite or layout bug shows up as a value
    mismatch.  Exercises the plain, delta-buffered, and sharded paths.
    """

    @pytest.fixture(scope="class")
    def report(self):
        raw = {
            "kind": "scenario",
            "name": "categorical-differential",
            "seed": 1234,
            "dataset": {
                "source": "correlated_xyz",
                "num_rows": 100_000,
                "categorical": {"dimension": "category", "cardinality": 16},
            },
            "workload": {
                "num_templates": 12,
                "num_queries": 96,
                "categorical_fraction": 0.5,
                "reorder_categorical": True,
            },
            "indexes": [
                {"kind": "gridfile"},
                {"kind": "kdtree", "variant": "delta"},
                {"kind": "zorder", "variant": "sharded", "num_shards": 4},
            ],
        }
        return run_scenario(parse_config(raw))

    def test_all_paths_match_the_oracle(self, report):
        assert report["ok"] is True, report["violations"]
        (cell,) = report["results"]
        variants = {ix["variant"]: ix for ix in cell["indexes"]}
        assert set(variants) == {"plain", "delta", "sharded"}
        for ix in cell["indexes"]:
            assert ix["correct"] is True, ix
            assert ix["mismatches"] == 0

    def test_reordering_was_actually_applied(self, report):
        (cell,) = report["results"]
        summary = cell.get("categorical_reordering")
        assert summary, "categorical reordering summary missing from report"
