"""Tests for the typed error hierarchy (repro.common.errors).

Serving errors cross thread/future boundaries and benchmark subprocess
boundaries, so every class must be importable from the top-level package,
pickle-safe with its structured fields intact, and correctly rooted in the
hierarchy callers catch at API boundaries.
"""

import pickle

import pytest

import repro
from repro.baselines.base import QueryResult
from repro.common.errors import (
    CircuitOpenError,
    DispatcherCrashedError,
    IndexBuildError,
    InjectedFault,
    OptimizationError,
    PartialResultError,
    QueryError,
    QueryTimeoutError,
    ReproError,
    SchemaError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
    ShardTimeoutError,
)
from repro.query.query import Query
from repro.serve.frontend import ServingConfig, ServingFrontend
from repro.storage.scan import ScanStats

ALL_ERRORS = [
    ReproError,
    SchemaError,
    QueryError,
    IndexBuildError,
    OptimizationError,
    ServingError,
    ServerOverloadedError,
    ServerClosedError,
    QueryTimeoutError,
    ShardTimeoutError,
    CircuitOpenError,
    PartialResultError,
    DispatcherCrashedError,
    InjectedFault,
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_every_error_is_a_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    @pytest.mark.parametrize(
        "cls",
        [
            ServerOverloadedError,
            ServerClosedError,
            QueryTimeoutError,
            ShardTimeoutError,
            CircuitOpenError,
            PartialResultError,
            DispatcherCrashedError,
        ],
    )
    def test_serving_failures_are_serving_errors(self, cls):
        assert issubclass(cls, ServingError)

    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_every_error_is_exported_from_the_package(self, cls):
        assert getattr(repro, cls.__name__) is cls
        assert cls.__name__ in repro.__all__


def _roundtrip(error):
    return pickle.loads(pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL))


class TestPickling:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_message_only_construction_roundtrips(self, cls):
        clone = _roundtrip(cls("something broke"))
        assert type(clone) is cls
        assert "something broke" in str(clone)

    def test_query_timeout_fields(self):
        clone = _roundtrip(QueryTimeoutError("too slow", timeout_seconds=0.25))
        assert clone.timeout_seconds == 0.25
        assert clone.message == "too slow"

    def test_shard_timeout_fields(self):
        clone = _roundtrip(
            ShardTimeoutError("shard 3 stalled", shard=3, timeout_seconds=1.5)
        )
        assert clone.shard == 3
        assert clone.timeout_seconds == 1.5

    def test_circuit_open_fields(self):
        clone = _roundtrip(
            CircuitOpenError("open", shard=1, consecutive_failures=5)
        )
        assert clone.shard == 1
        assert clone.consecutive_failures == 5

    def test_injected_fault_fields(self):
        clone = _roundtrip(
            InjectedFault("bang", site="shard.execute", kind="error", call_index=4)
        )
        assert clone.site == "shard.execute"
        assert clone.kind == "error"
        assert clone.call_index == 4

    def test_partial_result_fields(self):
        partial = QueryResult(value=41.0, stats=ScanStats())
        error = PartialResultError(
            "2 shards failed",
            partial_results=[partial],
            failed_shards=[1],
            skipped_shards=[2],
            failure_reasons={1: "InjectedFault('bang')", 2: "CircuitOpenError('open')"},
        )
        clone = _roundtrip(error)
        assert clone.failed_shards == [1]
        assert clone.skipped_shards == [2]
        assert clone.failure_reasons == {
            1: "InjectedFault('bang')",
            2: "CircuitOpenError('open')",
        }
        assert len(clone.partial_results) == 1
        assert clone.partial_results[0].value == 41.0


class _ExplodingBackend:
    """A serving backend whose run_batch always raises a structured error."""

    def __init__(self, error):
        self.error = error

    def run_batch(self, queries):
        raise self.error


class TestFutureBoundary:
    def test_partial_result_error_crosses_the_frontend_boundary(self):
        """Structured fields survive dispatcher-thread → client-thread delivery."""
        partial = QueryResult(value=7.0, stats=ScanStats())
        error = PartialResultError(
            "partial",
            partial_results=[partial],
            failed_shards=[0, 3],
            skipped_shards=[1],
            failure_reasons={0: "InjectedFault('x')"},
        )
        frontend = ServingFrontend(
            _ExplodingBackend(error),
            ServingConfig(max_delay_seconds=0.001, cache_entries=0),
        )
        try:
            with pytest.raises(PartialResultError) as excinfo:
                frontend.query(Query.from_ranges({"x": (0, 10)}), timeout=5.0)
        finally:
            frontend.close()
        caught = excinfo.value
        assert caught.failed_shards == [0, 3]
        assert caught.skipped_shards == [1]
        assert caught.failure_reasons == {0: "InjectedFault('x')"}
        assert caught.partial_results[0].value == 7.0
