"""Tests for table and index snapshots (§8 extension, repro.storage.persistence)."""

import json

import numpy as np
import pytest

from repro.baselines import KdTreeIndex
from repro.common.errors import IndexBuildError, SchemaError
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.storage.persistence import (
    load_index,
    load_table,
    save_index,
    save_table,
    snapshot_info,
)
from repro.storage.table import Table


def mixed_table(num_rows: int = 1_000, seed: int = 3) -> Table:
    """A table exercising all three column encodings (int, float, string)."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        "mixed",
        {
            "quantity": rng.integers(0, 100, num_rows).tolist(),
            "price": np.round(rng.uniform(1, 500, num_rows), 2).tolist(),
            "mode": [["air", "rail", "ship", "truck"][i] for i in rng.integers(0, 4, num_rows)],
        },
    )


class TestTableRoundTrip:
    def test_values_and_name_survive(self, tmp_path):
        table = mixed_table()
        save_table(table, tmp_path)
        loaded = load_table(tmp_path)
        assert loaded.name == table.name
        assert loaded.num_rows == table.num_rows
        for name in table.column_names:
            assert np.array_equal(loaded.values(name), table.values(name))

    def test_encodings_survive(self, tmp_path):
        table = mixed_table()
        save_table(table, tmp_path)
        loaded = load_table(tmp_path)
        assert loaded.column("mode").to_user(0) == table.column("mode").to_user(0)
        assert loaded.column("price").to_storage(12.34) == table.column("price").to_storage(12.34)
        assert loaded.column("quantity").dictionary is None
        assert loaded.column("quantity").scaler is None

    def test_physical_row_order_survives(self, tmp_path):
        table = mixed_table()
        permutation = np.random.default_rng(9).permutation(table.num_rows)
        table.reorder(permutation)
        save_table(table, tmp_path)
        loaded = load_table(tmp_path)
        assert np.array_equal(loaded.values("quantity"), table.values("quantity"))

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            load_table(tmp_path)

    def test_version_mismatch_rejected(self, tmp_path):
        table = mixed_table(num_rows=10)
        save_table(table, tmp_path)
        manifest_path = tmp_path / "table.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaError):
            load_table(tmp_path)

    def test_save_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "snapshot"
        save_table(mixed_table(num_rows=10), target)
        assert (target / "table.json").exists()
        assert (target / "columns.npz").exists()


class TestIndexRoundTrip:
    def queries(self, table: Table) -> list[Query]:
        bounds = table.bounds("quantity")
        return [
            Query.from_ranges({"quantity": (bounds[0], (bounds[0] + bounds[1]) // 2)}),
            Query.from_user_values(table, {"price": (10.0, 200.0)}),
            Query.from_user_values(table, {"mode": ("air", "air")}),
        ]

    def test_kdtree_round_trip(self, tmp_path):
        table = mixed_table()
        index = KdTreeIndex(page_size=128).build(table, None)
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert isinstance(loaded, KdTreeIndex)
        for query in self.queries(loaded.table):
            expected, _ = execute_full_scan(loaded.table, query)
            assert loaded.execute(query).value == expected

    def test_tsunami_round_trip(self, tmp_path, fresh_table, fresh_workload):
        index = TsunamiIndex(TsunamiConfig(optimizer_iterations=1)).build(
            fresh_table, fresh_workload
        )
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert isinstance(loaded, TsunamiIndex)
        assert loaded.index_size_bytes() == index.index_size_bytes()
        for query in list(fresh_workload)[:15]:
            expected, _ = execute_full_scan(loaded.table, query)
            assert loaded.execute(query).value == expected

    def test_original_index_still_usable_after_save(self, tmp_path, fresh_table, fresh_workload):
        index = TsunamiIndex(TsunamiConfig(optimizer_iterations=1)).build(
            fresh_table, fresh_workload
        )
        save_index(index, tmp_path)
        query = list(fresh_workload)[0]
        expected, _ = execute_full_scan(index.table, query)
        assert index.execute(query).value == expected

    def test_unbuilt_index_rejected(self, tmp_path):
        with pytest.raises(IndexBuildError):
            save_index(KdTreeIndex(), tmp_path)

    def test_missing_snapshot_rejected(self, tmp_path):
        with pytest.raises(IndexBuildError):
            load_index(tmp_path)


class TestSnapshotInfo:
    def test_table_only_snapshot(self, tmp_path):
        save_table(mixed_table(num_rows=20), tmp_path)
        info = snapshot_info(tmp_path)
        assert info["table"]["num_rows"] == 20
        assert "index" not in info

    def test_full_snapshot(self, tmp_path):
        table = mixed_table(num_rows=200)
        index = KdTreeIndex(page_size=64).build(table, None)
        save_index(index, tmp_path)
        info = snapshot_info(tmp_path)
        assert info["index"]["index_name"] == "kd-tree"
        assert info["index"]["num_rows"] == 200
        assert info["table"]["name"] == "mixed"

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            snapshot_info(tmp_path)
