"""Tests for table and index snapshots (§8 extension, repro.storage.persistence)."""

import json
from functools import partial

import numpy as np
import pytest

from repro.baselines import KdTreeIndex
from repro.common.errors import IndexBuildError, SchemaError
from repro.core.delta import DeltaBufferedIndex
from repro.core.sharding import ShardedIndex
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.persistence import (
    load_index,
    load_table,
    save_index,
    save_table,
    snapshot_info,
)
from repro.storage.table import Table


def mixed_table(num_rows: int = 1_000, seed: int = 3) -> Table:
    """A table exercising all three column encodings (int, float, string)."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        "mixed",
        {
            "quantity": rng.integers(0, 100, num_rows).tolist(),
            "price": np.round(rng.uniform(1, 500, num_rows), 2).tolist(),
            "mode": [["air", "rail", "ship", "truck"][i] for i in rng.integers(0, 4, num_rows)],
        },
    )


class TestTableRoundTrip:
    def test_values_and_name_survive(self, tmp_path):
        table = mixed_table()
        save_table(table, tmp_path)
        loaded = load_table(tmp_path)
        assert loaded.name == table.name
        assert loaded.num_rows == table.num_rows
        for name in table.column_names:
            assert np.array_equal(loaded.values(name), table.values(name))

    def test_encodings_survive(self, tmp_path):
        table = mixed_table()
        save_table(table, tmp_path)
        loaded = load_table(tmp_path)
        assert loaded.column("mode").to_user(0) == table.column("mode").to_user(0)
        assert loaded.column("price").to_storage(12.34) == table.column("price").to_storage(12.34)
        assert loaded.column("quantity").dictionary is None
        assert loaded.column("quantity").scaler is None

    def test_physical_row_order_survives(self, tmp_path):
        table = mixed_table()
        permutation = np.random.default_rng(9).permutation(table.num_rows)
        table.reorder(permutation)
        save_table(table, tmp_path)
        loaded = load_table(tmp_path)
        assert np.array_equal(loaded.values("quantity"), table.values("quantity"))

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            load_table(tmp_path)

    def test_version_mismatch_rejected(self, tmp_path):
        table = mixed_table(num_rows=10)
        save_table(table, tmp_path)
        manifest_path = tmp_path / "table.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaError):
            load_table(tmp_path)

    def test_save_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "snapshot"
        table = mixed_table(num_rows=10)
        save_table(table, target)
        assert (target / "table.json").exists()
        # v2 layout: one raw (mmap-shareable) .npy file per column.
        npy_files = sorted((target / "columns").glob("*.npy"))
        assert len(npy_files) == len(table.column_names)


class TestIndexRoundTrip:
    def queries(self, table: Table) -> list[Query]:
        bounds = table.bounds("quantity")
        return [
            Query.from_ranges({"quantity": (bounds[0], (bounds[0] + bounds[1]) // 2)}),
            Query.from_user_values(table, {"price": (10.0, 200.0)}),
            Query.from_user_values(table, {"mode": ("air", "air")}),
        ]

    def test_kdtree_round_trip(self, tmp_path):
        table = mixed_table()
        index = KdTreeIndex(page_size=128).build(table, None)
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert isinstance(loaded, KdTreeIndex)
        for query in self.queries(loaded.table):
            expected, _ = execute_full_scan(loaded.table, query)
            assert loaded.execute(query).value == expected

    def test_tsunami_round_trip(self, tmp_path, fresh_table, fresh_workload):
        index = TsunamiIndex(TsunamiConfig(optimizer_iterations=1)).build(
            fresh_table, fresh_workload
        )
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert isinstance(loaded, TsunamiIndex)
        assert loaded.index_size_bytes() == index.index_size_bytes()
        for query in list(fresh_workload)[:15]:
            expected, _ = execute_full_scan(loaded.table, query)
            assert loaded.execute(query).value == expected

    def test_original_index_still_usable_after_save(self, tmp_path, fresh_table, fresh_workload):
        index = TsunamiIndex(TsunamiConfig(optimizer_iterations=1)).build(
            fresh_table, fresh_workload
        )
        save_index(index, tmp_path)
        query = list(fresh_workload)[0]
        expected, _ = execute_full_scan(index.table, query)
        assert index.execute(query).value == expected

    def test_unbuilt_index_rejected(self, tmp_path):
        with pytest.raises(IndexBuildError):
            save_index(KdTreeIndex(), tmp_path)

    def test_missing_snapshot_rejected(self, tmp_path):
        with pytest.raises(IndexBuildError):
            load_index(tmp_path)

    def test_unsupported_object_raises_typed_error(self, tmp_path):
        # The historical failure mode was an AttributeError on `_table`
        # mid-write; anything outside the snapshot contract must fail with
        # the typed error before touching the disk.
        class NotAnIndex:
            is_built = True

        with pytest.raises(IndexBuildError, match="does not support snapshotting"):
            save_index(NotAnIndex(), tmp_path)
        assert list(tmp_path.iterdir()) == []


class TestDeltaRoundTrip:
    """`save_index` on a DeltaBufferedIndex used to crash with AttributeError
    ('_table'), silently losing pending inserts; these tests pin the fix."""

    def build_delta(self, merge_threshold: int = 1_000_000) -> DeltaBufferedIndex:
        table = mixed_table()
        index = DeltaBufferedIndex(
            partial(KdTreeIndex, page_size=128), merge_threshold=merge_threshold
        )
        return index.build(table, None)

    def pending_rows(self, count: int, seed: int = 5) -> list[dict]:
        rng = np.random.default_rng(seed)
        return [
            {
                "quantity": int(rng.integers(0, 100)),
                "price": round(float(rng.uniform(1, 500)), 2),
                "mode": ["air", "rail", "ship", "truck"][int(rng.integers(0, 4))],
            }
            for _ in range(count)
        ]

    def queries(self) -> list[Query]:
        return [
            Query.from_ranges({"quantity": (0, 50)}),
            Query.from_ranges({"quantity": (0, 99)}, aggregate="sum", aggregate_column="quantity"),
            Query.from_ranges({"quantity": (10, 40)}, aggregate="avg", aggregate_column="quantity"),
            Query.from_ranges({"quantity": (90, 99)}, aggregate="min", aggregate_column="quantity"),
        ]

    def test_round_trip_with_pending_inserts(self, tmp_path):
        index = self.build_delta()
        index.insert_many(self.pending_rows(64))
        assert index.num_pending == 64
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert isinstance(loaded, DeltaBufferedIndex)
        assert loaded.num_pending == 64
        assert loaded.num_rows == index.num_rows
        for name in index.buffer.column_names:
            assert np.array_equal(loaded.buffer.column(name), index.buffer.column(name))
        for query in self.queries():
            assert loaded.execute(query).value == index.execute(query).value

    def test_round_trip_with_empty_buffer(self, tmp_path):
        index = self.build_delta()
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert loaded.num_pending == 0
        for query in self.queries():
            assert loaded.execute(query).value == index.execute(query).value

    def test_original_index_still_usable_after_save(self, tmp_path):
        index = self.build_delta()
        index.insert_many(self.pending_rows(16))
        save_index(index, tmp_path)
        assert index.num_pending == 16
        query = self.queries()[0]
        expected, _ = execute_full_scan(index.table, query)
        assert index.execute(query).value >= expected  # buffer rows still counted

    def test_loaded_index_can_keep_inserting_and_merge(self, tmp_path):
        index = self.build_delta()
        index.insert_many(self.pending_rows(8))
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        loaded.insert_many(self.pending_rows(8, seed=6))
        assert loaded.num_pending == 16
        report = loaded.merge()
        assert report is not None and report.rows_merged == 16
        assert loaded.num_pending == 0

    def test_lambda_factory_falls_back_to_wrapped_class(self, tmp_path):
        table = mixed_table()
        index = DeltaBufferedIndex(
            lambda: KdTreeIndex(page_size=128), merge_threshold=1_000_000
        )
        index.build(table, None)
        index.insert_many(self.pending_rows(4))
        save_index(index, tmp_path)
        assert not (tmp_path / "factory.pkl").exists()
        loaded = load_index(tmp_path)
        assert loaded.num_pending == 4
        # The fallback factory rebuilds the wrapped class, so merges work.
        assert loaded.merge().rows_merged == 4

    def test_rebuild_workload_survives_the_snapshot(self, tmp_path):
        table = mixed_table()
        workload = Workload(
            [Query.from_ranges({"quantity": (0, 50)}) for _ in range(3)],
            name="rebuilds",
        )
        index = DeltaBufferedIndex(
            partial(KdTreeIndex, page_size=128), merge_threshold=1_000_000
        )
        index.build(table, workload)
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert loaded.workload is not None
        assert list(loaded.workload) == list(workload)

    def test_snapshot_info_reports_delta_kind(self, tmp_path):
        index = self.build_delta()
        index.insert_many(self.pending_rows(10))
        save_index(index, tmp_path)
        info = snapshot_info(tmp_path)
        assert info["index"]["kind"] == "delta"
        assert info["index"]["index_name"] == "delta-buffered"


class TestShardedRoundTrip:
    def build_sharded(self, factory=None) -> ShardedIndex:
        table = mixed_table()
        index = ShardedIndex(
            factory or partial(KdTreeIndex, page_size=128),
            num_shards=3,
            shard_dimension="quantity",
        )
        return index.build(table, None)

    def queries(self) -> list[Query]:
        return [
            Query.from_ranges({"quantity": (0, 30)}),
            Query.from_ranges({"quantity": (0, 99)}, aggregate="sum", aggregate_column="quantity"),
            Query.from_ranges({"quantity": (40, 70)}, aggregate="avg", aggregate_column="quantity"),
        ]

    def test_round_trip_per_shard_subdirectories(self, tmp_path):
        index = self.build_sharded()
        save_index(index, tmp_path)
        assert (tmp_path / "sharded.json").exists()
        for position in range(len(index.shards)):
            assert (tmp_path / f"shard_{position:02d}" / "index.json").exists()
        loaded = load_index(tmp_path)
        assert isinstance(loaded, ShardedIndex)
        assert loaded.boundaries == index.boundaries
        assert loaded.dimension == index.dimension
        assert loaded.num_rows == index.num_rows
        for query in self.queries():
            assert loaded.execute(query).value == index.execute(query).value

    def test_round_trip_with_updatable_shards_and_pending(self, tmp_path):
        factory = partial(
            DeltaBufferedIndex, partial(KdTreeIndex, page_size=128),
            merge_threshold=1_000_000,
        )
        index = self.build_sharded(factory)
        rng = np.random.default_rng(9)
        index.insert_many(
            [
                {
                    "quantity": int(rng.integers(0, 100)),
                    "price": round(float(rng.uniform(1, 500)), 2),
                    "mode": "air",
                }
                for _ in range(40)
            ]
        )
        assert index.num_pending == 40
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        assert loaded.num_pending == 40
        for query in self.queries():
            assert loaded.execute(query).value == index.execute(query).value

    def test_snapshot_info_reports_sharded_kind(self, tmp_path):
        save_index(self.build_sharded(), tmp_path)
        info = snapshot_info(tmp_path)
        assert info["index"]["kind"] == "sharded"
        assert info["index"]["index_name"] == "sharded"

    def test_loaded_shards_serve_off_memory_mapped_columns(self, tmp_path):
        """Shard workers loading one snapshot must share pages, not copies:
        every shard column is ``np.memmap``-backed after a default load, and
        pending delta inserts still round-trip exactly alongside them."""
        factory = partial(
            DeltaBufferedIndex, partial(KdTreeIndex, page_size=128),
            merge_threshold=1_000_000,
        )
        index = self.build_sharded(factory)
        rng = np.random.default_rng(21)
        pending = [
            {
                "quantity": int(rng.integers(0, 100)),
                "price": round(float(rng.uniform(1, 500)), 2),
                "mode": "rail",
            }
            for _ in range(24)
        ]
        index.insert_many(pending)
        save_index(index, tmp_path)

        loaded = load_index(tmp_path)  # mmap_mode="r" is the default
        for shard in loaded.shards:
            shard_table = shard.base_index.table
            for name in shard_table.column_names:
                column = shard_table.column(name)
                assert column.is_memory_mapped
                array = column.values
                while array is not None and not isinstance(array, np.memmap):
                    array = array.base
                assert isinstance(array, np.memmap)
        assert loaded.num_pending == 24
        for original_shard, loaded_shard in zip(index.shards, loaded.shards):
            for name in original_shard.buffer.column_names:
                assert np.array_equal(
                    loaded_shard.buffer.column(name),
                    original_shard.buffer.column(name),
                )
        for query in self.queries():
            assert loaded.execute(query).value == index.execute(query).value

        eager = load_index(tmp_path, mmap_mode=None)
        first_table = eager.shards[0].base_index.table
        assert not any(
            first_table.column(name).is_memory_mapped
            for name in first_table.column_names
        )

    def test_narrow_dtypes_survive_sharded_round_trip(self, tmp_path):
        index = self.build_sharded()
        save_index(index, tmp_path)
        loaded = load_index(tmp_path)
        for original_shard, loaded_shard in zip(index.shards, loaded.shards):
            for name in original_shard.table.column_names:
                original = original_shard.table.column(name)
                restored = loaded_shard.table.column(name)
                assert restored.dtype == original.dtype
                assert restored.size_bytes() == original.size_bytes()
                assert np.array_equal(restored.values, original.values)


class TestSnapshotInfo:
    def test_table_only_snapshot(self, tmp_path):
        save_table(mixed_table(num_rows=20), tmp_path)
        info = snapshot_info(tmp_path)
        assert info["table"]["num_rows"] == 20
        assert "index" not in info

    def test_full_snapshot(self, tmp_path):
        table = mixed_table(num_rows=200)
        index = KdTreeIndex(page_size=64).build(table, None)
        save_index(index, tmp_path)
        info = snapshot_info(tmp_path)
        assert info["index"]["index_name"] == "kd-tree"
        assert info["index"]["num_rows"] == 200
        assert info["table"]["name"] == "mixed"

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            snapshot_info(tmp_path)


class TestCrashSafety:
    """save_index stages into a temp sibling and swaps atomically, so a crash
    mid-write (injected at the ``persistence.save`` site) never corrupts or
    removes an existing snapshot."""

    def build_index(self, seed: int = 3) -> KdTreeIndex:
        return KdTreeIndex(page_size=128).build(mixed_table(seed=seed), None)

    def test_failed_save_preserves_previous_snapshot(self, tmp_path):
        from repro.common import faults
        from repro.common.errors import InjectedFault
        from repro.common.faults import FaultPlan, FaultSpec

        target = tmp_path / "snap"
        first = self.build_index(seed=3)
        save_index(first, target)
        second = self.build_index(seed=4)
        plan = FaultPlan([FaultSpec(site="persistence.save")])
        with faults.active(plan):
            with pytest.raises(InjectedFault):
                save_index(second, target)
        assert plan.injected("persistence.save") == 1
        # The old snapshot is intact and still loads the *first* index.
        loaded = load_index(target)
        assert loaded.table.num_rows == first.table.num_rows
        query = Query.from_ranges({"quantity": (0, 50)})
        assert loaded.execute(query).value == first.execute(query).value
        # The failed staging directory was cleaned up.
        assert not (tmp_path / "snap.saving").exists()

    def test_failed_first_save_leaves_nothing_behind(self, tmp_path):
        from repro.common import faults
        from repro.common.errors import InjectedFault
        from repro.common.faults import FaultPlan, FaultSpec

        target = tmp_path / "snap"
        plan = FaultPlan([FaultSpec(site="persistence.save")])
        with faults.active(plan):
            with pytest.raises(InjectedFault):
                save_index(self.build_index(), target)
        assert not target.exists()
        assert not (tmp_path / "snap.saving").exists()
        with pytest.raises(IndexBuildError):
            load_index(target)

    def test_fault_inside_nested_shard_write_preserves_previous(self, tmp_path):
        from repro.common import faults
        from repro.common.faults import FaultPlan, FaultSpec

        target = tmp_path / "snap"
        table = mixed_table()
        sharded = ShardedIndex(
            partial(KdTreeIndex, page_size=128),
            num_shards=3,
            shard_dimension="quantity",
        ).build(table, None)
        save_index(sharded, target)
        # Crash while writing the second shard of the *replacement* snapshot.
        plan = FaultPlan([FaultSpec(site="persistence.save", key="shard_01")])
        with faults.active(plan):
            with pytest.raises(Exception):
                save_index(sharded, target)
        loaded = load_index(target)
        assert len(loaded.shards) == 3
        query = Query.from_ranges({"quantity": (0, 99)})
        expected, _ = execute_full_scan(table, query)
        assert loaded.execute(query).value == expected

    def test_successful_overwrite_leaves_no_residue(self, tmp_path):
        target = tmp_path / "snap"
        save_index(self.build_index(seed=3), target)
        replacement = self.build_index(seed=5)
        save_index(replacement, target)
        assert not (tmp_path / "snap.saving").exists()
        assert not (tmp_path / "snap.old").exists()
        loaded = load_index(target)
        query = Query.from_ranges({"quantity": (0, 50)})
        assert loaded.execute(query).value == replacement.execute(query).value
