"""Tests for the EXPLAIN-style plan reporting on the clustered-index contract."""

import pytest

from repro.baselines import FullScanIndex, KdTreeIndex, ZOrderIndex
from repro.common.errors import IndexBuildError
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.query import Query


INDEXES = {
    "full-scan": FullScanIndex,
    "kd-tree": lambda: KdTreeIndex(page_size=256),
    "z-order": lambda: ZOrderIndex(page_size=256),
    "tsunami": lambda: TsunamiIndex(TsunamiConfig(optimizer_iterations=1)),
}


class TestExplain:
    @pytest.mark.parametrize("name", list(INDEXES))
    def test_plan_counters_match_execution(self, name, fresh_table, fresh_workload):
        index = INDEXES[name]()
        index.build(fresh_table, fresh_workload)
        query = list(fresh_workload)[0]
        plan = index.explain(query)
        result = index.execute(query)
        assert plan["cell_ranges"] == result.stats.cell_ranges
        assert plan["rows_to_scan"] >= result.stats.points_scanned
        assert 0.0 <= plan["table_fraction_scanned"] <= 1.0
        assert plan["index"] == index.name

    def test_full_scan_plans_the_whole_table(self, fresh_table, fresh_workload):
        index = FullScanIndex().build(fresh_table, fresh_workload)
        plan = index.explain(Query.from_ranges({"x": (0, 10)}))
        assert plan["rows_to_scan"] == fresh_table.num_rows
        assert plan["table_fraction_scanned"] == pytest.approx(1.0)

    def test_selective_query_scans_a_small_fraction(self, fresh_table, fresh_workload):
        index = TsunamiIndex(TsunamiConfig(optimizer_iterations=1)).build(
            fresh_table, fresh_workload
        )
        plan = index.explain(list(fresh_workload)[0])
        assert plan["table_fraction_scanned"] < 0.5

    def test_exact_rows_never_exceed_rows_to_scan(self, fresh_table, fresh_workload):
        index = KdTreeIndex(page_size=256).build(fresh_table, fresh_workload)
        for query in list(fresh_workload)[:10]:
            plan = index.explain(query)
            assert 0 <= plan["exact_rows"] <= plan["rows_to_scan"]

    def test_explain_before_build_raises(self):
        with pytest.raises(IndexBuildError):
            KdTreeIndex().explain(Query.from_ranges({"x": (0, 1)}))

    def test_filtered_dimensions_and_aggregate_reported(self, fresh_table, fresh_workload):
        index = ZOrderIndex(page_size=256).build(fresh_table, fresh_workload)
        query = Query.from_ranges({"x": (0, 100), "z": (0, 10)}, aggregate="sum", aggregate_column="y")
        plan = index.explain(query)
        assert set(plan["filtered_dimensions"]) == {"x", "z"}
        assert plan["aggregate"] == "sum"
