"""Tests for the workload profiler (repro.query.profile)."""

import numpy as np
import pytest

from repro.query.profile import DimensionProfile, WorkloadProfile, profile_workload
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


def uniform_table(num_rows: int = 4_000, seed: int = 2) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_arrays(
        "profiled",
        {
            "time": rng.integers(0, 10_000, num_rows),
            "value": rng.integers(0, 1_000, num_rows),
            "flag": rng.integers(0, 4, num_rows),
        },
    )


def skewed_workload(seed: int = 4) -> Workload:
    """Most queries hit the top 10% of ``time``; ``value`` queries are uniform."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(60):
        low = int(rng.integers(9_000, 9_800))
        queries.append(Query.from_ranges({"time": (low, low + 100)}, query_type=0))
    for _ in range(30):
        low = int(rng.integers(0, 900))
        queries.append(Query.from_ranges({"value": (low, low + 50)}, query_type=1))
    for _ in range(10):
        queries.append(Query.from_ranges({"flag": (2, 2)}, query_type=2))
    return Workload(queries, name="skewed")


class TestProfileConstruction:
    def test_only_filtered_dimensions_are_profiled(self):
        table = uniform_table()
        profile = WorkloadProfile.build(table, skewed_workload())
        names = {p.dimension for p in profile.dimensions}
        assert names == {"time", "value", "flag"}
        assert profile.num_queries == 100
        assert profile.num_query_types == 3

    def test_filter_frequencies_sum_to_workload_shares(self):
        table = uniform_table()
        profile = WorkloadProfile.build(table, skewed_workload())
        assert profile.profile_for("time").filter_frequency == pytest.approx(0.6)
        assert profile.profile_for("value").filter_frequency == pytest.approx(0.3)
        assert profile.profile_for("flag").filter_frequency == pytest.approx(0.1)
        assert profile.profile_for("missing") is None

    def test_equality_fraction_detected(self):
        table = uniform_table()
        profile = WorkloadProfile.build(table, skewed_workload())
        assert profile.profile_for("flag").equality_fraction == pytest.approx(1.0)
        assert profile.profile_for("time").equality_fraction == pytest.approx(0.0)

    def test_selectivity_reflects_filter_width(self):
        table = uniform_table()
        profile = WorkloadProfile.build(table, skewed_workload())
        # time filters cover ~1% of the domain, flag equality covers ~25%.
        assert profile.profile_for("time").avg_selectivity < 0.05
        assert profile.profile_for("flag").avg_selectivity > 0.15

    def test_skew_identifies_the_hot_dimension(self):
        table = uniform_table()
        profile = WorkloadProfile.build(table, skewed_workload())
        assert profile.profile_for("time").skew > profile.profile_for("value").skew
        assert "time" in profile.skewed_dimensions(threshold=0.25)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile.build(uniform_table(), Workload([]))

    def test_unfiltered_workload_has_no_dimension_rows(self):
        table = uniform_table()
        profile = WorkloadProfile.build(table, Workload([Query(predicates=())]))
        assert profile.dimensions == ()
        assert "(no dimension is filtered)" in profile.describe()


class TestRankingAndReporting:
    def test_ranked_dimensions_prefers_frequent_selective_filters(self):
        table = uniform_table()
        profile = WorkloadProfile.build(table, skewed_workload())
        ranking = profile.ranked_dimensions()
        assert ranking[0] == "time"
        assert set(ranking) == {"time", "value", "flag"}

    def test_describe_contains_every_dimension_row(self):
        table = uniform_table()
        profile = profile_workload(table, skewed_workload())
        text = profile.describe()
        for name in ("time", "value", "flag"):
            assert name in text
        assert "100 queries" in text

    def test_dimension_profile_row_shape(self):
        row = DimensionProfile(
            dimension="time",
            filter_frequency=0.5,
            equality_fraction=0.0,
            avg_selectivity=0.01,
            skew=1.2,
        ).as_row()
        assert row["dimension"] == "time"
        assert row["skew"] == 1.2
