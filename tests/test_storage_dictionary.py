"""Tests for repro.storage.dictionary."""

import pytest

from repro.common.errors import SchemaError
from repro.storage.dictionary import DictionaryEncoder


class TestDictionaryEncoder:
    def test_codes_follow_sort_order(self):
        encoder = DictionaryEncoder(["banana", "apple", "cherry"])
        assert encoder.encode(["apple", "banana", "cherry"]).tolist() == [0, 1, 2]

    def test_order_preserving(self):
        encoder = DictionaryEncoder(["x", "m", "a", "z"])
        values = sorted(encoder.values)
        codes = [encoder.encode_one(v) for v in values]
        assert codes == sorted(codes)

    def test_roundtrip(self):
        encoder = DictionaryEncoder(["red", "green", "blue"])
        codes = encoder.encode(["green", "blue", "red", "green"])
        assert encoder.decode(codes) == ["green", "blue", "red", "green"]

    def test_duplicates_collapse(self):
        encoder = DictionaryEncoder(["a", "a", "b", "b", "b"])
        assert len(encoder) == 2

    def test_unknown_value_raises(self):
        encoder = DictionaryEncoder(["a"])
        with pytest.raises(SchemaError):
            encoder.encode_one("missing")

    def test_unknown_code_raises(self):
        encoder = DictionaryEncoder(["a"])
        with pytest.raises(SchemaError):
            encoder.decode_one(5)

    def test_contains(self):
        encoder = DictionaryEncoder(["a", "b"])
        assert "a" in encoder
        assert "z" not in encoder

    def test_refit_extends(self):
        encoder = DictionaryEncoder(["b"])
        encoder.fit(["a", "c"])
        assert encoder.values == ["a", "b", "c"]

    def test_size_bytes_positive(self):
        encoder = DictionaryEncoder(["alpha", "beta"])
        assert encoder.size_bytes() > 0

    def test_empty_encoder(self):
        encoder = DictionaryEncoder()
        assert len(encoder) == 0
        assert encoder.values == []
