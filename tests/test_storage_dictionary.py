"""Tests for repro.storage.dictionary."""

import pytest

from repro.common.errors import SchemaError
from repro.storage.dictionary import DictionaryEncoder


class TestDictionaryEncoder:
    def test_codes_follow_sort_order(self):
        encoder = DictionaryEncoder(["banana", "apple", "cherry"])
        assert encoder.encode(["apple", "banana", "cherry"]).tolist() == [0, 1, 2]

    def test_order_preserving(self):
        encoder = DictionaryEncoder(["x", "m", "a", "z"])
        values = sorted(encoder.values)
        codes = [encoder.encode_one(v) for v in values]
        assert codes == sorted(codes)

    def test_roundtrip(self):
        encoder = DictionaryEncoder(["red", "green", "blue"])
        codes = encoder.encode(["green", "blue", "red", "green"])
        assert encoder.decode(codes) == ["green", "blue", "red", "green"]

    def test_duplicates_collapse(self):
        encoder = DictionaryEncoder(["a", "a", "b", "b", "b"])
        assert len(encoder) == 2

    def test_unknown_value_raises(self):
        encoder = DictionaryEncoder(["a"])
        with pytest.raises(SchemaError):
            encoder.encode_one("missing")

    def test_unknown_code_raises(self):
        encoder = DictionaryEncoder(["a"])
        with pytest.raises(SchemaError):
            encoder.decode_one(5)

    def test_contains(self):
        encoder = DictionaryEncoder(["a", "b"])
        assert "a" in encoder
        assert "z" not in encoder

    def test_refit_extends(self):
        encoder = DictionaryEncoder(["b"])
        encoder.fit(["a", "c"])
        assert encoder.values == ["a", "b", "c"]

    def test_size_bytes_positive(self):
        encoder = DictionaryEncoder(["alpha", "beta"])
        assert encoder.size_bytes() > 0

    def test_empty_encoder(self):
        encoder = DictionaryEncoder()
        assert len(encoder) == 0
        assert encoder.values == []


class TestVectorizedBatchPaths:
    """The batch ``encode``/``decode`` are vectorized (searchsorted + one
    fancy-index); they must stay element-wise identical to the scalar paths,
    including on dictionaries whose code order is not sorted value order."""

    def test_encode_matches_encode_one(self):
        encoder = DictionaryEncoder(["pear", "apple", "quince", "fig"])
        batch = ["fig", "apple", "fig", "quince", "pear"]
        assert encoder.encode(batch).tolist() == [encoder.encode_one(v) for v in batch]

    def test_unsorted_code_order_round_trips(self):
        # from_ordered_values assigns codes in *given* order, so the sorted
        # value order disagrees with code order — the searchsorted path must
        # still map through the permutation correctly.
        encoder = DictionaryEncoder.from_ordered_values(["zebra", "ant", "mole"])
        assert encoder.encode_one("zebra") == 0
        batch = ["mole", "zebra", "ant", "mole"]
        codes = encoder.encode(batch)
        assert codes.tolist() == [encoder.encode_one(v) for v in batch]
        assert encoder.decode(codes) == batch

    def test_encode_empty_batch(self):
        encoder = DictionaryEncoder(["a"])
        codes = encoder.encode([])
        assert codes.tolist() == []
        assert codes.dtype.kind == "i"

    def test_decode_matches_decode_one(self):
        encoder = DictionaryEncoder(["c", "a", "b"])
        codes = [2, 0, 1, 1]
        assert encoder.decode(codes) == [encoder.decode_one(c) for c in codes]

    def test_encode_error_message_matches_scalar_path(self):
        encoder = DictionaryEncoder(["a", "b"])
        with pytest.raises(SchemaError) as batch_error:
            encoder.encode(["a", "zzz", "b"])
        with pytest.raises(SchemaError) as scalar_error:
            encoder.encode_one("zzz")
        assert str(batch_error.value) == str(scalar_error.value)

    def test_encode_unknown_value_on_empty_dictionary(self):
        encoder = DictionaryEncoder()
        with pytest.raises(SchemaError):
            encoder.encode(["anything"])

    def test_decode_out_of_range_code_raises(self):
        encoder = DictionaryEncoder(["a", "b"])
        with pytest.raises(SchemaError):
            encoder.decode([0, 5])
        with pytest.raises(SchemaError):
            encoder.decode([-1])

    def test_decode_non_integer_codes_fall_back(self):
        encoder = DictionaryEncoder(["a", "b"])
        assert encoder.decode(["1", "0"]) == ["b", "a"]

    def test_large_batch_round_trip(self):
        import numpy as np

        values = [f"key_{i:04d}" for i in range(500)]
        encoder = DictionaryEncoder(values)
        rng = np.random.default_rng(8)
        batch = [values[i] for i in rng.integers(0, 500, 5_000)]
        assert encoder.decode(encoder.encode(batch)) == batch
