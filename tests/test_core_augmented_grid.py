"""Tests for repro.core.augmented_grid."""

import numpy as np
import pytest

from repro.common.errors import IndexBuildError, OptimizationError
from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
from repro.core.skeleton import (
    ConditionalCDFStrategy,
    FunctionalMappingStrategy,
    IndependentCDFStrategy,
    Skeleton,
)
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.storage.scan import ScanExecutor
from repro.storage.table import Table


def correlated_table(num_rows: int = 8000, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 10_000, num_rows)
    y = x * 2 + rng.integers(-40, 41, num_rows)  # tight monotonic correlation
    z = rng.integers(0, 500, num_rows)  # independent
    return Table.from_arrays("corr", {"x": x, "y": y, "z": z})


def build_grid(table: Table, skeleton: Skeleton, partitions: dict[str, int]) -> AugmentedGrid:
    grid = AugmentedGrid(AugmentedGridConfig(skeleton=skeleton, partitions=partitions))
    permutation = grid.fit(table)
    table.reorder(permutation)
    return grid


def run_query(table: Table, grid: AugmentedGrid, query: Query) -> float:
    executor = ScanExecutor(table)
    value, _ = executor.execute(
        grid.ranges_for_query(query), query.filters(), query.aggregate, query.aggregate_column
    )
    return value


QUERIES = [
    Query.from_ranges({"x": (1000, 2000)}),
    Query.from_ranges({"y": (4000, 6000)}),
    Query.from_ranges({"x": (0, 9999), "z": (0, 50)}),
    Query.from_ranges({"x": (5000, 5200), "y": (9500, 11000), "z": (100, 400)}),
    Query.from_ranges({"z": (499, 499)}),
    Query.from_ranges({"x": (20000, 30000)}),  # empty result
]


class TestConfigValidation:
    def test_missing_partition_counts_rejected(self):
        config = AugmentedGridConfig(skeleton=Skeleton.all_independent(["x", "y"]), partitions={"x": 4})
        with pytest.raises(OptimizationError):
            config.validated()

    def test_cell_budget_enforced(self):
        config = AugmentedGridConfig(
            skeleton=Skeleton.all_independent(["x", "y"]),
            partitions={"x": 4096, "y": 4096},
            max_cells=1000,
        )
        with pytest.raises(OptimizationError):
            config.validated()

    def test_invalid_partition_count_rejected(self):
        config = AugmentedGridConfig(
            skeleton=Skeleton.all_independent(["x"]), partitions={"x": 0}
        )
        with pytest.raises(OptimizationError):
            config.validated()

    def test_total_cells(self):
        config = AugmentedGridConfig(
            skeleton=Skeleton.all_independent(["x", "y"]), partitions={"x": 4, "y": 3}
        )
        assert config.total_cells == 12


class TestIndependentGrid:
    """The all-independent skeleton is exactly Flood's grid (§2.2)."""

    @pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
    def test_correctness(self, query):
        table = correlated_table()
        expected, _ = execute_full_scan(table, query)
        grid = build_grid(table, Skeleton.all_independent(["x", "y", "z"]), {"x": 8, "y": 8, "z": 4})
        assert run_query(table, grid, query) == expected

    def test_cells_roughly_equal_depth_on_uncorrelated_dims(self):
        rng = np.random.default_rng(1)
        table = Table.from_arrays(
            "u", {"a": rng.integers(0, 10_000, 20_000), "b": rng.integers(0, 10_000, 20_000)}
        )
        grid = build_grid(table, Skeleton.all_independent(["a", "b"]), {"a": 8, "b": 8})
        sizes = grid.cell_sizes()
        assert sizes.sum() == 20_000
        assert sizes.max() < 4 * sizes.mean()

    def test_unequal_cells_on_correlated_dims(self):
        # §5.1: independent partitioning of correlated dims clusters points
        # into few cells, leaving many cells empty.
        table = correlated_table()
        grid = build_grid(table, Skeleton.all_independent(["x", "y", "z"]), {"x": 8, "y": 8, "z": 1})
        assert grid.num_nonempty_cells < 0.5 * grid.num_cells

    def test_fewer_points_scanned_than_full_scan(self):
        table = correlated_table()
        grid = build_grid(table, Skeleton.all_independent(["x", "y", "z"]), {"x": 16, "y": 1, "z": 1})
        query = Query.from_ranges({"x": (1000, 1500)})
        _, features = grid.plan(query)
        assert features.points_scanned < table.num_rows / 4

    def test_single_partition_dimension_needs_no_model(self):
        table = correlated_table()
        grid = build_grid(table, Skeleton.all_independent(["x", "y", "z"]), {"x": 4, "y": 1, "z": 1})
        assert set(grid._cdf_models) == {"x"}


class TestConditionalGrid:
    def _skeleton(self) -> Skeleton:
        return Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": ConditionalCDFStrategy(base="x"),
                "z": IndependentCDFStrategy(),
            }
        )

    @pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
    def test_correctness(self, query):
        table = correlated_table(seed=2)
        expected, _ = execute_full_scan(table, query)
        grid = build_grid(table, self._skeleton(), {"x": 8, "y": 4, "z": 2})
        assert run_query(table, grid, query) == expected

    def test_equalizes_cells_under_correlation(self):
        table_a = correlated_table(seed=3)
        independent = build_grid(
            table_a, Skeleton.all_independent(["x", "y", "z"]), {"x": 8, "y": 8, "z": 1}
        )
        table_b = correlated_table(seed=3)
        conditional = build_grid(table_b, self._skeleton(), {"x": 8, "y": 8, "z": 1})
        # Conditional-CDF partitioning staggers boundaries, so far fewer cells
        # are empty and the occupied cells are more uniform (Fig. 6).
        assert conditional.num_nonempty_cells > independent.num_nonempty_cells
        occupied_independent = independent.cell_sizes()[independent.cell_sizes() > 0]
        occupied_conditional = conditional.cell_sizes()[conditional.cell_sizes() > 0]
        assert occupied_conditional.max() < occupied_independent.max()


class TestFunctionalMappingGrid:
    def _skeleton(self) -> Skeleton:
        return Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": FunctionalMappingStrategy(target="x"),
                "z": IndependentCDFStrategy(),
            }
        )

    @pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
    def test_correctness(self, query):
        table = correlated_table(seed=4)
        expected, _ = execute_full_scan(table, query)
        grid = build_grid(table, self._skeleton(), {"x": 12, "z": 3})
        assert run_query(table, grid, query) == expected

    def test_mapped_dimension_not_in_grid(self):
        table = correlated_table(seed=5)
        grid = build_grid(table, self._skeleton(), {"x": 8, "z": 2})
        assert "y" not in grid.grid_dimensions
        assert grid.num_cells == 16

    def test_mapping_narrows_filter_onto_target(self):
        # A filter on the mapped dimension y should prune x partitions: far
        # fewer points are scanned than scanning every x partition.
        table = correlated_table(seed=6)
        grid = build_grid(table, self._skeleton(), {"x": 16, "z": 1})
        query = Query.from_ranges({"y": (4000, 4400)})
        _, features = grid.plan(query)
        assert features.points_scanned < 0.4 * table.num_rows


class TestPlanningDetails:
    def test_exact_ranges_only_for_interior_partitions(self):
        table = correlated_table(seed=7)
        grid = build_grid(table, Skeleton.all_independent(["x", "y", "z"]), {"x": 16, "y": 1, "z": 1})
        query = Query.from_ranges({"x": (100, 9900)})
        ranges = grid.ranges_for_query(query)
        assert any(r.exact for r in ranges)
        # Exactness must never produce wrong answers.
        expected, _ = execute_full_scan(table, query)
        assert run_query(table, grid, query) == expected

    def test_no_exact_ranges_when_filtering_mapped_dimension(self):
        table = correlated_table(seed=8)
        skeleton = Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": FunctionalMappingStrategy(target="x"),
                "z": IndependentCDFStrategy(),
            }
        )
        grid = build_grid(table, skeleton, {"x": 8, "z": 2})
        ranges = grid.ranges_for_query(Query.from_ranges({"y": (0, 20_000)}))
        assert all(not r.exact for r in ranges)

    def test_plan_features_match_ranges(self):
        table = correlated_table(seed=9)
        grid = build_grid(table, Skeleton.all_independent(["x", "y", "z"]), {"x": 8, "y": 4, "z": 2})
        query = Query.from_ranges({"x": (2000, 7000), "z": (0, 100)})
        spans, features = grid.plan(query)
        assert features.num_cell_ranges == len(spans)
        assert features.points_scanned == sum(stop - start for start, stop, _ in spans)
        assert features.num_filtered_dimensions == 2

    def test_offset_shifts_ranges(self):
        table = correlated_table(seed=10)
        grid = build_grid(table, Skeleton.all_independent(["x", "y", "z"]), {"x": 4, "y": 2, "z": 2})
        query = Query.from_ranges({"x": (0, 9999)})
        plain = grid.ranges_for_query(query, offset=0)
        shifted = grid.ranges_for_query(query, offset=1000)
        assert all(s.start == p.start + 1000 for p, s in zip(plain, shifted))

    def test_unfitted_grid_rejects_planning(self):
        grid = AugmentedGrid(
            AugmentedGridConfig(skeleton=Skeleton.all_independent(["x"]), partitions={"x": 2})
        )
        with pytest.raises(IndexBuildError):
            grid.plan(Query.from_ranges({"x": (0, 1)}))

    def test_empty_table_rejected(self):
        grid = AugmentedGrid(
            AugmentedGridConfig(skeleton=Skeleton.all_independent(["x"]), partitions={"x": 2})
        )
        with pytest.raises(IndexBuildError):
            grid.fit(Table.from_arrays("e", {"x": np.array([], dtype=np.int64)}))

    def test_missing_dimension_rejected(self):
        table = Table.from_arrays("t", {"a": np.arange(10)})
        grid = AugmentedGrid(
            AugmentedGridConfig(skeleton=Skeleton.all_independent(["x"]), partitions={"x": 2})
        )
        with pytest.raises(IndexBuildError):
            grid.fit(table)


class TestReporting:
    def test_describe_fields(self):
        table = correlated_table(seed=11)
        skeleton = Skeleton(
            {
                "x": IndependentCDFStrategy(),
                "y": ConditionalCDFStrategy(base="x"),
                "z": IndependentCDFStrategy(),
            }
        )
        grid = build_grid(table, skeleton, {"x": 4, "y": 4, "z": 2})
        info = grid.describe()
        assert info["num_cells"] == 32
        assert info["num_conditional_cdfs"] == 1
        assert info["num_functional_mappings"] == 0
        assert info["size_bytes"] > 0

    def test_size_grows_with_cells(self):
        table_a = correlated_table(seed=12)
        small = build_grid(table_a, Skeleton.all_independent(["x", "y", "z"]), {"x": 2, "y": 2, "z": 1})
        table_b = correlated_table(seed=12)
        large = build_grid(table_b, Skeleton.all_independent(["x", "y", "z"]), {"x": 16, "y": 16, "z": 2})
        assert large.index_size_bytes() > small.index_size_bytes()

    def test_model_cache_reused(self):
        table = correlated_table(seed=13)
        cache: dict = {}
        config = AugmentedGridConfig(
            skeleton=Skeleton.all_independent(["x", "y", "z"]), partitions={"x": 4, "y": 4, "z": 2}
        )
        AugmentedGrid(config).fit(table, model_cache=cache)
        populated = len(cache)
        AugmentedGrid(config).fit(table, model_cache=cache)
        assert len(cache) == populated and populated > 0
