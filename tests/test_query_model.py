"""Tests for repro.query.predicates, repro.query.query, and repro.query.engine."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.query.engine import execute_full_scan
from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.query import Query
from repro.storage.table import Table


class TestPredicates:
    def test_range_bounds(self):
        predicate = RangePredicate("x", 5, 10)
        assert predicate.bounds == (5, 10)
        assert predicate.width() == 6

    def test_range_inverted_rejected(self):
        with pytest.raises(QueryError):
            RangePredicate("x", 10, 5)

    def test_equality_is_unit_range(self):
        predicate = EqualityPredicate("x", 7)
        assert predicate.bounds == (7, 7)
        assert predicate.width() == 1

    def test_matches_vectorized(self):
        predicate = RangePredicate("x", 2, 4)
        mask = predicate.matches(np.array([1, 2, 3, 4, 5]))
        assert mask.tolist() == [False, True, True, True, False]


class TestQueryConstruction:
    def test_from_ranges_builds_predicates(self):
        query = Query.from_ranges({"x": (1, 5), "y": (3, 3)})
        assert query.num_filtered_dimensions == 2
        assert isinstance(query.predicate_for("y"), EqualityPredicate)

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(QueryError):
            Query(predicates=(RangePredicate("x", 0, 1), RangePredicate("x", 2, 3)))

    def test_sum_requires_column(self):
        with pytest.raises(QueryError):
            Query.from_ranges({"x": (0, 1)}, aggregate="sum")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            Query.from_ranges({"x": (0, 1)}, aggregate="median")

    def test_from_user_values_uses_encodings(self):
        table = Table.from_dict("t", {"price": [1.25, 2.50, 9.99], "mode": ["air", "rail", "air"]})
        query = Query.from_user_values(table, {"price": (1.0, 3.0), "mode": ("air", "air")})
        assert query.filters()["price"] == (100, 300)
        assert query.filters()["mode"] == (0, 0)


class TestQueryAccessors:
    def test_filters_dict(self):
        query = Query.from_ranges({"x": (1, 5)})
        assert query.filters() == {"x": (1, 5)}

    def test_bounds_for_default(self):
        query = Query.from_ranges({"x": (1, 5)})
        assert query.bounds_for("y", (0, 100)) == (0, 100)
        assert query.bounds_for("x", (0, 100)) == (1, 5)

    def test_restricted_to(self):
        query = Query.from_ranges({"x": (1, 5), "y": (2, 3)})
        restricted = query.restricted_to(["x"])
        assert restricted.filtered_dimensions == ("x",)

    def test_with_type(self):
        query = Query.from_ranges({"x": (1, 5)})
        assert query.with_type(3).query_type == 3
        assert query.query_type is None

    def test_intersects_box(self):
        query = Query.from_ranges({"x": (10, 20)})
        assert query.intersects_box({"x": (15, 30)})
        assert query.intersects_box({"x": (0, 10)})
        assert not query.intersects_box({"x": (21, 30)})
        assert query.intersects_box({"y": (0, 1)})  # unfiltered dims never exclude


class TestFullScan:
    def test_count_matches_numpy(self):
        rng = np.random.default_rng(3)
        table = Table.from_arrays("t", {"a": rng.integers(0, 100, 1000), "b": rng.integers(0, 100, 1000)})
        query = Query.from_ranges({"a": (10, 40), "b": (50, 99)})
        value, stats = execute_full_scan(table, query)
        a, b = table.values("a"), table.values("b")
        expected = int(np.count_nonzero((a >= 10) & (a <= 40) & (b >= 50) & (b <= 99)))
        assert value == expected
        assert stats.points_scanned == 1000

    def test_sum_aggregate(self):
        table = Table.from_arrays("t", {"a": np.array([1, 2, 3]), "b": np.array([10, 20, 30])})
        query = Query.from_ranges({"a": (2, 3)}, aggregate="sum", aggregate_column="b")
        value, _ = execute_full_scan(table, query)
        assert value == 50
