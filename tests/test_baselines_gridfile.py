"""Tests for the Grid File baseline (repro.baselines.gridfile)."""

import numpy as np
import pytest

from repro.baselines.gridfile import GridFileIndex
from repro.common.errors import IndexBuildError
from repro.query.engine import execute_full_scan
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


def extra_queries(seed: int = 0) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(15):
        low_x = int(rng.integers(0, 9_000))
        low_y = int(rng.integers(0, 25_000))
        queries.append(
            Query.from_ranges({"x": (low_x, low_x + 700), "y": (low_y, low_y + 4_000)})
        )
    queries.append(Query.from_ranges({"c": (3, 3)}))
    queries.append(Query.from_ranges({"x": (50_000, 60_000)}))  # empty result
    queries.append(Query(predicates=()))  # unfiltered
    return queries


class TestCorrectness:
    def test_workload_and_extra_queries(self, fresh_table, fresh_workload):
        index = GridFileIndex(page_size=256)
        index.build(fresh_table, fresh_workload)
        for query in list(fresh_workload) + extra_queries():
            expected, _ = execute_full_scan(fresh_table, query)
            assert index.execute(query).value == expected

    def test_sum_and_avg_aggregations(self, fresh_table, fresh_workload):
        index = GridFileIndex(page_size=256)
        index.build(fresh_table, fresh_workload)
        for aggregate in ("sum", "avg"):
            query = Query.from_ranges(
                {"x": (0, 6_000)}, aggregate=aggregate, aggregate_column="z"
            )
            expected, _ = execute_full_scan(fresh_table, query)
            assert index.execute(query).value == pytest.approx(expected)

    def test_build_without_workload_indexes_all_dimensions(self, fresh_table):
        index = GridFileIndex(page_size=256)
        index.build(fresh_table, None)
        assert set(index.dimensions) <= set(fresh_table.column_names)
        query = Query.from_ranges({"x": (1_000, 2_000)})
        expected, _ = execute_full_scan(fresh_table, query)
        assert index.execute(query).value == expected


class TestStructure:
    def test_smaller_pages_give_more_cells(self, fresh_table, fresh_workload):
        coarse = GridFileIndex(page_size=2_048).build(fresh_table, fresh_workload)
        fine = GridFileIndex(page_size=128).build(fresh_table, fresh_workload)
        assert fine.num_cells > coarse.num_cells

    def test_cell_budget_respected(self, fresh_table, fresh_workload):
        index = GridFileIndex(page_size=1, max_cells=500)
        index.build(fresh_table, fresh_workload)
        assert index.num_cells <= 500

    def test_only_filtered_dimensions_are_indexed(self, fresh_table, fresh_workload):
        index = GridFileIndex(page_size=256)
        index.build(fresh_table, fresh_workload)
        assert set(index.dimensions) <= set(fresh_workload.filtered_dimensions())

    def test_max_indexed_dimensions_cap(self, fresh_table):
        index = GridFileIndex(page_size=256, max_indexed_dimensions=2)
        index.build(fresh_table, None)
        assert len(index.dimensions) == 2

    def test_requested_dimensions_override(self, fresh_table, fresh_workload):
        index = GridFileIndex(page_size=256, dimensions=["z"])
        index.build(fresh_table, fresh_workload)
        assert index.dimensions == ["z"]

    def test_scanned_points_bounded_by_table(self, fresh_table, fresh_workload):
        index = GridFileIndex(page_size=256).build(fresh_table, fresh_workload)
        _, stats = index.execute_workload(fresh_workload)
        assert stats.points_scanned <= fresh_table.num_rows * len(fresh_workload)

    def test_describe_and_size(self, fresh_table, fresh_workload):
        index = GridFileIndex(page_size=256).build(fresh_table, fresh_workload)
        info = index.describe()
        assert info["name"] == "grid-file"
        assert info["num_cells"] == index.num_cells
        assert index.index_size_bytes() >= index.num_cells * 8


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_size": 0},
            {"max_cells": 0},
            {"max_indexed_dimensions": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GridFileIndex(**kwargs)

    def test_empty_dimension_list_rejected(self, fresh_table):
        with pytest.raises(IndexBuildError):
            GridFileIndex(dimensions=[]).build(fresh_table, None)

    def test_empty_table_rejected(self):
        empty = Table.from_arrays("e", {"x": np.array([], dtype=np.int64)})
        with pytest.raises(IndexBuildError):
            GridFileIndex().build(empty, Workload([]))
