"""Property-based tests (hypothesis) for the §8 extension modules.

* The outlier-aware functional mapping keeps the hard covering guarantee of
  §5.2.1 no matter how the data or the buffered fraction look.
* Categorical reordering is always a permutation of the dictionary codes, and
  rewritten equality queries return exactly the original answer.
* The delta-buffered index always agrees with a full scan over (table +
  pending inserts), for any insert sequence and merge threshold.
* The SQL front-end round-trips arbitrary conjunctive range conditions into
  queries that match a hand-built reference query.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.baselines import KdTreeIndex
from repro.core.categorical import CategoricalReordering
from repro.core.delta import DeltaBufferedIndex
from repro.core.outliers import OutlierBoundedMapping
from repro.query.engine import execute_full_scan
from repro.query.predicates import EqualityPredicate
from repro.query.query import Query
from repro.query.sql import parse_query
from repro.query.workload import Workload
from repro.storage.table import Table

SLOW = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=60, deadline=None)

float_arrays = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=300),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)


class TestOutlierMappingProperties:
    @SLOW
    @given(
        y=float_arrays,
        noise_seed=st.integers(min_value=0, max_value=2**16),
        fraction=st.floats(min_value=0.0, max_value=0.2),
        window=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_covering_guarantee_always_holds(self, y, noise_seed, fraction, window):
        rng = np.random.default_rng(noise_seed)
        x = 1.7 * y + rng.normal(0, 100, y.size)
        # Corrupt a few rows arbitrarily badly.
        corrupt = rng.random(y.size) < 0.05
        x[corrupt] += rng.uniform(-1e7, 1e7, int(corrupt.sum()))
        mapping = OutlierBoundedMapping.fit(y, x, max_outlier_fraction=fraction)
        y_low = float(rng.uniform(y.min(), y.max()))
        y_high = y_low + window
        x_low, x_high = mapping.map_range(y_low, y_high)
        mask = (y >= y_low) & (y <= y_high)
        assert np.all(x[mask] >= x_low - 1e-6)
        assert np.all(x[mask] <= x_high + 1e-6)

    @SLOW
    @given(y=float_arrays, fraction=st.floats(min_value=0.0, max_value=0.5))
    def test_buffer_never_exceeds_fraction(self, y, fraction):
        rng = np.random.default_rng(7)
        x = -3.0 * y + rng.normal(0, 1, y.size)
        mapping = OutlierBoundedMapping.fit(y, x, max_outlier_fraction=fraction)
        assert mapping.num_outliers <= int(np.floor(fraction * y.size))


def categorical_fixture(codes: list[int]) -> tuple[Table, Workload]:
    values = [f"value_{code:02d}" for code in codes]
    table = Table.from_dict("cat", {"mode": values, "other": list(range(len(values)))})
    num_values = len(table.column("mode").dictionary)
    rng = np.random.default_rng(13)
    queries = []
    for _ in range(12):
        low = int(rng.integers(0, num_values))
        high = int(rng.integers(low, num_values))
        queries.append(Query.from_ranges({"mode": (low, high)}))
    return table, Workload(queries, name="cat")


class TestCategoricalProperties:
    @SLOW
    @given(codes=st.lists(st.integers(min_value=0, max_value=20), min_size=5, max_size=200))
    def test_reordering_is_a_permutation(self, codes):
        table, workload = categorical_fixture(codes)
        reordering = CategoricalReordering.fit(table, "mode", workload)
        assert sorted(reordering.new_order.tolist()) == list(range(reordering.num_values))
        assert np.array_equal(
            reordering.new_order[reordering.old_to_new], np.arange(reordering.num_values)
        )

    @SLOW
    @given(
        codes=st.lists(st.integers(min_value=0, max_value=15), min_size=5, max_size=150),
        probe=st.integers(min_value=0, max_value=15),
    )
    def test_equality_queries_survive_reordering(self, codes, probe):
        table, workload = categorical_fixture(codes)
        reordering = CategoricalReordering.fit(table, "mode", workload)
        reordered_table = reordering.apply_to_table(table)
        dictionary = table.column("mode").dictionary
        probe_code = probe % len(dictionary)
        query = Query(predicates=(EqualityPredicate("mode", probe_code),))
        expected, _ = execute_full_scan(table, query)
        actual, _ = execute_full_scan(reordered_table, reordering.rewrite_query(query))
        assert actual == expected


class TestDeltaBufferProperties:
    @SLOW
    @given(
        inserts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9_999),
                st.integers(min_value=0, max_value=999),
            ),
            min_size=0,
            max_size=60,
        ),
        threshold=st.integers(min_value=5, max_value=50),
        query_low=st.integers(min_value=0, max_value=9_000),
    )
    def test_count_matches_reference_after_any_insert_sequence(
        self, inserts, threshold, query_low
    ):
        rng = np.random.default_rng(5)
        base = Table.from_arrays(
            "base",
            {
                "x": rng.integers(0, 10_000, 800),
                "z": rng.integers(0, 1_000, 800),
            },
        )
        index = DeltaBufferedIndex(lambda: KdTreeIndex(page_size=128), merge_threshold=threshold)
        index.build(base, None)
        for x_value, z_value in inserts:
            index.insert({"x": x_value, "z": z_value})

        all_x = np.concatenate(
            [base.values("x"), np.array([x for x, _ in inserts], dtype=np.int64)]
        ) if inserts else base.values("x")
        query = Query.from_ranges({"x": (query_low, query_low + 800)})
        expected = int(np.sum((all_x >= query_low) & (all_x <= query_low + 800)))
        assert index.execute(query).value == expected


class TestSqlProperties:
    @FAST
    @given(
        low=st.integers(min_value=0, max_value=9_000),
        width=st.integers(min_value=0, max_value=3_000),
        z_cap=st.integers(min_value=0, max_value=999),
    )
    def test_parsed_conditions_match_reference_query(self, low, width, z_cap):
        rng = np.random.default_rng(11)
        table = Table.from_arrays(
            "t",
            {
                "x": rng.integers(0, 10_000, 1_500),
                "z": rng.integers(0, 1_000, 1_500),
            },
        )
        sql = (
            f"SELECT COUNT(*) FROM t WHERE x BETWEEN {low} AND {low + width} "
            f"AND z <= {z_cap}"
        )
        parsed = parse_query(sql, table)
        reference = Query.from_ranges(
            {"x": (low, low + width), "z": (int(table.bounds('z')[0]), z_cap)}
        )
        expected, _ = execute_full_scan(table, reference)
        actual, _ = execute_full_scan(table, parsed)
        assert actual == expected
