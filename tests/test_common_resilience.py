"""Tests for the resilience primitives (repro.common.resilience).

The retry schedule must be deterministic under a seed (chaos runs replay),
and the circuit breaker must walk the classic closed → open → half-open →
closed machine exactly, with time injected so no test sleeps through a
cooldown.
"""

from random import Random

import pytest

from repro.common.errors import ReproError
from repro.common.resilience import (
    DEGRADATION_MODES,
    CircuitBreaker,
    FaultPolicy,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ReproError, match="backoff_seconds"):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ReproError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            max_retries=5,
            backoff_seconds=0.1,
            multiplier=2.0,
            max_backoff_seconds=0.3,
            jitter=0.0,
        )
        rng = Random(0)
        assert policy.delay_seconds(0, rng) == pytest.approx(0.1)
        assert policy.delay_seconds(1, rng) == pytest.approx(0.2)
        assert policy.delay_seconds(2, rng) == pytest.approx(0.3)  # capped
        assert policy.delay_seconds(3, rng) == pytest.approx(0.3)  # stays capped

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(max_retries=3, backoff_seconds=0.1, jitter=0.25)
        first = [policy.delay_seconds(a, Random(42)) for a in range(3)]
        second = [policy.delay_seconds(a, Random(42)) for a in range(3)]
        assert first == second
        for attempt, delay in enumerate(first):
            base = min(0.1 * 2.0**attempt, policy.max_backoff_seconds)
            assert base * 0.75 <= delay <= base * 1.25

    def test_default_policy_never_retries(self):
        assert RetryPolicy().max_retries == 0


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ReproError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError, match="cooldown_seconds"):
            CircuitBreaker(cooldown_seconds=-1.0)

    def test_closed_allows_and_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_at_threshold_and_refuses(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 1

    def test_cooldown_admits_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # probe in flight: everyone else refused

    def test_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_as_dict_reports_tuning_and_state(self):
        breaker = CircuitBreaker(failure_threshold=4, cooldown_seconds=2.0)
        info = breaker.as_dict()
        assert info == {
            "state": "closed",
            "consecutive_failures": 0,
            "failure_threshold": 4,
            "cooldown_seconds": 2.0,
            "opens": 0,
        }


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ReproError, match="shard_timeout_seconds"):
            FaultPolicy(shard_timeout_seconds=0.0)
        with pytest.raises(ReproError, match="degradation"):
            FaultPolicy(degradation="yolo")

    def test_modes(self):
        assert DEGRADATION_MODES == ("strict", "degraded")
        assert FaultPolicy().degradation == "strict"

    def test_build_breaker_applies_tuning(self):
        policy = FaultPolicy(breaker_failure_threshold=7, breaker_cooldown_seconds=3.0)
        breaker = policy.build_breaker()
        assert breaker.failure_threshold == 7
        assert breaker.cooldown_seconds == 3.0
