"""Tests for the serving lifecycle loop (repro.core.lifecycle)."""

import numpy as np
import pytest

from repro.baselines import KdTreeIndex
from repro.common.errors import IndexBuildError
from repro.core.delta import DeltaBufferedIndex
from repro.core.lifecycle import LifecycleConfig, LifecycleManager
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.query import Query


def tsunami_factory():
    return TsunamiIndex(TsunamiConfig(optimizer_iterations=1, optimizer_sample_rows=2_000))


def build_delta(table, workload, factory=tsunami_factory, merge_threshold=100_000):
    index = DeltaBufferedIndex(factory, merge_threshold=merge_threshold)
    index.build(table, workload)
    return index


def new_rows(count: int, seed: int = 31) -> list[dict]:
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(count):
        x = int(rng.integers(0, 10_000))
        rows.append({"x": x, "y": 3 * x, "z": int(rng.integers(0, 1_000)), "c": int(rng.integers(0, 8))})
    return rows


def novel_queries(count: int, seed: int = 37) -> list[Query]:
    """Wide single-dimension queries unlike anything in the fitted workload."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        low = int(rng.integers(0, 2_000))
        queries.append(Query.from_ranges({"x": (low, low + 7_000)}))
    return queries


class TestConstruction:
    def test_requires_built_index(self):
        with pytest.raises(IndexBuildError):
            LifecycleManager(DeltaBufferedIndex(tsunami_factory))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LifecycleConfig(observe_window=0)
        with pytest.raises(ValueError):
            LifecycleConfig(merge_pressure=0.0)

    def test_detector_fitted_from_recorded_workload(self, fresh_table, fresh_workload):
        manager = LifecycleManager(build_delta(fresh_table, fresh_workload))
        assert manager.detector is not None

    def test_no_workload_disables_drift_detection(self, fresh_table):
        index = build_delta(fresh_table, None, factory=lambda: KdTreeIndex(page_size=512))
        manager = LifecycleManager(index)
        assert manager.detector is None
        # Serving still works; windows are simply never observed.
        manager.run_batch(novel_queries(5))
        assert manager.report().windows_observed == 0


class TestServing:
    def test_run_and_run_batch_answer_correctly(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=1_000))
        manager.insert_many(new_rows(20))
        queries = list(fresh_workload)[:8]
        batched = manager.run_batch(queries)
        for query, result in zip(queries, batched):
            assert result.value == index.execute(query).value
            assert manager.run(query).value == result.value
        report = manager.report()
        assert report.queries_served == len(queries) * 2
        assert report.batches_served == 1
        assert report.rows_inserted == 20


class TestMergePressure:
    def test_pressure_triggers_merge(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload, factory=lambda: KdTreeIndex(page_size=512))
        manager = LifecycleManager(index, LifecycleConfig(merge_pressure=0.01))
        manager.insert_many(new_rows(60))  # 60 / 5000 > 1%
        assert index.num_pending == 0
        report = manager.report()
        assert report.merges == 1
        assert report.rows_merged == 60
        assert [event.kind for event in report.events] == ["merge"]
        assert report.events[0].details["trigger"] == "pressure"

    def test_pressure_merge_refits_detector_on_new_table(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload, factory=lambda: KdTreeIndex(page_size=512))
        manager = LifecycleManager(index, LifecycleConfig(merge_pressure=0.01))
        stale_table = index.table
        manager.insert_many(new_rows(60))
        assert index.num_pending == 0
        assert manager.detector is not None
        assert manager.detector._table is index.base_index.table
        assert manager.detector._table is not stale_table

    def test_pressure_disabled(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload, factory=lambda: KdTreeIndex(page_size=512))
        manager = LifecycleManager(index, LifecycleConfig(merge_pressure=None))
        manager.insert_many(new_rows(60))
        assert index.num_pending == 60
        assert manager.report().merges == 0


class TestDriftLoop:
    def test_drift_triggers_reoptimize_and_advances_baselines(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=32, merge_pressure=None))
        manager.insert_many(new_rows(15))
        manager.run_batch(novel_queries(32))
        report = manager.report()
        assert report.windows_observed == 1
        assert report.drifts_detected == 1
        assert report.reoptimizations == 1
        kinds = [event.kind for event in report.events]
        assert "drift" in kinds
        # Pending inserts were folded in before the layout repair.
        assert index.num_pending == 0
        assert report.merges == 1
        # Queries remain correct after the whole maintenance pass.
        for query in novel_queries(6, seed=41) + list(fresh_workload)[:6]:
            expected, _ = execute_full_scan(index.table, query)
            assert index.execute(query).value == expected

    def test_reoptimize_can_be_disabled(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=32, reoptimize_on_drift=False)
        )
        manager.run_batch(novel_queries(32))
        report = manager.report()
        assert report.drifts_detected == 1
        assert report.reoptimizations == 0

    def test_non_tsunami_base_records_drift_only(self, fresh_table, fresh_workload):
        index = build_delta(
            fresh_table, fresh_workload, factory=lambda: KdTreeIndex(page_size=512)
        )
        manager = LifecycleManager(index, LifecycleConfig(observe_window=32))
        manager.run_batch(novel_queries(32))
        report = manager.report()
        assert report.drifts_detected == 1
        assert report.reoptimizations == 0

    def test_stable_workload_never_drifts(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=40))
        # Serve the fitted workload itself, interleaved so each window mixes
        # both query types the way live traffic would.
        queries = list(fresh_workload)
        order = np.random.default_rng(3).permutation(len(queries))
        manager.run_batch([queries[i] for i in order])
        report = manager.report()
        assert report.windows_observed == 2
        assert report.drifts_detected == 0
        assert report.reoptimizations == 0


class TestTickAndReport:
    def test_tick_flushes_partial_window(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=1_000))
        manager.run_batch(novel_queries(30))
        assert manager.report().windows_observed == 0
        events = manager.tick()
        assert manager.report().windows_observed == 1
        assert any(event.kind == "drift" for event in events)

    def test_tick_checks_pressure(self, fresh_table, fresh_workload):
        index = build_delta(fresh_table, fresh_workload, factory=lambda: KdTreeIndex(page_size=512))
        manager = LifecycleManager(index, LifecycleConfig(merge_pressure=None))
        manager.insert_many(new_rows(60))
        manager.config = LifecycleConfig(merge_pressure=0.01)
        events = manager.tick()
        assert [event.kind for event in events] == ["merge"]
        assert index.num_pending == 0

    def test_report_as_dict_is_serializable(self, fresh_table, fresh_workload):
        import json

        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(index, LifecycleConfig(observe_window=32))
        manager.insert_many(new_rows(10))
        manager.run_batch(novel_queries(32))
        payload = manager.report().as_dict()
        assert payload["queries_served"] == 32
        assert payload["rows_inserted"] == 10
        json.dumps(payload)  # must not raise


class TestMaintenanceFailures:
    """Failed maintenance (merge, reoptimize) must never take serving down:
    the failure is recorded as a ``maintenance_error`` event and the action is
    retried the next time its trigger fires."""

    def test_pressure_merge_failure_keeps_serving_then_retries(
        self, fresh_table, fresh_workload
    ):
        from repro.common import faults
        from repro.common.faults import FaultPlan, FaultSpec

        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=10_000, merge_pressure=0.001)
        )
        plan = FaultPlan([FaultSpec(site="delta.merge", max_triggers=1)])
        with faults.active(plan):
            manager.insert_many(new_rows(15))  # pressure merge fails inside
        report = manager.report()
        assert report.maintenance_failures == 1
        assert report.merges == 0
        assert index.num_pending == 15  # buffer intact, rows still visible
        failure = next(e for e in report.events if e.kind == "maintenance_error")
        assert failure.details["operation"] == "merge"
        assert failure.details["trigger"] == "pressure"
        assert "InjectedFault" in failure.details["error"]
        # Serving continued throughout, and the next trigger retries the merge.
        manager.run_batch(novel_queries(4))
        manager.insert(new_rows(1, seed=77)[0])
        assert manager.report().merges == 1
        assert index.num_pending == 0

    def test_failed_merge_does_not_brick_the_delta_index(self, fresh_table, fresh_workload):
        """A merge that dies mid-rebuild leaves the old index serving."""
        from repro.common import faults
        from repro.common.faults import FaultPlan, FaultSpec

        index = build_delta(fresh_table, fresh_workload)
        index.insert_many(new_rows(10))
        plan = FaultPlan([FaultSpec(site="delta.merge", max_triggers=1)])
        with faults.active(plan):
            with pytest.raises(Exception):
                index.merge()
        # The wrapped index was not replaced by a half-built one.
        assert index.is_built
        query = novel_queries(1)[0]
        result = index.execute(query)
        assert result is not None
        assert index.num_pending == 10

    def test_reoptimize_failure_records_event_and_serving_continues(
        self, fresh_table, fresh_workload
    ):
        from repro.common import faults
        from repro.common.faults import FaultPlan, FaultSpec

        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=32, merge_pressure=None)
        )
        manager.insert_many(new_rows(15))
        plan = FaultPlan([FaultSpec(site="lifecycle.reoptimize", max_triggers=1)])
        with faults.active(plan):
            manager.run_batch(novel_queries(32))
        report = manager.report()
        assert report.drifts_detected == 1
        assert report.reoptimizations == 0
        assert report.maintenance_failures == 1
        assert report.merges == 1  # the drift merge preceding it succeeded
        failure = next(e for e in report.events if e.kind == "maintenance_error")
        assert failure.details["operation"] == "reoptimize"
        # Queries stay correct on the unrepaired layout.
        for query in novel_queries(5, seed=53):
            expected, _ = execute_full_scan(index.table, query)
            assert manager.run(query).value == expected

    def test_failed_drift_merge_skips_reoptimization(self, fresh_table, fresh_workload):
        from repro.common import faults
        from repro.common.faults import FaultPlan, FaultSpec

        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=32, merge_pressure=None)
        )
        manager.insert_many(new_rows(15))
        plan = FaultPlan([FaultSpec(site="delta.merge")])
        with faults.active(plan):
            manager.run_batch(novel_queries(32))
        report = manager.report()
        assert report.drifts_detected == 1
        assert report.maintenance_failures == 1
        assert report.reoptimizations == 0  # layout repair skipped, not crashed
        assert index.num_pending == 15

    def test_listeners_see_maintenance_error_events(self, fresh_table, fresh_workload):
        from repro.common import faults
        from repro.common.faults import FaultPlan, FaultSpec

        index = build_delta(fresh_table, fresh_workload)
        manager = LifecycleManager(
            index, LifecycleConfig(observe_window=10_000, merge_pressure=0.001)
        )
        seen = []
        manager.subscribe(seen.append)
        plan = FaultPlan([FaultSpec(site="delta.merge", max_triggers=1)])
        with faults.active(plan):
            manager.insert_many(new_rows(15))
        assert any(event.kind == "maintenance_error" for event in seen)
