"""Tests for repro.storage.column."""

import numpy as np
import pytest

from repro.common.errors import SchemaError
from repro.storage.column import Column


class TestColumnConstruction:
    def test_from_integer_values(self):
        column = Column.from_values("a", [3, 1, 2])
        assert column.values.tolist() == [3, 1, 2]
        assert column.dictionary is None and column.scaler is None

    def test_from_float_values_scales(self):
        column = Column.from_values("price", [1.25, 2.50])
        assert column.scaler is not None
        assert column.values.tolist() == [125, 250]

    def test_from_string_values_dictionary_encodes(self):
        column = Column.from_values("mode", ["air", "ship", "air"])
        assert column.dictionary is not None
        assert column.values.tolist() == [0, 1, 0]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", np.array([1]))

    def test_dictionary_and_scaler_mutually_exclusive(self):
        from repro.storage.dictionary import DictionaryEncoder
        from repro.storage.scaling import FixedPointScaler

        with pytest.raises(SchemaError):
            Column(
                "bad",
                np.array([1]),
                dictionary=DictionaryEncoder(["a"]),
                scaler=FixedPointScaler(1),
            )


class TestColumnAccess:
    def test_len_and_minmax(self):
        column = Column("a", np.array([5, 1, 9]))
        assert len(column) == 3
        assert column.min() == 1
        assert column.max() == 9

    def test_minmax_on_empty_raises(self):
        column = Column("a", np.array([], dtype=np.int64))
        with pytest.raises(SchemaError):
            column.min()

    def test_values_are_read_only(self):
        column = Column("a", np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            column.values[0] = 9

    def test_slice(self):
        column = Column("a", np.array([1, 2, 3, 4]))
        assert column.slice(1, 3).tolist() == [2, 3]

    def test_slice_is_read_only(self):
        # A slice used to hand out a writable window into the stored values;
        # mutating it corrupted the column behind the index's back.
        column = Column("a", np.array([1, 2, 3, 4]))
        view = column.slice(1, 3)
        with pytest.raises(ValueError):
            view[0] = 99
        assert column.values.tolist() == [1, 2, 3, 4]

    def test_narrowing_and_meta(self):
        column = Column("a", np.array([3, 250, 7]))
        assert column.dtype == np.uint8
        assert column.meta.min_value == 3 and column.meta.max_value == 250
        assert column.distinct_count() == 3
        wide = Column("a", np.array([-1, 2**40]))
        assert wide.dtype == np.int64


class TestValueConversion:
    def test_string_roundtrip(self):
        column = Column.from_values("mode", ["rail", "air"])
        assert column.to_user(column.to_storage("rail")) == "rail"

    def test_float_roundtrip(self):
        column = Column.from_values("price", [1.25, 9.99])
        assert column.to_user(column.to_storage(9.99)) == pytest.approx(9.99)

    def test_int_passthrough(self):
        column = Column.from_values("a", [1, 2])
        assert column.to_storage(7) == 7
        assert column.to_user(7) == 7


class TestReorder:
    def test_reorder_permutes_values(self):
        column = Column("a", np.array([10, 20, 30]))
        column.reorder(np.array([2, 0, 1]))
        assert column.values.tolist() == [30, 10, 20]

    def test_reorder_wrong_length_rejected(self):
        column = Column("a", np.array([1, 2, 3]))
        with pytest.raises(SchemaError):
            column.reorder(np.array([0, 1]))

    def test_size_bytes(self):
        # Values 0..99 narrow to uint8: one byte per row.
        column = Column("a", np.arange(100))
        assert column.size_bytes() == 100
        wide = Column("a", np.arange(100), narrow=False)
        assert wide.size_bytes() >= 800
