"""Fig. 10: scalability with the number of dimensions.

Two panels: uncorrelated synthetic datasets, and datasets where half of the
dimensions are linearly correlated (strongly or loosely) with the other half.
The paper's claim is that Tsunami keeps outperforming the other indexes as
dimensionality grows, and that the Augmented Grid uses correlations to delay
the curse of dimensionality.

The experiment driver and its parameters (dimension counts, correlation
panel) come from ``benchmarks/configs/fig10_uncorrelated.json`` and
``benchmarks/configs/fig10_correlated.json``; only the assertions live here.
"""

from pathlib import Path

from benchmarks.conftest import run_once
from repro.bench.cli import EXPERIMENTS
from repro.bench.scenario import load_config

_CONFIGS = Path(__file__).resolve().parent / "configs"


def _run_panel(benchmark, config_name, bench_rows, bench_queries):
    config = load_config(_CONFIGS / config_name)
    driver, _ = EXPERIMENTS[config.experiment]
    params = dict(config.params)
    params["dimension_counts"] = tuple(params["dimension_counts"])
    return run_once(
        benchmark,
        driver,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        **params,
    )


def test_fig10_uncorrelated_dimensions(benchmark, bench_rows, bench_queries):
    result = _run_panel(benchmark, "fig10_uncorrelated.json", bench_rows, bench_queries)
    print()
    print(result)
    for dims, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers at d={dims}"


def test_fig10_correlated_dimensions(benchmark, bench_rows, bench_queries):
    result = _run_panel(benchmark, "fig10_correlated.json", bench_rows, bench_queries)
    print()
    print(result)
    for dims, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers at d={dims}"
        by_name = {m.index_name: m for m in measurements}
        # On correlated data Tsunami must not do more scan work than Flood.
        assert (
            by_name["tsunami"].avg_points_scanned
            <= by_name["flood"].avg_points_scanned * 1.10
        )
