"""Fig. 10: scalability with the number of dimensions.

Two panels: uncorrelated synthetic datasets, and datasets where half of the
dimensions are linearly correlated (strongly or loosely) with the other half.
The paper's claim is that Tsunami keeps outperforming the other indexes as
dimensionality grows, and that the Augmented Grid uses correlations to delay
the curse of dimensionality.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import experiment_dimensions


def test_fig10_uncorrelated_dimensions(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_dimensions,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        dimension_counts=(4, 8, 12),
        correlated=False,
        include_nonlearned=True,
    )
    print()
    print(result)
    for dims, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers at d={dims}"


def test_fig10_correlated_dimensions(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_dimensions,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        dimension_counts=(4, 8, 12),
        correlated=True,
        include_nonlearned=True,
    )
    print()
    print(result)
    for dims, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers at d={dims}"
        by_name = {m.index_name: m for m in measurements}
        # On correlated data Tsunami must not do more scan work than Flood.
        assert (
            by_name["tsunami"].avg_points_scanned
            <= by_name["flood"].avg_points_scanned * 1.10
        )
