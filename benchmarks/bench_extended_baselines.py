"""Extended baseline comparison: Grid File and R-tree join the Fig. 7 suite.

The paper excludes Grid Files, UB-trees, and R*-trees from its headline
comparison because Flood already showed consistent superiority over them
(§6.1).  This supplementary benchmark re-checks that claim on our substrate:
the learned indexes (Flood, Tsunami) should beat both added baselines on scan
work, and Tsunami should remain the overall winner.
"""

from benchmarks.conftest import run_once
from repro.bench.extensions import experiment_extended_baselines


def test_extended_baselines(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_extended_baselines,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        datasets=("tpch", "taxi"),
    )
    print()
    print(result)
    for dataset, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers on {dataset}"
        by_name = {m.index_name: m for m in measurements}
        # The learned indexes should scan less than both added traditional baselines.
        for baseline in ("grid-file", "r-tree"):
            assert (
                by_name["tsunami"].avg_points_scanned
                <= by_name[baseline].avg_points_scanned * 1.05
            ), f"tsunami should not scan more than {baseline} on {dataset}"
