"""Fig. 11: scalability with dataset size (11a) and query selectivity (11b).

11a samples the TPC-H stand-in at increasing row counts and runs the same
workload; 11b scales the synthetic correlated workload's filter ranges up and
down to sweep average query selectivity, as in the paper's 0.001%-10% sweep.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import experiment_dataset_size, experiment_selectivity


def test_fig11a_dataset_size(benchmark, bench_rows, bench_queries):
    row_counts = (bench_rows // 4, bench_rows // 2, bench_rows)
    result = run_once(
        benchmark,
        experiment_dataset_size,
        row_counts=row_counts,
        queries_per_type=bench_queries,
    )
    print()
    print(result)
    for rows, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers at {rows} rows"
    # Tsunami's advantage over Flood in scan work should hold at every size.
    largest = result.data[row_counts[-1]]
    by_name = {m.index_name: m for m in largest}
    assert (
        by_name["tsunami"].avg_points_scanned <= by_name["flood"].avg_points_scanned * 1.10
    )


def test_fig11b_query_selectivity(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_selectivity,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        selectivity_factors=(0.2, 1.0, 5.0),
    )
    print()
    print(result)
    averages = [info["avg_selectivity"] for info in result.data.values()]
    assert averages == sorted(averages), "selectivity sweep must be monotone"
    for factor, info in result.data.items():
        assert all(m.correct for m in info["measurements"]), f"wrong answers at {factor}"
