"""Table 3: dataset and query characteristics.

Regenerates the paper's dataset summary (records, query types, dimensions,
in-memory size, selectivity band) for the four stand-in datasets.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import experiment_table3


def test_table3_dataset_characteristics(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark, experiment_table3, num_rows=bench_rows, queries_per_type=bench_queries
    )
    print()
    print(result)
    assert set(result.data) == {"tpch", "taxi", "perfmon", "stocks"}
    for name, info in result.data.items():
        stats = info["table"]
        assert stats.num_query_types >= 5
        # The paper's workloads sit in the sub-5% selectivity band on average.
        assert stats.avg_selectivity < 0.05
