"""Ablation benchmarks for design choices called out in DESIGN.md.

Not a paper figure, but exercises two knobs the paper discusses qualitatively:

* the cost-model weight ratio ``w0/w1`` (§5.3.1): a larger per-cell-range
  charge pushes the optimizer towards coarser grids (fewer cells, more points
  scanned per query), and vice versa;
* the Grid Tree region budget (§4.3): more regions reduce per-region skew but
  increase index size and planning overhead.
"""


from repro.baselines import FloodIndex
from repro.bench.report import format_table
from repro.core.cost_model import CostModel
from repro.core.grid_tree import GridTreeConfig
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.datasets import load_dataset


def test_ablation_cost_model_weights(benchmark, bench_rows, bench_queries):
    """Sweeping w0 trades grid cells against scanned points, as §5.3.1 implies."""

    def run():
        table, workload = load_dataset(
            "tpch", num_rows=bench_rows, queries_per_type=bench_queries
        )
        rows = []
        for w0 in (5.0, 50.0, 500.0):
            index = FloodIndex(cost_model=CostModel(w0=w0, w1=1.0))
            index.build(table, workload)
            _, stats = index.execute_workload(workload)
            rows.append(
                {
                    "w0": w0,
                    "grid cells": index.num_cells,
                    "avg scanned": round(stats.points_scanned / len(workload), 1),
                    "avg cell ranges": round(stats.cell_ranges / len(workload), 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    # A cheaper cell-range charge must never lead to fewer cells than the
    # most expensive one (the optimizer would have no reason to coarsen).
    assert rows[0]["grid cells"] >= rows[-1]["grid cells"]


def test_ablation_grid_tree_region_budget(benchmark, bench_rows, bench_queries):
    """More Grid Tree regions may reduce scan work but grow the index."""

    def run():
        table, workload = load_dataset(
            "taxi", num_rows=bench_rows, queries_per_type=bench_queries
        )
        rows = []
        for max_regions in (1, 8, 48):
            config = TsunamiConfig(grid_tree=GridTreeConfig(max_regions=max_regions))
            index = TsunamiIndex(config)
            index.build(table, workload)
            _, stats = index.execute_workload(workload)
            info = index.describe()
            rows.append(
                {
                    "max regions": max_regions,
                    "regions": info["num_leaf_regions"],
                    "avg scanned": round(stats.points_scanned / len(workload), 1),
                    "index size (KiB)": round(index.index_size_bytes() / 1024, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    assert rows[0]["regions"] <= rows[-1]["regions"]
