"""Fig. 12a: drill-down into Tsunami's two components.

Compares Flood, the Augmented-Grid-only variant (no Grid Tree), the
Grid-Tree-only variant (Flood-style grids per region), and full Tsunami.  The
paper finds that the Grid Tree contributes most of the gain, with the
Augmented Grid adding a further boost on correlated data.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import experiment_components


def test_fig12a_component_drilldown(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_components,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        datasets=("tpch", "taxi"),
    )
    print()
    print(result)
    for dataset, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers on {dataset}"
        by_name = {m.index_name: m for m in measurements}
        # The full composition should not do more scan work than plain Flood.
        assert (
            by_name["tsunami"].avg_points_scanned
            <= by_name["flood"].avg_points_scanned * 1.10
        )
