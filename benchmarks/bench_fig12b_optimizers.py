"""Fig. 12b: comparison of optimization methods and cost-model accuracy.

Runs Adaptive Gradient Descent (AGD), plain Gradient Descent (GD), the
basin-hopping Black-Box baseline, and AGD with naive initialization (AGD-NI)
over the whole data space, reporting each method's predicted cost, the actual
measured query time of the resulting grid, and the cost model's relative error
(the paper reports an average error of ~15%).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import experiment_optimizers


def test_fig12b_optimization_methods(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_optimizers,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        datasets=("tpch", "taxi"),
        blackbox_iterations=10,
    )
    print()
    print(result)
    for dataset, methods in result.data.items():
        assert set(methods) == {"AGD", "GD", "Black Box", "AGD-NI"}
        # AGD should find a configuration at least as good as plain GD
        # (predicted cost is the optimization objective).
        assert (
            methods["AGD"]["result"].predicted_cost
            <= methods["GD"]["result"].predicted_cost * 1.05
        ), f"AGD worse than GD on {dataset}"
        for name, info in methods.items():
            assert info["actual_avg_seconds"] > 0
