"""Fig. 7: query throughput of every index on every dataset.

The paper's headline result: Tsunami is the fastest index on all four
datasets, up to 6x faster than Flood and up to 11x faster than the best
optimally-tuned non-learned index.  At this reproduction's scale the shape to
check is the ordering (Tsunami >= Flood on work done) rather than the absolute
factors; both wall-clock throughput and machine-independent scanned-point
counts are reported.

The experiment driver and its parameters (which datasets to run) come from
``benchmarks/configs/fig7_overall.json``; only the assertions live here.
"""

from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.bench.cli import EXPERIMENTS
from repro.bench.harness import default_index_factories
from repro.bench.scenario import load_config
from repro.datasets import load_dataset

CONFIG = load_config(Path(__file__).resolve().parent / "configs" / "fig7_overall.json")


def test_fig7_overall_throughput(benchmark, bench_rows, bench_queries):
    driver, _ = EXPERIMENTS[CONFIG.experiment]
    result = run_once(
        benchmark,
        driver,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        datasets=tuple(CONFIG.params["datasets"]),
    )
    print()
    print(result)
    wins = 0
    for dataset, measurements in result.data.items():
        assert all(m.correct for m in measurements), f"wrong answers on {dataset}"
        by_name = {m.index_name: m for m in measurements}
        # Paper shape: Tsunami is the fastest learned index.
        assert (
            by_name["tsunami"].queries_per_second >= by_name["flood"].queries_per_second
        ), f"tsunami slower than flood on {dataset}"
        if by_name["tsunami"].avg_points_scanned <= by_name["flood"].avg_points_scanned * 1.10:
            wins += 1
    # Tsunami should also do no more scan work than Flood on most datasets
    # (at reduced scale one dataset may deviate; EXPERIMENTS.md discusses it).
    assert wins >= len(result.data) - 1, "tsunami scans more than flood on most datasets"


@pytest.mark.parametrize("dataset", CONFIG.params["datasets"])
@pytest.mark.parametrize("index_name", ["tsunami", "flood", "kd-tree"])
def test_fig7_per_query_latency(benchmark, dataset, index_name, bench_rows, bench_queries):
    """Per-query latency of the headline indexes, measured by pytest-benchmark."""
    table, workload = load_dataset(
        dataset, num_rows=bench_rows, queries_per_type=bench_queries
    )
    factory = default_index_factories()[index_name]
    index = factory()
    index.build(table, workload)
    queries = list(workload)

    position = {"i": 0}

    def run_one_query():
        query = queries[position["i"] % len(queries)]
        position["i"] += 1
        return index.execute(query).value

    benchmark(run_one_query)
