"""Serving front-end latency + throughput tracker (concurrency, PR 6).

This benchmark guards the perf trajectory of the concurrent serving layer:

1. **Closed-loop throughput** — queries/sec of a zipf-skewed stream served
   three ways: serialized per-query execution (one ``engine.run`` at a
   time, the no-server baseline), concurrent clients through the
   micro-batching front-end with the result cache disabled (isolates the
   batching win), and the same front-end with the cache enabled (adds the
   repeated-template win).  Every configuration must return bit-identical
   values.
2. **Open-loop latency** — clients submit on a Poisson arrival schedule at a
   rate calibrated *above* the serialized capacity (offered load =
   ``OVERLOAD_FACTOR`` × serialized qps), and per-query latency is measured
   from the scheduled arrival to completion.  p50/p95/p99 show what
   micro-batching does to tail latency when a single-query loop saturates.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py           # full
    PYTHONPATH=src python benchmarks/bench_serving_latency.py --smoke   # CI

The full mode writes ``BENCH_serving.json`` at the repository root (the smoke
run only when ``--output`` is passed explicitly).  The smoke mode exits
non-zero if concurrent micro-batched serving (cache off) fails to beat
serialized per-query serving on the skewed workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine
from repro.query.query import Query
from repro.query.workload import Workload
from repro.serve import ServingConfig, ServingFrontend
from repro.storage.table import Table

DOMAIN = 100_000
# Closed-loop client threads. This also caps the batch the window can form
# (a blocked client cannot resubmit), so it is sized well above the
# break-even batch size of the batched pipeline (~8 on this workload).
NUM_CLIENTS = 32
OVERLOAD_FACTOR = 1.4  # offered open-loop load relative to serialized capacity


def make_dataset(num_rows: int, seed: int = 41) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, DOMAIN, num_rows)
    y = x * 3 + rng.integers(-500, 501, num_rows)
    z = rng.integers(0, 5_000, num_rows)
    return Table.from_arrays("serving", {"x": x, "y": y, "z": z})


def make_skewed_stream(
    num_templates: int, num_queries: int, seed: int = 42
) -> tuple[Workload, list[Query]]:
    """Zipf-repeated templates: the bursty skewed traffic Tsunami targets."""
    rng = np.random.default_rng(seed)
    templates = []
    for _ in range(num_templates):
        x_low = int(rng.integers(0, DOMAIN - 6_000))
        templates.append(
            Query.from_ranges(
                {
                    "x": (x_low, x_low + int(rng.integers(1_000, 5_000))),
                    "z": (0, int(rng.integers(1_000, 4_500))),
                }
            )
        )
    draws = rng.zipf(1.2, size=num_queries) - 1
    stream = [templates[int(d) % num_templates] for d in draws]
    return Workload(templates, name="templates"), stream


def build_engine(num_rows: int, templates: Workload) -> QueryEngine:
    index = TsunamiIndex(TsunamiConfig(optimizer_iterations=2))
    index.build(make_dataset(num_rows), templates)
    return QueryEngine(index=index)


def serving_config(cache: bool) -> ServingConfig:
    return ServingConfig(
        max_batch_size=256,
        max_delay_seconds=0.002,
        idle_gap_seconds=0.00025,
        max_queue_depth=8_192,
        cache_entries=4_096 if cache else 0,
    )


def percentile_summary(latencies_s: list[float]) -> dict:
    values = np.asarray(latencies_s) * 1_000.0
    p50, p95, p99 = np.percentile(values, [50, 95, 99])
    return {
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "mean_ms": round(float(values.mean()), 3),
        "max_ms": round(float(values.max()), 3),
    }


# -- closed loop: throughput ------------------------------------------------------------


def run_serialized(engine: QueryEngine, stream: list[Query]) -> tuple[float, list[float]]:
    """One query at a time through ``engine.run`` — the no-server baseline."""
    start = time.perf_counter()
    values = [engine.run(query).value for query in stream]
    return time.perf_counter() - start, values


def run_concurrent(
    frontend: ServingFrontend, stream: list[Query], num_clients: int
) -> tuple[float, list[float]]:
    """``num_clients`` closed-loop clients submitting through the front-end."""
    start = time.perf_counter()
    with ThreadPoolExecutor(num_clients) as pool:
        results = list(pool.map(frontend.query, stream))
    return time.perf_counter() - start, [result.value for result in results]


def bench_closed_loop(engine: QueryEngine, stream: list[Query]) -> dict:
    results: dict = {"num_queries": len(stream), "num_clients": NUM_CLIENTS}

    # Warm the plan caches once so every mode measures steady state.
    engine.run_batch(stream[:256], batch_size=256)

    serial_seconds, expected = run_serialized(engine, stream)
    results["serialized"] = {
        "queries_per_second": round(len(stream) / serial_seconds, 1),
        "seconds_total": round(serial_seconds, 4),
    }

    for label, cache in (("batched", False), ("batched_cached", True)):
        with ServingFrontend(engine, _no_close(serving_config(cache))) as frontend:
            seconds, values = run_concurrent(frontend, stream, NUM_CLIENTS)
            for got, want in zip(values, expected):
                assert got == want, f"{label} serving diverged from serialized"
            results[label] = {
                "queries_per_second": round(len(stream) / seconds, 1),
                "seconds_total": round(seconds, 4),
                "stats": frontend.describe(),
            }

    serial_qps = results["serialized"]["queries_per_second"]
    results["batched_vs_serialized"] = round(
        results["batched"]["queries_per_second"] / serial_qps, 3
    )
    results["cached_vs_serialized"] = round(
        results["batched_cached"]["queries_per_second"] / serial_qps, 3
    )
    return results


def _no_close(config: ServingConfig) -> ServingConfig:
    """The benchmark reuses one engine across front-ends; don't close it."""
    from dataclasses import replace

    return replace(config, close_backend=False)


# -- open loop: latency -----------------------------------------------------------------


def arrival_offsets(num_queries: int, rate_qps: float, seed: int = 43) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.exponential(1.0 / rate_qps, size=num_queries).cumsum()


def open_loop_serialized(
    engine: QueryEngine, stream: list[Query], offsets: np.ndarray
) -> list[float]:
    """A single server thread working a Poisson arrival schedule."""
    latencies = []
    start = time.perf_counter()
    for query, offset in zip(stream, offsets):
        scheduled = start + offset
        now = time.perf_counter()
        if now < scheduled:
            time.sleep(scheduled - now)
        engine.run(query)
        latencies.append(time.perf_counter() - scheduled)
    return latencies


def open_loop_concurrent(
    frontend: ServingFrontend,
    stream: list[Query],
    offsets: np.ndarray,
    num_clients: int,
) -> list[float]:
    """``num_clients`` threads splitting the same arrival schedule."""
    latencies: list[float] = []
    lock = threading.Lock()
    start = time.perf_counter()

    def client(position: int) -> None:
        mine = []
        for i in range(position, len(stream), num_clients):
            scheduled = start + offsets[i]
            now = time.perf_counter()
            if now < scheduled:
                time.sleep(scheduled - now)
            frontend.query(stream[i])
            mine.append(time.perf_counter() - scheduled)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(t,)) for t in range(num_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies


def bench_open_loop(
    engine: QueryEngine, stream: list[Query], serialized_qps: float
) -> dict:
    rate = serialized_qps * OVERLOAD_FACTOR
    offsets = arrival_offsets(len(stream), rate)
    results: dict = {
        "num_queries": len(stream),
        "num_clients": NUM_CLIENTS,
        "offered_load_qps": round(rate, 1),
        "overload_factor_vs_serialized": OVERLOAD_FACTOR,
    }

    results["serialized"] = percentile_summary(
        open_loop_serialized(engine, stream, offsets)
    )
    for label, cache in (("batched", False), ("batched_cached", True)):
        with ServingFrontend(engine, _no_close(serving_config(cache))) as frontend:
            latencies = open_loop_concurrent(frontend, stream, offsets, NUM_CLIENTS)
            results[label] = percentile_summary(latencies)
            results[label]["batching"] = frontend.batcher.stats.as_dict()
            if frontend.cache is not None:
                results[label]["cache"] = frontend.cache.stats.as_dict()
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI scale; exit 1 if concurrent micro-batched serving "
        "fails to beat serialized per-query serving",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_serving.json at the repo root "
        "in full mode, no file in smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        num_rows, num_templates, num_queries, open_loop_queries = 30_000, 24, 2_048, 768
    else:
        num_rows, num_templates, num_queries, open_loop_queries = 120_000, 48, 8_192, 4_096

    templates, stream = make_skewed_stream(num_templates, num_queries)
    engine = build_engine(num_rows, templates)

    closed = bench_closed_loop(engine, stream)
    open_loop = bench_open_loop(
        engine, stream[:open_loop_queries], closed["serialized"]["queries_per_second"]
    )

    report = {
        "benchmark": "concurrent serving front-end latency + throughput",
        "mode": "smoke" if args.smoke else "full",
        "num_rows": num_rows,
        "num_templates": num_templates,
        "closed_loop_throughput": closed,
        "open_loop_latency": open_loop,
    }
    print(json.dumps(report, indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_serving.json"
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}", file=sys.stderr)

    if args.smoke and closed["batched_vs_serialized"] < 1.0:
        print(
            "SMOKE FAILURE: concurrent micro-batched serving regressed below "
            f"serialized per-query serving "
            f"({closed['batched_vs_serialized']}x < 1.0x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
