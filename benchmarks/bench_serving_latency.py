"""Concurrent serving front-end latency + throughput tracker (thin wrapper).

The measurement body lives in :mod:`repro.bench.trackers` (tracker
``serving``) and the scales/seeds in
``benchmarks/configs/tracker_serving.json``; this script only preserves the
historical entry point.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py           # full
    PYTHONPATH=src python benchmarks/bench_serving_latency.py --smoke   # CI

The full mode writes ``BENCH_serving.json`` at the repository root (the smoke
run only when ``--output`` is passed explicitly).  The smoke mode exits
non-zero when concurrent micro-batched serving (cache off) regresses below
serialized per-query serving.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.trackers import tracker_main

CONFIG = REPO_ROOT / "benchmarks" / "configs" / "tracker_serving.json"


def main(argv: list[str] | None = None) -> int:
    return tracker_main(CONFIG, argv, default_output_root=REPO_ROOT)


if __name__ == "__main__":
    raise SystemExit(main())
