"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at a reduced
scale.  Scale is controlled by two environment variables:

* ``REPRO_BENCH_ROWS`` — rows per dataset (default 40 000 here),
* ``REPRO_BENCH_QUERIES`` — queries per query type (default 25).

Raise them to run closer to the paper's setting; the harness and experiment
drivers are scale-agnostic.
"""

from __future__ import annotations

import os

import pytest

# Keep the default benchmark scale laptop-friendly unless overridden.
os.environ.setdefault("REPRO_BENCH_ROWS", "40000")
os.environ.setdefault("REPRO_BENCH_QUERIES", "25")


@pytest.fixture(scope="session")
def bench_rows() -> int:
    """Rows per dataset used by the benchmarks."""
    return int(os.environ["REPRO_BENCH_ROWS"])


@pytest.fixture(scope="session")
def bench_queries() -> int:
    """Queries per query type used by the benchmarks."""
    return int(os.environ["REPRO_BENCH_QUERIES"])


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are heavyweight (they build several indexes), so a single
    round is measured instead of pytest-benchmark's default auto-calibration.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
