"""Ablation for the §8 "Data and Workload Shift" extension (incremental reopt).

After the TPC-H workload shift of Fig. 9a, compares three adaptation
strategies: doing nothing, re-optimizing only the most-shifted Grid Tree
regions (this repository's incremental extension), and the paper's full
re-optimization.  Incremental adaptation should recover a large share of the
scan-work reduction at a fraction of the full re-optimization time.
"""

from benchmarks.conftest import run_once
from repro.bench.extensions import experiment_incremental_reopt


def test_ablation_incremental_reoptimization(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_incremental_reopt,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
    )
    print()
    print(result)
    none = result.data["none"]["avg points scanned (shifted)"]
    incremental = result.data["incremental"]["avg points scanned (shifted)"]
    full_seconds = result.data["full"]["adaptation (s)"]
    incremental_seconds = result.data["incremental"]["adaptation (s)"]
    # Incremental adaptation must be cheaper than a full rebuild and must not
    # make the shifted workload slower than doing nothing at all.
    assert incremental_seconds < full_seconds
    assert incremental <= none * 1.05
