"""Fig. 9: adaptability to workload shift (9a) and index creation time (9b).

9a: after the TPC-H workload is replaced by five new query types, performance
on the stale layout degrades; a single re-optimization restores it (the paper
reports the whole re-optimization + re-organization finishing within ~4
minutes for 300M rows — here it is seconds at reduced scale).

9b: per-index build time split into data sorting (paid by everyone) and
layout optimization (paid only by the learned indexes).

The experiment drivers come from ``benchmarks/configs/fig9a_adaptability.json``
and ``benchmarks/configs/fig9b_creation_time.json``; only the assertions live
here.
"""

from pathlib import Path

from benchmarks.conftest import run_once
from repro.bench.cli import EXPERIMENTS
from repro.bench.scenario import load_config

_CONFIGS = Path(__file__).resolve().parent / "configs"
CONFIG_9A = load_config(_CONFIGS / "fig9a_adaptability.json")
CONFIG_9B = load_config(_CONFIGS / "fig9b_creation_time.json")


def test_fig9a_workload_shift(benchmark, bench_rows, bench_queries):
    driver, _ = EXPERIMENTS[CONFIG_9A.experiment]
    result = run_once(
        benchmark,
        driver,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        **CONFIG_9A.params,
    )
    print()
    print(result)
    assert result.data["before"].correct and result.data["after"].correct
    # Re-optimizing for the new workload must restore (or improve) the amount
    # of work per query relative to the stale layout.
    assert (
        result.data["after"].avg_points_scanned
        <= result.data["degraded_avg_scanned"] * 1.05
    )
    assert result.data["reoptimize_seconds"] > 0


def test_fig9b_index_creation_time(benchmark, bench_rows, bench_queries):
    driver, _ = EXPERIMENTS[CONFIG_9B.experiment]
    result = run_once(
        benchmark,
        driver,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        **CONFIG_9B.params,
    )
    print()
    print(result)
    reports = result.data
    # Non-learned indexes pay no optimization time; learned indexes do.
    assert reports["kd-tree"].optimize_seconds < reports["tsunami"].optimize_seconds
    assert reports["flood"].optimize_seconds > 0
    assert reports["tsunami"].total_seconds > 0
