"""Ablation for the §8 "Complex Correlations" extension (outlier buffers).

On a tightly correlated column pair with a handful of extreme outliers, a
plain functional mapping's error bounds blow up and every query over the
mapped dimension degenerates towards a full scan.  Buffering the outliers
restores the mapping's usefulness; this benchmark reports the scan work of
both variants and of giving up on the mapping entirely.
"""

from benchmarks.conftest import run_once
from repro.bench.extensions import experiment_outlier_mappings


def test_ablation_outlier_mappings(benchmark, bench_rows):
    result = run_once(
        benchmark,
        experiment_outlier_mappings,
        num_rows=bench_rows,
        num_queries=60,
    )
    print()
    print(result)
    plain = result.data["functional mapping (plain)"]["scanned"]
    buffered = result.data["functional mapping (outlier buffer)"]["scanned"]
    # The outlier buffer must substantially reduce the scan work of the
    # polluted mapping (the whole point of the §8 extension).
    assert buffered < plain * 0.5
