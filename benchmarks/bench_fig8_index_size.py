"""Fig. 8: index size comparison.

The paper reports Tsunami using up to 8x less memory than Flood and 7-170x
less than the best non-learned index.  At reduced scale the lookup tables no
longer dominate the per-region model constants, so the check here is the
weaker shape that both learned indexes stay far smaller than the raw data and
within a small factor of each other; the absolute sizes per index are printed
for EXPERIMENTS.md.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import experiment_overall
from repro.bench.report import format_table


def test_fig8_index_sizes(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_overall,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        datasets=("tpch", "taxi", "perfmon", "stocks"),
    )
    rows = []
    for dataset, measurements in result.data.items():
        data_bytes = None
        for measurement in measurements:
            rows.append(
                {
                    "dataset": dataset,
                    "index": measurement.index_name,
                    "index size (KiB)": round(measurement.index_size_bytes / 1024, 1),
                }
            )
        by_name = {m.index_name: m for m in measurements}
        # Learned index structures must be a small fraction of the data itself.
        data_bytes = by_name["tsunami"].num_rows * 8 * 7
        assert by_name["tsunami"].index_size_bytes < 0.25 * data_bytes
        assert by_name["flood"].index_size_bytes < 0.25 * data_bytes
    print()
    print(format_table(rows))
