"""Update-path throughput tracker for the delta-buffered serving pipeline.

This benchmark guards the perf trajectory of the updatable serving path:

1. **Insert throughput** — rows/sec of the vectorized columnar
   ``insert_many`` vs a per-row ``insert`` loop into the same
   :class:`DeltaBufferedIndex` (the acceptance bar is >= 10x at full scale).
2. **Query throughput with pending inserts** — queries/sec of a zipf-skewed
   stream served through ``QueryEngine`` over a delta index holding pending
   inserts, unbatched vs batched, against the read-only index as the
   reference ceiling.
3. **Merge cost** — folding the pending buffer into the main index
   (rows/sec merged and the rebuild seconds).
4. **Lifecycle loop** — a drifting stream served through
   :class:`LifecycleManager`, recording its report (windows observed, drifts,
   merges, incremental re-optimizations).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_update_throughput.py           # full
    PYTHONPATH=src python benchmarks/bench_update_throughput.py --smoke   # CI

The full mode writes ``BENCH_updates.json`` at the repository root (the smoke
run only when ``--output`` is passed explicitly).  The smoke mode exits
non-zero if batched delta-path queries regress below the unbatched path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.delta import DeltaBufferedIndex
from repro.core.lifecycle import LifecycleConfig, LifecycleManager
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table

BATCH_SIZE = 256


def make_dataset(num_rows: int, seed: int = 23) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100_000, num_rows)
    y = x * 3 + rng.integers(-500, 501, num_rows)
    z = rng.integers(0, 5_000, num_rows)
    return Table.from_arrays("updates", {"x": x, "y": y, "z": z})


def make_insert_rows(count: int, seed: int = 24) -> list[dict]:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100_000, count)
    y = x * 3 + rng.integers(-500, 501, count)
    z = rng.integers(0, 5_000, count)
    return [
        {"x": int(xi), "y": int(yi), "z": int(zi)}
        for xi, yi, zi in zip(x, y, z)
    ]


def make_skewed_stream(
    num_templates: int, num_queries: int, seed: int = 25
) -> tuple[Workload, list[Query]]:
    """Template pool + zipf-repeated serving stream (the PR 2 batching regime)."""
    rng = np.random.default_rng(seed)
    templates = []
    for _ in range(num_templates):
        x_low = int(rng.integers(0, 90_000))
        templates.append(
            Query.from_ranges(
                {
                    "x": (x_low, x_low + int(rng.integers(500, 5_000))),
                    "z": (0, int(rng.integers(500, 4_000))),
                }
            )
        )
    draws = rng.zipf(1.2, size=num_queries) - 1
    stream = [templates[int(d) % num_templates] for d in draws]
    return Workload(templates, name="templates"), stream


def tsunami_factory(optimizer_iterations: int = 2):
    return lambda: TsunamiIndex(TsunamiConfig(optimizer_iterations=optimizer_iterations))


def bench_inserts(num_rows: int, num_inserts: int) -> dict:
    """Vectorized insert_many vs a per-row insert loop (no merges in between)."""
    rows = make_insert_rows(num_inserts)
    results: dict = {"num_rows": num_rows, "num_inserts": num_inserts}

    for mode in ("per_row", "vectorized"):
        index = DeltaBufferedIndex(
            tsunami_factory(1), merge_threshold=10 * num_inserts
        )
        index.build(make_dataset(num_rows), None)
        start = time.perf_counter()
        if mode == "per_row":
            for row in rows:
                index.insert(row)
        else:
            index.insert_many(rows)
        elapsed = time.perf_counter() - start
        assert index.num_pending == num_inserts
        results[mode] = {
            "seconds_total": round(elapsed, 6),
            "rows_per_second": round(num_inserts / elapsed, 1),
        }
    results["speedup"] = round(
        results["vectorized"]["rows_per_second"] / results["per_row"]["rows_per_second"], 2
    )
    return results


def bench_queries_with_pending(
    num_rows: int, num_inserts: int, num_templates: int, num_queries: int
) -> tuple[dict, DeltaBufferedIndex]:
    """Serving throughput with a hot buffer: unbatched vs batched vs read-only.

    Returns the result dict plus the still-unmerged index so ``bench_merge``
    can measure folding that same buffer in.
    """
    templates, stream = make_skewed_stream(num_templates, num_queries)

    read_only = TsunamiIndex(TsunamiConfig(optimizer_iterations=2))
    read_only.build(make_dataset(num_rows), templates)
    read_only_engine = QueryEngine(index=read_only)

    delta = DeltaBufferedIndex(tsunami_factory(2), merge_threshold=10 * num_inserts)
    delta.build(make_dataset(num_rows), templates)
    delta.insert_many(make_insert_rows(num_inserts))
    delta_engine = QueryEngine(index=delta)

    results: dict = {
        "num_rows": num_rows,
        "pending_inserts": delta.num_pending,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
    }

    def timed(run) -> tuple[float, list]:
        start = time.perf_counter()
        outcomes = run()
        return time.perf_counter() - start, outcomes

    # Warm both serving paths (plan caches persist across batches in a real
    # server) so the read-only ceiling and the delta paths compare fairly.
    warmup = stream[: min(BATCH_SIZE, len(stream))]
    read_only_engine.run_batch(warmup, batch_size=BATCH_SIZE)
    delta_engine.run_batch(warmup, batch_size=BATCH_SIZE)

    seconds, read_only_results = timed(
        lambda: read_only_engine.run_batch(stream, batch_size=BATCH_SIZE)
    )
    results["read_only_batched"] = {
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
    }

    seconds, unbatched_results = timed(lambda: [delta_engine.run(q) for q in stream])
    results["delta_unbatched"] = {
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
    }

    seconds, batched_results = timed(
        lambda: delta_engine.run_batch(stream, batch_size=BATCH_SIZE)
    )
    results["delta_batched"] = {
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
    }

    for single, batched in zip(unbatched_results, batched_results):
        assert single.value == batched.value, "batched delta path diverged"

    results["batch_speedup"] = round(
        results["delta_batched"]["queries_per_second"]
        / results["delta_unbatched"]["queries_per_second"],
        2,
    )
    results["delta_batched_vs_read_only"] = round(
        results["delta_batched"]["queries_per_second"]
        / results["read_only_batched"]["queries_per_second"],
        3,
    )
    return results, delta


def bench_merge(delta: DeltaBufferedIndex) -> dict:
    """Cost of folding the pending buffer into the main index."""
    pending = delta.num_pending
    start = time.perf_counter()
    report = delta.merge()
    elapsed = time.perf_counter() - start
    if report is None:
        return {"rows_merged": 0}
    return {
        "rows_merged": report.rows_merged,
        "rebuild_seconds": round(report.rebuild_seconds, 4),
        "merge_seconds_total": round(elapsed, 4),
        "rows_per_second": round(pending / elapsed, 1),
        "total_rows_after": report.total_rows,
    }


def bench_lifecycle(num_rows: int, num_queries: int) -> dict:
    """A drifting stream served through the lifecycle loop, report recorded."""
    rng = np.random.default_rng(29)
    templates, stream = make_skewed_stream(16, num_queries // 2)
    index = DeltaBufferedIndex(tsunami_factory(1), merge_threshold=10 * num_rows)
    index.build(make_dataset(num_rows), templates)
    manager = LifecycleManager(
        index, LifecycleConfig(observe_window=128, merge_pressure=0.05)
    )

    # Phase 1: the fitted workload. Phase 2: inserts plus a drifted workload
    # (novel wide single-dimension scans) that should trip the loop.
    drifted = [
        Query.from_ranges(
            {"y": (int(low := rng.integers(0, 60_000)), int(low) + 180_000)}
        )
        for _ in range(num_queries - len(stream))
    ]
    start = time.perf_counter()
    manager.run_batch(stream)
    manager.insert_many(make_insert_rows(max(num_rows // 10, 64), seed=30))
    manager.run_batch(drifted)
    elapsed = time.perf_counter() - start
    report = manager.report().as_dict()
    report["events"] = report["events"][:20]  # keep the JSON bounded
    return {
        "num_rows": num_rows,
        "num_queries": num_queries,
        "seconds_total": round(elapsed, 4),
        "report": report,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI scale; exit 1 if the batched delta path is slower "
        "than the unbatched path",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_updates.json at the repo root "
        "in full mode, no file in smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        inserts = bench_inserts(num_rows=20_000, num_inserts=20_000)
        queries, delta = bench_queries_with_pending(
            num_rows=20_000, num_inserts=2_000, num_templates=24, num_queries=1024
        )
        merge = bench_merge(delta)
        lifecycle = bench_lifecycle(num_rows=10_000, num_queries=512)
    else:
        inserts = bench_inserts(num_rows=80_000, num_inserts=100_000)
        queries, delta = bench_queries_with_pending(
            num_rows=80_000, num_inserts=8_000, num_templates=48, num_queries=4096
        )
        merge = bench_merge(delta)
        lifecycle = bench_lifecycle(num_rows=40_000, num_queries=2048)

    report = {
        "benchmark": "updatable serving path (delta buffer) throughput",
        "mode": "smoke" if args.smoke else "full",
        "inserts": inserts,
        "queries_with_pending_inserts": queries,
        "merge": merge,
        "lifecycle": lifecycle,
    }
    print(json.dumps(report, indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_updates.json"
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}", file=sys.stderr)

    if args.smoke and queries["batch_speedup"] < 1.0:
        print(
            f"SMOKE FAILURE: batched delta-path queries are slower than the "
            f"unbatched path (speedup {queries['batch_speedup']}x < 1.0x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
