"""Table 4: index statistics after optimization.

Regenerates the Grid Tree shape (nodes, depth, regions), per-region point
spreads, the average number of functional mappings / conditional CDFs per
region, and Tsunami's vs Flood's total grid cell counts.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import experiment_table4


def test_table4_index_statistics(benchmark, bench_rows, bench_queries):
    result = run_once(
        benchmark,
        experiment_table4,
        num_rows=bench_rows,
        queries_per_type=bench_queries,
        datasets=("tpch", "taxi", "perfmon", "stocks"),
    )
    print()
    print(result)
    for name, info in result.data.items():
        stats = info["tsunami"]
        # The Grid Tree must stay lightweight (the paper reports depth <= 4
        # and a few dozen regions).
        assert stats["grid_tree_depth"] <= 6
        assert 1 <= stats["num_leaf_regions"] <= 96
        assert stats["min_points_per_region"] <= stats["max_points_per_region"]
        assert info["flood_cells"] >= 1
