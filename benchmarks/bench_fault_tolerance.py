"""Fault-tolerance tracker: serving under a deterministic fault schedule (thin wrapper).

The three-phase (baseline → faulted → recovered) measurement body lives in
:mod:`repro.bench.trackers` (tracker ``faults``) and the scales/seeds in
``benchmarks/configs/tracker_faults.json``; this script only preserves the
historical entry point.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py           # full
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke   # CI

The full mode writes ``BENCH_faults.json`` at the repository root (the smoke
run only when ``--output`` is passed explicitly).  The smoke mode exits
non-zero when the faulted phase fails to serve every query, when recovered
values diverge from baseline, or when recovered throughput falls below the
recovery floor.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.trackers import tracker_main

CONFIG = REPO_ROOT / "benchmarks" / "configs" / "tracker_faults.json"


def main(argv: list[str] | None = None) -> int:
    return tracker_main(CONFIG, argv, default_output_root=REPO_ROOT)


if __name__ == "__main__":
    raise SystemExit(main())
