"""Fault-tolerance benchmark: serving under a deterministic fault schedule.

Robustness (PR 7) promises that the sharded serving path degrades gracefully
under faults and recovers to baseline the moment they clear.  This benchmark
measures exactly that, in three phases over one sharded index guarded by a
``degraded`` :class:`~repro.common.resilience.FaultPolicy` (per-shard
timeouts, one retry with seeded jittered backoff, per-shard circuit
breakers):

1. **baseline** — a zipf-skewed batched stream with no faults installed;
   throughput and per-batch latency are the reference.
2. **faulted** — the same stream under a seeded
   :class:`~repro.common.faults.FaultPlan` injecting transient errors and
   delays at the ``shard.execute`` site.  Serving must survive: every batch
   returns (partial answers are allowed and accounted), and the fault
   counters report what the defenses absorbed.
3. **recovered** — the same stream again with the plan uninstalled and
   breaker cooldowns elapsed.  Values must be bit-identical to the baseline
   phase, and throughput must recover.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py           # full
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke   # CI

The full mode writes ``BENCH_faults.json`` at the repository root (the smoke
run only when ``--output`` is passed explicitly).  The smoke mode exits
non-zero when the faulted phase fails to serve every query, when recovered
values diverge from baseline, or when recovered throughput falls below
``RECOVERY_FLOOR`` of baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from functools import partial
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.common import faults
from repro.common.faults import FaultPlan, FaultSpec
from repro.common.resilience import FaultPolicy, RetryPolicy
from repro.core.sharding import ShardedIndex, scaled_tsunami_config
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table

BATCH_SIZE = 256
NUM_SHARDS = 8
DOMAIN = 100_000

#: Smoke gate: recovered throughput must be at least this fraction of baseline.
RECOVERY_FLOOR = 0.6


def make_dataset(num_rows: int, seed: int = 43) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, DOMAIN, num_rows)
    y = x * 3 + rng.integers(-500, 501, num_rows)
    z = rng.integers(0, 5_000, num_rows)
    return Table.from_arrays("faulty", {"x": x, "y": y, "z": z})


def make_skewed_stream(
    num_templates: int, num_queries: int, seed: int = 44
) -> tuple[Workload, list[Query]]:
    rng = np.random.default_rng(seed)
    templates = []
    for _ in range(num_templates):
        x_low = int(rng.integers(0, DOMAIN - 6_000))
        templates.append(
            Query.from_ranges(
                {
                    "x": (x_low, x_low + int(rng.integers(1_000, 5_000))),
                    "z": (0, int(rng.integers(1_000, 4_500))),
                }
            )
        )
    draws = rng.zipf(1.2, size=num_queries) - 1
    stream = [templates[int(d) % num_templates] for d in draws]
    return Workload(templates, name="templates"), stream


def shard_factory(optimizer_iterations: int = 1):
    config = scaled_tsunami_config(
        NUM_SHARDS, TsunamiConfig(optimizer_iterations=optimizer_iterations)
    )
    return partial(TsunamiIndex, config)


def fault_schedule(seed: int) -> FaultPlan:
    """Transient errors plus injected delays at the shard-execution site.

    Probabilities are drawn from the plan's seeded RNG, so the same seed over
    the same batch sequence replays the identical schedule.
    """
    return FaultPlan(
        [
            FaultSpec(site="shard.execute", kind="error", probability=0.15),
            FaultSpec(
                site="shard.execute", kind="delay", probability=0.10, delay_seconds=0.003
            ),
        ],
        seed=seed,
    )


def serving_policy() -> FaultPolicy:
    return FaultPolicy(
        shard_timeout_seconds=5.0,
        retry=RetryPolicy(max_retries=1, backoff_seconds=0.001, seed=7),
        breaker_failure_threshold=3,
        breaker_cooldown_seconds=0.05,
        degradation="degraded",
    )


def run_phase(index: ShardedIndex, stream: list[Query]) -> dict:
    """Serve ``stream`` in batches; throughput, latency, and the raw values."""
    batch_seconds: list[float] = []
    values: list[float | None] = []
    before = dict(index.fault_stats.as_dict())
    start = time.perf_counter()
    for offset in range(0, len(stream), BATCH_SIZE):
        batch = stream[offset : offset + BATCH_SIZE]
        batch_start = time.perf_counter()
        results = index.execute_batch(batch)
        batch_seconds.append(time.perf_counter() - batch_start)
        values.extend(result.value for result in results)
    seconds = time.perf_counter() - start
    after = index.fault_stats.as_dict()
    latencies = sorted(batch_seconds)

    def percentile(fraction: float) -> float:
        return latencies[min(int(len(latencies) * fraction), len(latencies) - 1)]

    return {
        "queries": len(stream),
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
        "batch_latency_ms": {
            "p50": round(percentile(0.50) * 1e3, 3),
            "p95": round(percentile(0.95) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3),
        },
        "fault_stats_delta": {
            key: after[key] - before[key] for key in after
        },
        "values": values,
    }


def bench_fault_tolerance(
    num_rows: int, num_templates: int, num_queries: int, seed: int
) -> tuple[dict, list[str]]:
    """The three-phase chaos run; returns the report and any gate failures."""
    templates, stream = make_skewed_stream(num_templates, num_queries)
    index = ShardedIndex(
        shard_factory(),
        num_shards=NUM_SHARDS,
        shard_dimension="x",
        parallelism=NUM_SHARDS,
        fault_policy=serving_policy(),
    )
    index.build(make_dataset(num_rows), templates)

    failures: list[str] = []
    try:
        # Warm plan caches so every phase measures steady state.
        index.execute_batch(stream[: min(BATCH_SIZE, len(stream))])

        baseline = run_phase(index, stream)
        if baseline["fault_stats_delta"]["partial_serves"]:
            failures.append("baseline phase reported partial serves without faults")

        plan = fault_schedule(seed)
        with faults.active(plan):
            faulted = run_phase(index, stream)
        faulted["injected_faults"] = len(plan.injections)
        faulted["injected_errors"] = sum(
            1 for injection in plan.injections if injection.kind == "error"
        )
        faulted["injected_delays"] = sum(
            1 for injection in plan.injections if injection.kind == "delay"
        )
        if faulted["queries"] != len(stream):
            failures.append("faulted phase dropped queries instead of degrading")

        # Let every opened breaker's cooldown elapse so the recovered phase
        # starts from half-open probes, exactly like a real incident ending.
        time.sleep(serving_policy().breaker_cooldown_seconds * 2)
        recovered = run_phase(index, stream)
    finally:
        index.close()

    mismatched = sum(
        1 for a, b in zip(recovered["values"], baseline["values"]) if a != b
    )
    if mismatched:
        failures.append(
            f"recovered values diverged from baseline for {mismatched} queries"
        )
    if recovered["fault_stats_delta"]["shard_failures"]:
        failures.append("recovered phase still recorded shard failures")

    recovery_ratio = round(
        recovered["queries_per_second"] / baseline["queries_per_second"], 3
    )
    if recovery_ratio < RECOVERY_FLOOR:
        failures.append(
            f"recovered throughput is {recovery_ratio}x of baseline "
            f"(floor {RECOVERY_FLOOR}x)"
        )

    for phase in (baseline, faulted, recovered):
        del phase["values"]  # raw values are compared, not reported

    report = {
        "num_rows": num_rows,
        "num_shards": NUM_SHARDS,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
        "fault_seed": seed,
        "policy": {
            "shard_timeout_seconds": 5.0,
            "max_retries": 1,
            "breaker_failure_threshold": 3,
            "breaker_cooldown_seconds": 0.05,
            "degradation": "degraded",
        },
        "baseline": baseline,
        "faulted": faulted,
        "recovered": recovered,
        "recovery_ratio": recovery_ratio,
        "recovered_bit_identical": mismatched == 0,
    }
    return report, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI scale; exit 1 when serving drops queries under faults, "
        "recovered values diverge, or recovered throughput falls below "
        f"{RECOVERY_FLOOR}x baseline",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="fault-schedule seed (default: 11)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_faults.json at the repo root "
        "in full mode, no file in smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report, failures = bench_fault_tolerance(
            num_rows=20_000, num_templates=24, num_queries=1_024, seed=args.seed
        )
    else:
        report, failures = bench_fault_tolerance(
            num_rows=80_000, num_templates=48, num_queries=4_096, seed=args.seed
        )

    report["benchmark"] = "fault-tolerant serving"
    report["mode"] = "smoke" if args.smoke else "full"
    print(json.dumps(report, indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_faults.json"
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}", file=sys.stderr)

    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if (args.smoke and failures) else 0


if __name__ == "__main__":
    raise SystemExit(main())
