"""Query-planning and batched-execution throughput tracker.

This benchmark guards the perf trajectory of the serving path introduced with
the vectorized planner and the batched execution pipeline:

1. **Planning microbenchmark** — plans/sec of the vectorized planner vs the
   reference recursive planner on a 64x64x16-cell Augmented Grid with
   selective queries (the regime where per-cell Python work dominated).
2. **Execution throughput** — end-to-end queries/sec of a built Tsunami index
   on a skewed (zipf-repeated) workload, for every combination of
   ``planner in {reference, vectorized}`` and ``batch in {1, 256}``, together
   with the machine-independent scan-work counters and plan-cache hit rate.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py           # full
    PYTHONPATH=src python benchmarks/bench_query_throughput.py --smoke   # CI

Both modes write ``BENCH_throughput.json`` at the repository root (the smoke
run only when ``--output`` is passed explicitly).  The smoke mode exits
non-zero if the vectorized planner is slower than the reference planner, so
CI catches planning regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
from repro.core.skeleton import Skeleton
from repro.core.tsunami import TsunamiIndex, make_tsunami
from repro.query.engine import QueryEngine
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import ScanStats
from repro.storage.table import Table

PLANNING_GRID = {"x": 64, "y": 64, "z": 16}
BATCH_SIZE = 256


def make_planning_grid(num_rows: int, seed: int = 11) -> tuple[Table, AugmentedGrid]:
    rng = np.random.default_rng(seed)
    table = Table.from_arrays(
        "plan_bench",
        {
            "x": rng.integers(0, 1_000_000, num_rows),
            "y": rng.integers(0, 1_000_000, num_rows),
            "z": rng.integers(0, 1_000_000, num_rows),
        },
    )
    config = AugmentedGridConfig(
        skeleton=Skeleton.all_independent(["x", "y", "z"]), partitions=dict(PLANNING_GRID)
    )
    grid = AugmentedGrid(config)
    table.reorder(grid.fit(table))
    return table, grid


def selective_queries(num_queries: int, seed: int = 12) -> list[Query]:
    """Selective 2-3 dimensional range queries over the planning grid's domain."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        x_low = int(rng.integers(0, 800_000))
        y_low = int(rng.integers(0, 600_000))
        ranges = {
            "x": (x_low, x_low + int(rng.integers(50_000, 300_000))),
            "y": (y_low, y_low + int(rng.integers(100_000, 400_000))),
        }
        if rng.random() < 0.5:
            z_low = int(rng.integers(0, 700_000))
            ranges["z"] = (z_low, z_low + int(rng.integers(100_000, 300_000)))
        queries.append(Query.from_ranges(ranges))
    return queries


def bench_planning(num_rows: int, num_queries: int, repeats: int) -> dict:
    """Plans/sec of both planners on the 64x64x16 grid (no caching involved)."""
    _, grid = make_planning_grid(num_rows)
    queries = selective_queries(num_queries)
    results: dict = {
        "grid": list(PLANNING_GRID.values()),
        "num_rows": num_rows,
        "num_queries": num_queries,
    }
    for planner in ("reference", "vectorized"):
        grid.planner = planner
        for query in queries[: min(8, len(queries))]:  # warm-up
            grid.plan(query)
        best = float("inf")
        spans_total = 0
        for _ in range(repeats):
            start = time.perf_counter()
            spans_total = 0
            for query in queries:
                spans, _ = grid.plan(query)
                spans_total += len(spans)
            best = min(best, time.perf_counter() - start)
        results[planner] = {
            "seconds_total": round(best, 6),
            "plans_per_second": round(num_queries / best, 1),
            "avg_spans_per_query": round(spans_total / num_queries, 2),
        }
    results["speedup"] = round(
        results["vectorized"]["plans_per_second"]
        / results["reference"]["plans_per_second"],
        2,
    )
    return results


def make_skewed_dataset(num_rows: int, seed: int = 13) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100_000, num_rows)
    y = x * 3 + rng.integers(-500, 501, num_rows)
    z = rng.integers(0, 5_000, num_rows)
    return Table.from_arrays(
        "throughput", {"x": x, "y": y, "z": z}
    )


def make_skewed_workload(
    num_templates: int, num_queries: int, seed: int = 14
) -> tuple[Workload, list[Query]]:
    """A zipf-skewed stream over a pool of query templates (the paper's §4 regime).

    Returns the template pool (used to optimize the index) and the serving
    stream (templates repeated with zipf frequencies, hot templates dominant).
    """
    rng = np.random.default_rng(seed)
    templates = []
    for _ in range(num_templates):
        x_low = int(rng.integers(0, 90_000))
        templates.append(
            Query.from_ranges(
                {
                    "x": (x_low, x_low + int(rng.integers(500, 5_000))),
                    "z": (0, int(rng.integers(500, 4_000))),
                }
            )
        )
    draws = rng.zipf(1.2, size=num_queries) - 1
    stream = [templates[int(d) % num_templates] for d in draws]
    return Workload(templates, name="templates"), stream


def set_planner(index: TsunamiIndex, planner: str) -> None:
    """Flip every region grid's planner without rebuilding the layout."""
    for region in index._regions:
        if region.grid is not None:
            region.grid.planner = planner
            if region.grid.plan_cache is not None:
                region.grid.plan_cache.clear()


def bench_execution(num_rows: int, num_templates: int, num_queries: int) -> dict:
    table = make_skewed_dataset(num_rows)
    templates, stream = make_skewed_workload(num_templates, num_queries)
    index = make_tsunami(optimizer_iterations=2)
    index.build(table, templates)
    engine = QueryEngine(index=index)

    results: dict = {
        "num_rows": num_rows,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
    }
    for planner in ("reference", "vectorized"):
        set_planner(index, planner)
        planner_results = {}
        for batch in (1, BATCH_SIZE):
            set_planner(index, planner)  # clears the plan cache between runs
            total = ScanStats()
            start = time.perf_counter()
            if batch == 1:
                outcomes = [engine.run(query) for query in stream]
            else:
                outcomes = engine.run_batch(stream, batch_size=batch)
            elapsed = time.perf_counter() - start
            for outcome in outcomes:
                total.merge(outcome.stats)
            cache_stats = index.plan_cache_stats()
            planner_results[f"batch_{batch}"] = {
                "queries_per_second": round(len(stream) / elapsed, 1),
                "seconds_total": round(elapsed, 4),
                "points_scanned": total.points_scanned,
                "cell_ranges": total.cell_ranges,
                "rows_matched": total.rows_matched,
                "scan_work": total.scan_work,
                "plan_cache_hit_rate": round(cache_stats.hit_rate, 4),
            }
        planner_results["batch_speedup"] = round(
            planner_results[f"batch_{BATCH_SIZE}"]["queries_per_second"]
            / planner_results["batch_1"]["queries_per_second"],
            2,
        )
        results[planner] = planner_results
    results["planner_speedup_batch_1"] = round(
        results["vectorized"]["batch_1"]["queries_per_second"]
        / results["reference"]["batch_1"]["queries_per_second"],
        2,
    )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI scale; exit 1 if the vectorized planner is slower",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_throughput.json at the repo "
        "root in full mode, no file in smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        planning = bench_planning(num_rows=40_000, num_queries=60, repeats=2)
        execution = bench_execution(num_rows=20_000, num_templates=24, num_queries=1024)
    else:
        planning = bench_planning(num_rows=200_000, num_queries=200, repeats=3)
        execution = bench_execution(num_rows=80_000, num_templates=48, num_queries=4096)

    report = {
        "benchmark": "query planning + batched execution throughput",
        "mode": "smoke" if args.smoke else "full",
        "planning": planning,
        "execution": execution,
    }
    print(json.dumps(report, indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_throughput.json"
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}", file=sys.stderr)

    if args.smoke and planning["speedup"] < 1.0:
        print(
            f"SMOKE FAILURE: vectorized planner is slower than reference "
            f"(speedup {planning['speedup']}x < 1.0x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
