"""Sharded serving-layer throughput tracker (scale-out, PR 5).

This benchmark guards the perf trajectory of the sharded serving path:

1. **Batched throughput** — queries/sec of a zipf-skewed stream served
   through ``QueryEngine`` over one monolithic :class:`TsunamiIndex` vs a
   :class:`ShardedIndex` executing shards serially vs the same sharded index
   fanning shard batches out on a thread pool.  Every configuration must
   return bit-identical values.
2. **Bounding-box pruning** — how many shards the per-shard bounding boxes
   let each query template skip (the skewed workload is localized along the
   shard dimension, so most templates touch one shard).
3. **Updatable shards** — the same stream over delta-buffered shards holding
   pending inserts, still on the batched path.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_shard_throughput.py           # full
    PYTHONPATH=src python benchmarks/bench_shard_throughput.py --smoke   # CI

The full mode writes ``BENCH_shards.json`` at the repository root (the smoke
run only when ``--output`` is passed explicitly).  The smoke mode exits
non-zero if sharded batched throughput regresses below the single-index
baseline on the skewed workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from functools import partial
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.delta import DeltaBufferedIndex
from repro.core.sharding import ShardedIndex, scaled_tsunami_config
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table

BATCH_SIZE = 256
NUM_SHARDS = 8
DOMAIN = 100_000


def make_dataset(num_rows: int, seed: int = 33) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, DOMAIN, num_rows)
    y = x * 3 + rng.integers(-500, 501, num_rows)
    z = rng.integers(0, 5_000, num_rows)
    return Table.from_arrays("sharded", {"x": x, "y": y, "z": z})


def make_skewed_stream(
    num_templates: int, num_queries: int, seed: int = 34
) -> tuple[Workload, list[Query]]:
    """Templates localized along the shard dimension, zipf-repeated.

    Each template's x-window is far narrower than a shard's value range, so
    per-shard bounding boxes prune most shards — the regime the scale-out
    layer is built for.
    """
    rng = np.random.default_rng(seed)
    templates = []
    for _ in range(num_templates):
        x_low = int(rng.integers(0, DOMAIN - 6_000))
        templates.append(
            Query.from_ranges(
                {
                    "x": (x_low, x_low + int(rng.integers(1_000, 5_000))),
                    "z": (0, int(rng.integers(1_000, 4_500))),
                }
            )
        )
    draws = rng.zipf(1.2, size=num_queries) - 1
    stream = [templates[int(d) % num_templates] for d in draws]
    return Workload(templates, name="templates"), stream


def tsunami_factory(optimizer_iterations: int = 2):
    return partial(TsunamiIndex, TsunamiConfig(optimizer_iterations=optimizer_iterations))


def shard_factory(optimizer_iterations: int = 2):
    """Per-shard factory with the layout budget scaled to one shard's share."""
    config = scaled_tsunami_config(
        NUM_SHARDS, TsunamiConfig(optimizer_iterations=optimizer_iterations)
    )
    return partial(TsunamiIndex, config)


def timed(run) -> tuple[float, list]:
    start = time.perf_counter()
    outcomes = run()
    return time.perf_counter() - start, outcomes


def bench_batched_throughput(
    num_rows: int, num_templates: int, num_queries: int, parallelism: int
) -> dict:
    """Single index vs sharded-serial vs sharded-parallel on one skewed stream."""
    templates, stream = make_skewed_stream(num_templates, num_queries)

    single = tsunami_factory()()
    single.build(make_dataset(num_rows), templates)

    serial = ShardedIndex(shard_factory(), num_shards=NUM_SHARDS, shard_dimension="x")
    serial.build(make_dataset(num_rows), templates)

    parallel = ShardedIndex(
        shard_factory(), num_shards=NUM_SHARDS, shard_dimension="x", parallelism=parallelism
    )
    parallel.build(make_dataset(num_rows), templates)

    engines = {
        "single_batched": QueryEngine(index=single),
        "sharded_serial_batched": QueryEngine(index=serial),
        "sharded_parallel_batched": QueryEngine(index=parallel),
    }
    results: dict = {
        "num_rows": num_rows,
        "num_shards": NUM_SHARDS,
        "parallelism": parallelism,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
    }

    # Warm every serving path (plan caches persist across batches in a real
    # server) so the comparison is steady-state.
    warmup = stream[: min(BATCH_SIZE, len(stream))]
    for engine in engines.values():
        engine.run_batch(warmup, batch_size=BATCH_SIZE)

    values: dict[str, list] = {}
    for label, engine in engines.items():
        seconds, outcomes = timed(lambda e=engine: e.run_batch(stream, batch_size=BATCH_SIZE))
        values[label] = outcomes
        results[label] = {
            "queries_per_second": round(len(stream) / seconds, 1),
            "seconds_total": round(seconds, 4),
        }

    for label in ("sharded_serial_batched", "sharded_parallel_batched"):
        for reference, candidate in zip(values["single_batched"], values[label]):
            assert candidate.value == reference.value, f"{label} diverged from single index"

    single_qps = results["single_batched"]["queries_per_second"]
    results["sharded_serial_vs_single"] = round(
        results["sharded_serial_batched"]["queries_per_second"] / single_qps, 3
    )
    results["sharded_parallel_vs_single"] = round(
        results["sharded_parallel_batched"]["queries_per_second"] / single_qps, 3
    )
    return results


def bench_pruning(num_rows: int, num_templates: int) -> dict:
    """How many shards the per-shard bounding boxes skip per query template."""
    templates, _ = make_skewed_stream(num_templates, 1)
    sharded = ShardedIndex(shard_factory(), num_shards=NUM_SHARDS, shard_dimension="x")
    sharded.build(make_dataset(num_rows), templates)
    pruned = [sharded.shards_pruned(query) for query in templates]
    return {
        "num_rows": num_rows,
        "num_shards": NUM_SHARDS,
        "num_templates": num_templates,
        "avg_shards_pruned": round(float(np.mean(pruned)), 2),
        "min_shards_pruned": int(min(pruned)),
        "max_shards_pruned": int(max(pruned)),
        "avg_fraction_pruned": round(float(np.mean(pruned)) / NUM_SHARDS, 3),
    }


def bench_updatable_shards(
    num_rows: int, num_inserts: int, num_templates: int, num_queries: int, parallelism: int
) -> dict:
    """The batched path over delta-buffered shards holding pending inserts."""
    templates, stream = make_skewed_stream(num_templates, num_queries)
    factory = partial(
        DeltaBufferedIndex, shard_factory(), merge_threshold=10 * max(num_inserts, 1)
    )
    sharded = ShardedIndex(
        factory, num_shards=NUM_SHARDS, shard_dimension="x", parallelism=parallelism
    )
    sharded.build(make_dataset(num_rows), templates)

    rng = np.random.default_rng(35)
    rows = [
        {
            "x": int(x),
            "y": int(x) * 3 + int(rng.integers(-500, 501)),
            "z": int(rng.integers(0, 5_000)),
        }
        for x in rng.integers(0, DOMAIN, num_inserts)
    ]
    seconds, _ = timed(lambda: sharded.insert_many(rows))
    insert_rate = round(num_inserts / seconds, 1) if seconds else float("inf")

    engine = QueryEngine(index=sharded)
    engine.run_batch(stream[: min(BATCH_SIZE, len(stream))], batch_size=BATCH_SIZE)
    seconds, batched = timed(lambda: engine.run_batch(stream, batch_size=BATCH_SIZE))

    probe = list({q: None for q in stream})[:16]
    for query in probe:
        assert sharded.execute(query).value == batched[stream.index(query)].value

    return {
        "num_rows": num_rows,
        "pending_inserts": sharded.num_pending,
        "insert_rows_per_second": insert_rate,
        "batched": {
            "queries_per_second": round(len(stream) / seconds, 1),
            "seconds_total": round(seconds, 4),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI scale; exit 1 if sharded batched throughput regresses "
        "below the single-index baseline",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON output path (default: BENCH_shards.json at the repo root "
        "in full mode, no file in smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        throughput = bench_batched_throughput(
            num_rows=40_000, num_templates=24, num_queries=2_048, parallelism=NUM_SHARDS
        )
        pruning = bench_pruning(num_rows=20_000, num_templates=24)
        updatable = bench_updatable_shards(
            num_rows=20_000, num_inserts=2_000, num_templates=24,
            num_queries=512, parallelism=NUM_SHARDS,
        )
    else:
        throughput = bench_batched_throughput(
            num_rows=160_000, num_templates=48, num_queries=8_192, parallelism=NUM_SHARDS
        )
        pruning = bench_pruning(num_rows=80_000, num_templates=48)
        updatable = bench_updatable_shards(
            num_rows=80_000, num_inserts=8_000, num_templates=48,
            num_queries=2_048, parallelism=NUM_SHARDS,
        )

    report = {
        "benchmark": "sharded serving layer throughput",
        "mode": "smoke" if args.smoke else "full",
        "batched_throughput": throughput,
        "pruning": pruning,
        "updatable_shards": updatable,
    }
    print(json.dumps(report, indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_shards.json"
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}", file=sys.stderr)

    if args.smoke and throughput["sharded_parallel_vs_single"] < 1.0:
        print(
            "SMOKE FAILURE: sharded-parallel batched throughput regressed below "
            f"the single-index baseline "
            f"({throughput['sharded_parallel_vs_single']}x < 1.0x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
