"""Adaptive micro-batching admission queue.

The PR 2 batched pipeline (``run_batch`` → template dedup → one grid-tree
traversal per batch → shared scans) is ~4x faster per query than per-query
execution, but it only helps if someone *forms* batches.  A server receives
queries one at a time from many client threads; :class:`MicroBatcher` turns
those arrivals into batches by coalescing them inside a small window:

* **Flush on size.**  As soon as ``max_batch_size`` requests are pending, the
  dispatcher takes them — under heavy load the window never waits and the
  pipeline runs at full batch efficiency.
* **Flush on arrival pause.**  When ``idle_gap_seconds`` is set and no new
  request lands within that gap, the window flushes whatever is pending —
  the arrival stream paused, so waiting longer buys no batch growth, only
  latency.  This is what makes the window *adaptive*: while the dispatcher
  is busy, arrivals pile up and the next batch is taken whole (batches grow
  until service keeps up with arrivals); the moment arrivals pause, pending
  requests go out after one gap instead of the full window.
* **Flush on deadline.**  Regardless, the dispatcher waits at most
  ``max_delay_seconds`` past the *oldest* pending arrival — a hard bound on
  the latency any query pays for batching.

Whichever trigger fires first wins, so the effective window adapts to the
offered load.  Admission is bounded: once ``max_queue_depth`` requests are
queued, :meth:`put` rejects with a typed
:class:`~repro.common.errors.ServerOverloadedError` instead of queueing
unboundedly (backpressure keeps tail latency bounded under overload — the
alternative is every request slowly timing out).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.common.errors import ServerClosedError, ServerOverloadedError, ServingError


@dataclass
class BatcherStats:
    """Flush accounting for one :class:`MicroBatcher`."""

    items_admitted: int = 0
    items_rejected: int = 0
    flushes_on_size: int = 0
    flushes_on_idle: int = 0
    flushes_on_deadline: int = 0
    flushes_on_close: int = 0
    largest_batch: int = 0

    @property
    def batches(self) -> int:
        """Total batches handed to the dispatcher."""
        return (
            self.flushes_on_size
            + self.flushes_on_idle
            + self.flushes_on_deadline
            + self.flushes_on_close
        )

    @property
    def mean_batch_size(self) -> float:
        """Average items per flushed batch."""
        return self.items_admitted / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        """JSON-serializable summary for benchmark reports."""
        return {
            "items_admitted": self.items_admitted,
            "items_rejected": self.items_rejected,
            "batches": self.batches,
            "flushes_on_size": self.flushes_on_size,
            "flushes_on_idle": self.flushes_on_idle,
            "flushes_on_deadline": self.flushes_on_deadline,
            "flushes_on_close": self.flushes_on_close,
            "largest_batch": self.largest_batch,
            "mean_batch_size": round(self.mean_batch_size, 2),
        }


class MicroBatcher:
    """Coalesces concurrent arrivals into bounded, deadline-flushed batches.

    Producers call :meth:`put` from any number of threads; one (or more)
    dispatcher threads call :meth:`take`, which blocks until a batch is ready
    and returns ``None`` only after :meth:`close` once the queue has drained.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many items are pending.
    max_delay_seconds:
        Flush no later than this long after the oldest pending item arrived.
    max_queue_depth:
        Reject admissions (``ServerOverloadedError``) beyond this many queued
        items; items already taken by a dispatcher no longer count.
    idle_gap_seconds:
        When set, flush early if no new arrival lands within this gap — the
        stream paused, so the pending batch cannot grow and holding it only
        adds latency.  ``None`` disables the trigger (wait the full window).
    """

    def __init__(
        self,
        max_batch_size: int = 256,
        max_delay_seconds: float = 0.002,
        max_queue_depth: int = 2048,
        idle_gap_seconds: float | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ServingError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay_seconds < 0:
            raise ServingError(
                f"max_delay_seconds must be >= 0, got {max_delay_seconds}"
            )
        if max_queue_depth < 1:
            raise ServingError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if idle_gap_seconds is not None and idle_gap_seconds <= 0:
            raise ServingError(
                f"idle_gap_seconds must be > 0 or None, got {idle_gap_seconds}"
            )
        self.max_batch_size = max_batch_size
        self.max_delay_seconds = max_delay_seconds
        self.max_queue_depth = max_queue_depth
        self.idle_gap_seconds = idle_gap_seconds
        self.stats = BatcherStats()
        self._cond = threading.Condition()
        self._queue: deque[tuple[float, object]] = deque()
        self._closed = False

    @property
    def depth(self) -> int:
        """Items currently queued (admitted but not yet taken)."""
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._cond:
            return self._closed

    def put(self, item: object) -> None:
        """Admit ``item``, waking any dispatcher waiting on the window.

        Raises :class:`ServerClosedError` after :meth:`close` and
        :class:`ServerOverloadedError` when the queue is at capacity.
        """
        with self._cond:
            if self._closed:
                raise ServerClosedError("micro-batcher is closed")
            if len(self._queue) >= self.max_queue_depth:
                self.stats.items_rejected += 1
                raise ServerOverloadedError(
                    f"admission queue is full ({self.max_queue_depth} pending); "
                    "back off and retry"
                )
            self._queue.append((time.monotonic(), item))
            self.stats.items_admitted += 1
            # Wake dispatchers only when it changes what they would do: the
            # first arrival unblocks an empty-queue wait, and a full window
            # triggers flush-on-size.  Intermediate arrivals are picked up by
            # the bounded gap/deadline waits in take() — skipping the wakeup
            # per admission keeps the hot path cheap under load.
            depth = len(self._queue)
            if depth == 1 or depth >= self.max_batch_size:
                self._cond.notify_all()

    def take(self) -> list[object] | None:
        """Block until a batch is ready; ``None`` once closed and drained.

        A batch is ready when ``max_batch_size`` items are pending, when no
        new item arrived within ``idle_gap_seconds`` (if set), when the
        oldest pending item has waited ``max_delay_seconds``, or when the
        batcher is closed (remaining items are flushed in batch-size chunks).
        """
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None  # closed and drained
            idle_flush = False
            deadline = self._queue[0][0] + self.max_delay_seconds
            if self.idle_gap_seconds is not None:
                # Give every batch at least one gap of collection time, even
                # when items queued up during the previous execution and the
                # oldest is already past its window: clients released by that
                # execution resubmit within a gap, and folding them in is what
                # lets the batch grow to the full client count instead of
                # locking into alternating half-sized cohorts.  Worst-case
                # added latency is one gap on top of max_delay_seconds.
                deadline = max(deadline, time.monotonic() + self.idle_gap_seconds)
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if self.idle_gap_seconds is None:
                    self._cond.wait(timeout=remaining)
                    continue
                pending_before = len(self._queue)
                self._cond.wait(timeout=min(remaining, self.idle_gap_seconds))
                if len(self._queue) == pending_before and not self._closed:
                    idle_flush = True  # arrival stream paused: stop waiting
                    break
            count = min(len(self._queue), self.max_batch_size)
            batch = [self._queue.popleft()[1] for _ in range(count)]
            if self._closed:
                self.stats.flushes_on_close += 1
            elif count >= self.max_batch_size:
                self.stats.flushes_on_size += 1
            elif idle_flush:
                self.stats.flushes_on_idle += 1
            else:
                self.stats.flushes_on_deadline += 1
            self.stats.largest_batch = max(self.stats.largest_batch, count)
            return batch

    def drain(self) -> list[object]:
        """Remove and return every queued item without flush accounting.

        This is crash cleanup, not a batch: when a dispatcher exits
        abnormally, the front-end drains the queue so every admitted request
        can be completed exceptionally instead of blocking forever.
        """
        with self._cond:
            items = [item for _, item in self._queue]
            self._queue.clear()
            return items

    def close(self) -> None:
        """Stop admissions; queued items keep draining through :meth:`take`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
