"""The concurrent serving front-end: many clients, one batched pipeline.

Everything below the serving contract is a single-threaded library; the
ROADMAP's "heavy traffic from millions of users" needs the piece that turns
many concurrent clients into the batched calls the PR 2 pipeline is built
for.  :class:`ServingFrontend` is that piece:

* **Micro-batching.**  Client threads call :meth:`ServingFrontend.query`;
  arrivals are coalesced by a :class:`~repro.serve.batcher.MicroBatcher`
  (flush on batch-size, arrival pause, or deadline, whichever first — the
  window adapts to the offered load) and a single dispatcher
  thread drives them through the backend's ``run_batch`` — template dedup,
  one grid-tree traversal per batch, shared scans.  Bursty skewed traffic
  amortizes almost for free.
* **Result cache.**  A :class:`~repro.serve.cache.ResultCache` answers
  repeated templates without touching the engine.  It is invalidated on
  every write admitted through the front-end and on every ``merge`` /
  ``reoptimize`` event a :class:`~repro.core.lifecycle.LifecycleManager`
  backend reports (subscription wired automatically), so updatable indexes
  stay correct; results computed by a batch that *overlapped* such an event
  are returned to their clients but never cached (version check).
* **Backpressure.**  Admission is bounded; beyond ``max_queue_depth``
  pending requests, :meth:`query` rejects with a typed
  :class:`~repro.common.errors.ServerOverloadedError` instead of queueing
  unboundedly.

The backend is anything with ``run_batch(queries) -> list[QueryResult]``:
a :class:`~repro.query.engine.QueryEngine` (read-only or wrapping a
:class:`~repro.core.sharding.ShardedIndex` / delta index) or a
:class:`~repro.core.lifecycle.LifecycleManager` (which also observes served
queries for drift).  Writes (:meth:`insert` / :meth:`insert_many`) are
forwarded to the backend when it supports them and serialized against
in-flight batches, so a batch never executes against a half-applied write.

Concurrent serving through this front-end is bit-identical to sequential
uncached execution: batches preserve arrival order per request, the cache
only replays results computed by the same engine, and the differential tests
in ``tests/test_serve_frontend.py`` pin exactly that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.baselines.base import QueryResult
from repro.common.errors import ServerClosedError, ServingError
from repro.query.query import Query
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving front-end.

    Parameters
    ----------
    max_batch_size:
        Flush the micro-batch window as soon as this many requests pend.
    max_delay_seconds:
        Flush no later than this long after the oldest pending arrival; this
        is the worst-case latency a lone query pays for batching.
    idle_gap_seconds:
        Flush early when no new request arrives within this gap — the window
        cannot grow while the stream is paused, so holding the batch open
        only adds latency.  ``None`` always waits the full window.
    max_queue_depth:
        Bounded admission queue; requests beyond it are rejected with
        :class:`~repro.common.errors.ServerOverloadedError`.
    cache_entries:
        Capacity of the LRU result cache; ``0`` disables result caching.
    close_backend:
        Whether :meth:`ServingFrontend.close` also closes the backend (which
        in turn shuts down e.g. a sharded index's thread pool).
    """

    max_batch_size: int = 256
    max_delay_seconds: float = 0.002
    idle_gap_seconds: float | None = 0.00025
    max_queue_depth: int = 2048
    cache_entries: int = 4096
    close_backend: bool = True

    def __post_init__(self) -> None:
        if self.cache_entries < 0:
            raise ServingError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        # Window/queue bounds are validated by MicroBatcher at construction.


@dataclass
class ServingStats:
    """Running totals of everything the front-end has done."""

    queries_submitted: int = 0
    queries_served: int = 0
    cache_hits: int = 0
    rejections: int = 0
    write_batches: int = 0
    rows_inserted: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict:
        """JSON-serializable summary for benchmark reports."""
        return {
            "queries_submitted": self.queries_submitted,
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "rejections": self.rejections,
            "write_batches": self.write_batches,
            "rows_inserted": self.rows_inserted,
            "invalidations": self.invalidations,
        }


class _PendingQuery:
    """One admitted request: the query plus its completion rendezvous."""

    __slots__ = ("query", "done", "result", "error")

    def __init__(self, query: Query) -> None:
        self.query = query
        self.done = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None


class ServingFrontend:
    """Serves many concurrent clients through one micro-batched pipeline.

    Parameters
    ----------
    backend:
        Anything with ``run_batch(queries)``; a
        :class:`~repro.core.lifecycle.LifecycleManager` backend additionally
        gets its maintenance events wired into cache invalidation, and a
        backend with ``insert_many`` makes the front-end updatable.
    config:
        Micro-batching window, admission bound, and cache capacity.
    """

    def __init__(self, backend, config: ServingConfig | None = None) -> None:
        if not hasattr(backend, "run_batch"):
            raise ServingError(
                f"backend {type(backend).__name__!r} does not implement "
                "run_batch; wrap the index in a QueryEngine or LifecycleManager"
            )
        self.backend = backend
        self.config = config or ServingConfig()
        self.stats = ServingStats()
        self._batcher = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            max_delay_seconds=self.config.max_delay_seconds,
            max_queue_depth=self.config.max_queue_depth,
            idle_gap_seconds=self.config.idle_gap_seconds,
        )
        self._cache = (
            ResultCache(self.config.cache_entries)
            if self.config.cache_entries
            else None
        )
        # Serializes writes against in-flight batch executions, and guards the
        # cache-fill version check: a batch only caches its results if no
        # invalidation happened after it started executing.
        self._exec_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._version = 0
        self._closed = False
        self._subscribed = False
        if hasattr(backend, "subscribe"):
            backend.subscribe(self._on_lifecycle_event)
            self._subscribed = True
        self._dispatcher = threading.Thread(
            target=self._serve_loop, name="serving-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- client API --------------------------------------------------------------------

    def query(self, query: Query, timeout: float | None = None) -> QueryResult:
        """Answer ``query``, blocking until it is served.

        Safe to call from any number of threads.  Raises
        :class:`~repro.common.errors.ServerOverloadedError` when the
        admission queue is full, :class:`ServerClosedError` after
        :meth:`close`, and :class:`ServingError` on ``timeout`` (seconds).
        """
        self._require_open()
        self.stats.queries_submitted += 1
        if self._cache is not None:
            cached = self._cache.get(query)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        pending = _PendingQuery(query)
        try:
            self._batcher.put(pending)
        except ServingError:
            self.stats.rejections += 1
            raise
        if not pending.done.wait(timeout):
            raise ServingError(
                f"query was not served within {timeout} seconds"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def insert(self, row) -> None:
        """Insert one row through the backend, invalidating the result cache."""
        self.insert_many([row])

    def insert_many(self, rows) -> None:
        """Insert rows through the backend, invalidating the result cache.

        The write is serialized against in-flight batches, so no batch
        executes against a half-applied write, and every result cached before
        the write is dropped (pending delta-buffer rows are visible to
        queries immediately, so results go stale at insert time, not merge
        time).
        """
        rows = list(rows)
        self._require_open()
        insert = getattr(self.backend, "insert_many", None)
        if insert is None:
            raise ServingError(
                f"backend {type(self.backend).__name__!r} does not support "
                "inserts; serve an updatable index (DeltaBufferedIndex, "
                "updatable ShardedIndex, or a LifecycleManager)"
            )
        with self._exec_lock:
            insert(rows)
        self.stats.write_batches += 1
        self.stats.rows_inserted += len(rows)
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop every cached result and fence in-flight batches off the cache."""
        with self._state_lock:
            self._version += 1
            self.stats.invalidations += 1
        if self._cache is not None:
            self._cache.invalidate()

    @property
    def cache(self) -> ResultCache | None:
        """The result cache (``None`` when disabled by configuration)."""
        return self._cache

    @property
    def batcher(self) -> MicroBatcher:
        """The admission queue (live object; its stats feed the benchmarks)."""
        return self._batcher

    def describe(self) -> dict:
        """Operational statistics: serving, batching, and cache counters."""
        return {
            "serving": self.stats.as_dict(),
            "batching": self._batcher.stats.as_dict(),
            "cache": self._cache.stats.as_dict() if self._cache else None,
        }

    # -- dispatcher --------------------------------------------------------------------

    def _serve_loop(self) -> None:
        while True:
            batch = self._batcher.take()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: list) -> None:
        queries = [pending.query for pending in batch]
        with self._exec_lock:
            with self._state_lock:
                version = self._version
            try:
                results = self.backend.run_batch(queries)
            except BaseException as exc:  # propagate to every waiting client
                for pending in batch:
                    pending.error = exc
                    pending.done.set()
                return
            # A lifecycle merge/reoptimize during run_batch bumps the version
            # (listener below); results handed to clients are still correct
            # for their execution, but must not outlive the invalidation in
            # the cache.
            with self._state_lock:
                cacheable = self._cache is not None and version == self._version
            for pending, result in zip(batch, results):
                if cacheable:
                    self._cache.put(pending.query, result)
                pending.result = result
                pending.done.set()
        self.stats.queries_served += len(batch)

    def _on_lifecycle_event(self, event) -> None:
        if event.kind in ("merge", "reoptimize"):
            self.invalidate_cache()

    # -- shutdown ----------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServerClosedError("serving front-end is closed")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed admission shutdown."""
        return self._closed

    def close(self) -> None:
        """Stop admissions, drain pending requests, and release resources.

        Queued queries are still served (their clients unblock normally);
        then the dispatcher exits, the lifecycle subscription is removed, and
        — when ``config.close_backend`` — the backend's own ``close`` runs
        (which shuts down e.g. a sharded index's worker pool).  Idempotent.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.close()
        self._dispatcher.join()
        if self._subscribed and hasattr(self.backend, "unsubscribe"):
            self.backend.unsubscribe(self._on_lifecycle_event)
            self._subscribed = False
        if self.config.close_backend:
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
