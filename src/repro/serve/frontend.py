"""The concurrent serving front-end: many clients, one batched pipeline.

Everything below the serving contract is a single-threaded library; the
ROADMAP's "heavy traffic from millions of users" needs the piece that turns
many concurrent clients into the batched calls the PR 2 pipeline is built
for.  :class:`ServingFrontend` is that piece:

* **Micro-batching.**  Client threads call :meth:`ServingFrontend.query`;
  arrivals are coalesced by a :class:`~repro.serve.batcher.MicroBatcher`
  (flush on batch-size, arrival pause, or deadline, whichever first — the
  window adapts to the offered load) and a single dispatcher
  thread drives them through the backend's ``run_batch`` — template dedup,
  one grid-tree traversal per batch, shared scans.  Bursty skewed traffic
  amortizes almost for free.
* **Result cache.**  A :class:`~repro.serve.cache.ResultCache` answers
  repeated templates without touching the engine.  It is invalidated on
  every write admitted through the front-end and on every ``merge`` /
  ``reoptimize`` event a :class:`~repro.core.lifecycle.LifecycleManager`
  backend reports (subscription wired automatically), so updatable indexes
  stay correct; results computed by a batch that *overlapped* such an event
  are returned to their clients but never cached (version check).
* **Backpressure.**  Admission is bounded; beyond ``max_queue_depth``
  pending requests, :meth:`query` rejects with a typed
  :class:`~repro.common.errors.ServerOverloadedError` instead of queueing
  unboundedly.
* **Fault tolerance.**  A backend failure fails only the batch that hit it
  — when the cohort had more than one member, each query is retried solo
  first, so one poison query cannot take its neighbours down.  Queries that
  repeatedly fail solo are quarantined (always executed alone) until one
  solo run succeeds.  Per-query deadlines raise a typed
  :class:`~repro.common.errors.QueryTimeoutError`, and if the dispatcher
  thread ever exits abnormally, every pending and queued request is
  completed exceptionally with
  :class:`~repro.common.errors.DispatcherCrashedError` — no client is left
  blocked on a future that nobody will complete.

The backend is anything with ``run_batch(queries) -> list[QueryResult]``:
a :class:`~repro.query.engine.QueryEngine` (read-only or wrapping a
:class:`~repro.core.sharding.ShardedIndex` / delta index) or a
:class:`~repro.core.lifecycle.LifecycleManager` (which also observes served
queries for drift — including cache hits, which never reach ``run_batch``
but are queued and flushed into the backend's ``observe`` hook so a hot set
answered mostly from cache still counts toward drift detection).  Writes (:meth:`insert` / :meth:`insert_many`) are
forwarded to the backend when it supports them and serialized against
in-flight batches, so a batch never executes against a half-applied write.

Concurrent serving through this front-end is bit-identical to sequential
uncached execution: batches preserve arrival order per request, the cache
only replays results computed by the same engine, and the differential tests
in ``tests/test_serve_frontend.py`` pin exactly that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.baselines.base import QueryResult
from repro.common import faults
from repro.common.errors import (
    DispatcherCrashedError,
    QueryTimeoutError,
    ServerClosedError,
    ServingError,
)
from repro.query.query import Query
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ResultCache


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving front-end.

    Parameters
    ----------
    max_batch_size:
        Flush the micro-batch window as soon as this many requests pend.
    max_delay_seconds:
        Flush no later than this long after the oldest pending arrival; this
        is the worst-case latency a lone query pays for batching.
    idle_gap_seconds:
        Flush early when no new request arrives within this gap — the window
        cannot grow while the stream is paused, so holding the batch open
        only adds latency.  ``None`` always waits the full window.
    max_queue_depth:
        Bounded admission queue; requests beyond it are rejected with
        :class:`~repro.common.errors.ServerOverloadedError`.
    cache_entries:
        Capacity of the LRU result cache; ``0`` disables result caching.
    close_backend:
        Whether :meth:`ServingFrontend.close` also closes the backend (which
        in turn shuts down e.g. a sharded index's thread pool).
    default_timeout_seconds:
        Deadline applied to :meth:`ServingFrontend.query` calls that pass no
        explicit ``timeout``; expiry raises
        :class:`~repro.common.errors.QueryTimeoutError`.  ``None`` waits
        forever.
    quarantine_after:
        Quarantine a query after this many *solo* failures: it is then always
        executed alone (never sharing a cohort it could poison) until one
        solo execution succeeds.
    """

    max_batch_size: int = 256
    max_delay_seconds: float = 0.002
    idle_gap_seconds: float | None = 0.00025
    max_queue_depth: int = 2048
    cache_entries: int = 4096
    close_backend: bool = True
    default_timeout_seconds: float | None = None
    quarantine_after: int = 2

    def __post_init__(self) -> None:
        if self.cache_entries < 0:
            raise ServingError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds <= 0
        ):
            raise ServingError(
                "default_timeout_seconds must be > 0 or None, "
                f"got {self.default_timeout_seconds}"
            )
        if self.quarantine_after < 1:
            raise ServingError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        # Window/queue bounds are validated by MicroBatcher at construction.


@dataclass
class ServingStats:
    """Running totals of everything the front-end has done."""

    queries_submitted: int = 0
    queries_served: int = 0
    cache_hits: int = 0
    observed_cache_hits: int = 0
    rejections: int = 0
    write_batches: int = 0
    rows_inserted: int = 0
    invalidations: int = 0
    batch_failures: int = 0
    solo_retries: int = 0
    query_failures: int = 0
    quarantined: int = 0
    dispatcher_crashes: int = 0

    def as_dict(self) -> dict:
        """JSON-serializable summary for benchmark reports."""
        return {
            "queries_submitted": self.queries_submitted,
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "observed_cache_hits": self.observed_cache_hits,
            "rejections": self.rejections,
            "write_batches": self.write_batches,
            "rows_inserted": self.rows_inserted,
            "invalidations": self.invalidations,
            "batch_failures": self.batch_failures,
            "solo_retries": self.solo_retries,
            "query_failures": self.query_failures,
            "quarantined": self.quarantined,
            "dispatcher_crashes": self.dispatcher_crashes,
        }


class _PendingQuery:
    """One admitted request: the query plus its completion rendezvous."""

    __slots__ = ("query", "done", "result", "error")

    def __init__(self, query: Query) -> None:
        self.query = query
        self.done = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None


class ServingFrontend:
    """Serves many concurrent clients through one micro-batched pipeline.

    Parameters
    ----------
    backend:
        Anything with ``run_batch(queries)``; a
        :class:`~repro.core.lifecycle.LifecycleManager` backend additionally
        gets its maintenance events wired into cache invalidation, and a
        backend with ``insert_many`` makes the front-end updatable.
    config:
        Micro-batching window, admission bound, and cache capacity.
    """

    def __init__(self, backend, config: ServingConfig | None = None) -> None:
        if not hasattr(backend, "run_batch"):
            raise ServingError(
                f"backend {type(backend).__name__!r} does not implement "
                "run_batch; wrap the index in a QueryEngine or LifecycleManager"
            )
        self.backend = backend
        self.config = config or ServingConfig()
        self.stats = ServingStats()
        self._batcher = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            max_delay_seconds=self.config.max_delay_seconds,
            max_queue_depth=self.config.max_queue_depth,
            idle_gap_seconds=self.config.idle_gap_seconds,
        )
        self._cache = (
            ResultCache(self.config.cache_entries)
            if self.config.cache_entries
            else None
        )
        # Serializes writes against in-flight batch executions, and guards the
        # cache-fill version check: a batch only caches its results if no
        # invalidation happened after it started executing.
        self._exec_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._version = 0
        self._closed = False
        self._crashed = False
        # Poison-query tracking: solo failure counts and the quarantine set
        # (queries in it never share a cohort).  Touched only by the
        # dispatcher thread, read by `quarantine` for observability.
        self._solo_failures: dict[Query, int] = {}
        self._quarantine: set[Query] = set()
        # Cache hits never reach the backend, but a drift-observing backend
        # (LifecycleManager) must still see them or a hot set served mostly
        # from cache drifts unnoticed.  Hits are queued here by client
        # threads and flushed to backend.observe() by the dispatcher, under
        # the execution lock — observe() is not required to be thread-safe.
        self._backend_observe = getattr(backend, "observe", None)
        self._observed_hits: list[Query] = []
        self._observed_lock = threading.Lock()
        self._subscribed = False
        if hasattr(backend, "subscribe"):
            backend.subscribe(self._on_lifecycle_event)
            self._subscribed = True
        self._dispatcher = threading.Thread(
            target=self._serve_loop, name="serving-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- client API --------------------------------------------------------------------

    def query(self, query: Query, timeout: float | None = None) -> QueryResult:
        """Answer ``query``, blocking until it is served.

        Safe to call from any number of threads.  Raises
        :class:`~repro.common.errors.ServerOverloadedError` when the
        admission queue is full, :class:`ServerClosedError` after
        :meth:`close`, :class:`~repro.common.errors.DispatcherCrashedError`
        after an abnormal dispatcher exit, and
        :class:`~repro.common.errors.QueryTimeoutError` when the deadline
        (``timeout`` seconds, defaulting to
        ``config.default_timeout_seconds``) expires first.
        """
        self._require_open()
        if timeout is None:
            timeout = self.config.default_timeout_seconds
        self.stats.queries_submitted += 1
        if self._cache is not None:
            cached = self._cache.get(query)
            if cached is not None:
                self.stats.cache_hits += 1
                if self._backend_observe is not None:
                    with self._observed_lock:
                        self._observed_hits.append(query)
                return cached
        pending = _PendingQuery(query)
        try:
            self._batcher.put(pending)
        except ServingError:
            self.stats.rejections += 1
            raise
        if not pending.done.wait(timeout):
            raise QueryTimeoutError(
                f"query was not served within {timeout} seconds",
                timeout_seconds=timeout,
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def insert(self, row) -> None:
        """Insert one row through the backend, invalidating the result cache."""
        self.insert_many([row])

    def insert_many(self, rows) -> None:
        """Insert rows through the backend, invalidating the result cache.

        The write is serialized against in-flight batches, so no batch
        executes against a half-applied write, and every result cached before
        the write is dropped (pending delta-buffer rows are visible to
        queries immediately, so results go stale at insert time, not merge
        time).
        """
        rows = list(rows)
        self._require_open()
        insert = getattr(self.backend, "insert_many", None)
        if insert is None:
            raise ServingError(
                f"backend {type(self.backend).__name__!r} does not support "
                "inserts; serve an updatable index (DeltaBufferedIndex, "
                "updatable ShardedIndex, or a LifecycleManager)"
            )
        with self._exec_lock:
            insert(rows)
        self.stats.write_batches += 1
        self.stats.rows_inserted += len(rows)
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop every cached result and fence in-flight batches off the cache."""
        with self._state_lock:
            self._version += 1
            self.stats.invalidations += 1
        if self._cache is not None:
            self._cache.invalidate()

    @property
    def cache(self) -> ResultCache | None:
        """The result cache (``None`` when disabled by configuration)."""
        return self._cache

    @property
    def batcher(self) -> MicroBatcher:
        """The admission queue (live object; its stats feed the benchmarks)."""
        return self._batcher

    @property
    def quarantine(self) -> frozenset[Query]:
        """Queries currently quarantined (executed solo, never in a cohort)."""
        return frozenset(self._quarantine)

    def describe(self) -> dict:
        """Operational statistics: serving, batching, and cache counters."""
        return {
            "serving": self.stats.as_dict(),
            "batching": self._batcher.stats.as_dict(),
            "cache": self._cache.stats.as_dict() if self._cache else None,
        }

    # -- dispatcher --------------------------------------------------------------------

    def _serve_loop(self) -> None:
        """Dispatcher main loop: take a batch, execute it, repeat.

        Batch-level failures are contained — an exception escaping
        :meth:`_execute` fails only that batch's still-unfinished futures and
        the loop continues.  Anything worse (an error taking the batch, a
        :class:`BaseException`, or an injected ``frontend.dispatcher`` fault)
        is an abnormal exit: the crash handler closes admissions and
        completes every pending and queued future exceptionally with
        :class:`~repro.common.errors.DispatcherCrashedError`, so no client
        blocks on a future that nobody will ever complete.
        """
        batch: list | None = None
        try:
            while True:
                batch = self._batcher.take()
                if batch is None:
                    return  # closed and drained: the one normal exit
                faults.trigger("frontend.dispatcher")
                try:
                    self._execute(batch)
                except Exception as exc:
                    self.stats.batch_failures += 1
                    self._fail_batch(batch, exc)
                batch = None
        except BaseException as exc:
            # Deliberately broad and deliberately non-raising: the dispatcher
            # is a daemon thread, so an escaped exception would strand every
            # waiting client silently.  Record, fail futures, exit quietly.
            self._dispatcher_crashed(batch, exc)

    def _execute(self, batch: list) -> None:
        """Execute one batch: quarantined queries solo, the rest as a cohort.

        A cohort failure with more than one member triggers a solo retry of
        each member (a poison query fails alone; innocent neighbours still
        get their results).  Futures are completed *before* cache fills, so a
        cache failure can no longer affect any client of this batch — it
        surfaces as a contained batch failure in the stats.
        """
        with self._exec_lock:
            # Flush queued cache hits into the backend's drift observer
            # before the version snapshot: observation may trigger a merge /
            # reoptimize whose invalidation must fence this batch's cache
            # fills too.
            self._flush_observed_hits()
            with self._state_lock:
                version = self._version
            quarantined = [p for p in batch if p.query in self._quarantine]
            cohort = [p for p in batch if p.query not in self._quarantine]
            served: list[tuple[_PendingQuery, QueryResult]] = []
            if cohort:
                try:
                    results = self._run_backend([p.query for p in cohort])
                except Exception as exc:
                    self.stats.batch_failures += 1
                    if len(cohort) > 1:
                        self._retry_solo(cohort, served)
                    else:
                        self._solo_failed(cohort[0], exc)
                else:
                    served.extend(zip(cohort, results))
            for pending in quarantined:
                self._run_solo(pending, served)
            # A lifecycle merge/reoptimize during execution bumps the version
            # (listener below); results handed to clients are still correct
            # for their execution, but must not outlive the invalidation in
            # the cache.
            with self._state_lock:
                cacheable = self._cache is not None and version == self._version
            for pending, result in served:
                pending.result = result
                pending.done.set()
            if cacheable:
                for pending, result in served:
                    self._cache.put(pending.query, result)
        self.stats.queries_served += len(served)

    def _flush_observed_hits(self) -> None:
        """Hand queued cache-hit queries to the backend's drift observer.

        Called by the dispatcher under ``_exec_lock`` (and once more at
        shutdown), so ``backend.observe`` never races ``run_batch`` on the
        same backend.  A failing observer is contained: drift observation is
        advisory and must never fail a serving batch.
        """
        if self._backend_observe is None:
            return
        with self._observed_lock:
            hits, self._observed_hits = self._observed_hits, []
        if not hits:
            return
        try:
            self._backend_observe(hits)
        except Exception:
            self.stats.batch_failures += 1
        else:
            self.stats.observed_cache_hits += len(hits)

    def _run_backend(self, queries: list[Query]) -> list[QueryResult]:
        """One backend call, with the ``frontend.batch`` fault-injection site."""
        faults.trigger("frontend.batch")
        return self.backend.run_batch(queries)

    def _run_solo(
        self,
        pending: _PendingQuery,
        served: list[tuple[_PendingQuery, QueryResult]],
    ) -> None:
        """Execute one query alone, updating its quarantine standing."""
        try:
            results = self._run_backend([pending.query])
        except Exception as exc:
            self._solo_failed(pending, exc)
        else:
            self._solo_failures.pop(pending.query, None)
            self._quarantine.discard(pending.query)
            served.append((pending, results[0]))

    def _retry_solo(
        self,
        cohort: list[_PendingQuery],
        served: list[tuple[_PendingQuery, QueryResult]],
    ) -> None:
        """Re-run a failed cohort one query at a time to isolate the poison."""
        for pending in cohort:
            self.stats.solo_retries += 1
            self._run_solo(pending, served)

    def _solo_failed(self, pending: _PendingQuery, exc: BaseException) -> None:
        """Record a solo failure, quarantining the query at the threshold."""
        count = self._solo_failures.get(pending.query, 0) + 1
        self._solo_failures[pending.query] = count
        if (
            count >= self.config.quarantine_after
            and pending.query not in self._quarantine
        ):
            self._quarantine.add(pending.query)
            self.stats.quarantined += 1
        self.stats.query_failures += 1
        pending.error = exc
        pending.done.set()

    @staticmethod
    def _fail_batch(batch: list, exc: BaseException) -> None:
        """Complete every still-unfinished future in ``batch`` with ``exc``."""
        for pending in batch:
            if not pending.done.is_set():
                pending.error = exc
                pending.done.set()

    def _dispatcher_crashed(
        self, batch: list | None, exc: BaseException
    ) -> None:
        """Abnormal dispatcher exit: fail every pending and queued future.

        Marks the front-end crashed (subsequent :meth:`query` /
        :meth:`insert_many` calls raise ``DispatcherCrashedError``), closes
        admissions, and completes the in-flight batch plus everything still
        queued, exceptionally.  Clients already waiting unblock with a typed
        error instead of hanging forever.
        """
        self.stats.dispatcher_crashes += 1
        self._crashed = True
        self._batcher.close()
        error = DispatcherCrashedError(
            f"serving dispatcher crashed: {exc!r}; front-end is unavailable"
        )
        if batch is not None:
            self._fail_batch(batch, error)
        self._fail_batch(self._batcher.drain(), error)

    def _on_lifecycle_event(self, event) -> None:
        if event.kind in ("merge", "reoptimize"):
            self.invalidate_cache()

    # -- shutdown ----------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._crashed:
            raise DispatcherCrashedError(
                "serving dispatcher crashed; front-end is unavailable"
            )
        if self._closed:
            raise ServerClosedError("serving front-end is closed")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed admission shutdown."""
        return self._closed

    def close(self) -> None:
        """Stop admissions, drain pending requests, and release resources.

        Queued queries are still served (their clients unblock normally);
        then the dispatcher exits, the lifecycle subscription is removed, and
        — when ``config.close_backend`` — the backend's own ``close`` runs
        (which shuts down e.g. a sharded index's worker pool).  Idempotent.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.close()
        self._dispatcher.join()
        # The dispatcher is gone; flush any cache hits it never got to
        # observe while the backend is still open.
        with self._exec_lock:
            self._flush_observed_hits()
        if self._subscribed and hasattr(self.backend, "unsubscribe"):
            self.backend.unsubscribe(self._on_lifecycle_event)
            self._subscribed = False
        if self.config.close_backend:
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
