"""LRU query-result cache for the serving front-end.

Skewed workloads (§4) repeat a small set of query templates, so a front-end
serving bursty traffic sees the *same* :class:`~repro.query.query.Query`
value objects over and over.  :class:`ResultCache` memoizes whole
:class:`~repro.baselines.base.QueryResult` objects keyed by the query itself
(queries are hashable frozen dataclasses), so a repeated template is answered
without touching the engine at all.

The invalidation rule extends the one
:class:`~repro.core.query_types.PlanCache` uses.  A plan cache only goes
stale when the physical layout changes (merge rebuild, ``reoptimize``,
``fit``), because cached spans address the clustered row order.  A *result*
cache additionally goes stale the moment any row is inserted, because
pending delta-buffer rows are visible to queries immediately.  The serving
front-end therefore calls :meth:`ResultCache.invalidate`

* on every write admitted through it, and
* whenever the :class:`~repro.core.lifecycle.LifecycleManager` reports a
  ``merge`` or ``reoptimize`` event (maintenance the lifecycle loop triggers
  on its own, e.g. buffer pressure or drift).

A cleared cache simply refills from the next executions; correctness never
depends on a hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.baselines.base import QueryResult
from repro.common import faults
from repro.query.query import Query


@dataclass
class ResultCacheStats:
    """Hit/miss/invalidation accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-serializable summary for benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """A thread-safe LRU cache of complete query results.

    Every operation holds one internal lock, so concurrent client threads and
    the dispatcher thread can share a cache safely.  Results are stored and
    returned with *copied* :class:`~repro.storage.scan.ScanStats` (the same
    contract as :func:`~repro.baselines.base.expand_deduped_results`): a
    cached query still reports the full logical work of its template, and no
    caller can mutate the cached entry's counters.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = ResultCacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[Query, QueryResult] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, query: Query) -> QueryResult | None:
        """The cached result for ``query`` (an independent copy), or ``None``."""
        faults.trigger("cache.get")
        with self._lock:
            entry = self._entries.get(query)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(query)
            self.stats.hits += 1
            return QueryResult(value=entry.value, stats=entry.stats.copy())

    def put(self, query: Query, result: QueryResult) -> None:
        """Insert ``result`` under ``query``, evicting the LRU entry when full."""
        faults.trigger("cache.put")
        frozen = QueryResult(value=result.value, stats=result.stats.copy())
        with self._lock:
            self._entries[query] = frozen
            self._entries.move_to_end(query)
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (data or layout changed); hit/miss stats survive."""
        with self._lock:
            self._entries.clear()
            self.stats.invalidations += 1
