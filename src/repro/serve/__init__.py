"""Concurrent serving front-end: micro-batching, result cache, backpressure.

This package turns the single-threaded serving library into a server loop:
:class:`ServingFrontend` accepts queries from many client threads, coalesces
arrivals inside an adaptive micro-batching window
(:class:`~repro.serve.batcher.MicroBatcher`), answers repeated templates from
an LRU :class:`~repro.serve.cache.ResultCache` (invalidated on writes and on
lifecycle merge/reoptimize events), and sheds load beyond a bounded admission
queue with a typed rejection.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import ResultCache, ResultCacheStats
from repro.serve.frontend import ServingConfig, ServingFrontend, ServingStats

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "ResultCache",
    "ResultCacheStats",
    "ServingConfig",
    "ServingFrontend",
    "ServingStats",
]
