"""Deterministic random-number helpers.

All stochastic code in the library accepts either an integer seed or an
existing :class:`numpy.random.Generator`.  These helpers normalise that input
so modules never touch NumPy's global random state, which keeps dataset
generation, workload generation, and optimization fully reproducible.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None

_DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to a fixed library-wide default so that calls without an
    explicit seed are still deterministic.  Passing an existing generator
    returns it unchanged, which lets callers thread one RNG through a whole
    pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent regardless of how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(_DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
