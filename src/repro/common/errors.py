"""Exception hierarchy for the Tsunami reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at an API boundary.  The subclasses partition
failures by subsystem:

* :class:`SchemaError` — malformed tables, unknown columns, bad dtypes.
* :class:`QueryError` — malformed predicates or aggregations.
* :class:`IndexBuildError` — an index could not be constructed from the data
  and workload it was given.
* :class:`OptimizationError` — the layout optimizer could not converge or was
  given an infeasible configuration.
* :class:`ServingError` — the concurrent serving front-end could not accept
  or complete a request (with :class:`ServerOverloadedError` for backpressure
  rejections and :class:`ServerClosedError` for requests after shutdown).

The fault-tolerance layer (PR 7) adds the typed failure vocabulary of the
serving stack: :class:`QueryTimeoutError` (a per-query deadline expired),
:class:`ShardTimeoutError` (one shard's execution exceeded its budget),
:class:`CircuitOpenError` (a shard's circuit breaker is refusing work),
:class:`PartialResultError` (strict-mode fan-out completed only partially —
the partial aggregates and the failed-shard list ride on the exception),
:class:`DispatcherCrashedError` (the front-end dispatcher thread died and
every stranded future was failed with this), and :class:`InjectedFault` (the
deterministic fault-injection harness in :mod:`repro.common.faults` fired).

Every error that carries structured fields stores them as attributes *and*
keeps them reconstructible through pickling (``__reduce__`` re-invokes the
constructor with the original arguments), because serving errors cross
future/thread boundaries and benchmark subprocess boundaries intact.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A table, column, or dtype does not satisfy the storage layer's rules."""


class QueryError(ReproError):
    """A query references unknown dimensions or uses an invalid predicate."""


class ConfigError(ReproError):
    """A scenario/benchmark configuration file is malformed or inconsistent."""


class IndexBuildError(ReproError):
    """An index could not be built from the supplied data and workload."""


class OptimizationError(ReproError):
    """Layout optimization failed or was configured inconsistently."""


class ServingError(ReproError):
    """The serving front-end could not accept or complete a request."""


class ServerOverloadedError(ServingError):
    """The admission queue is full; the request was rejected (backpressure).

    Clients receiving this should back off and retry — the server sheds load
    instead of queueing unboundedly, which is what keeps tail latency bounded
    under overload.
    """


class ServerClosedError(ServingError):
    """The serving front-end has been shut down and accepts no new requests."""


class QueryTimeoutError(ServingError):
    """A per-query deadline expired before the query was served.

    The query may still complete in the background (its batch cannot be
    recalled), but the caller has been released; a retry may hit the result
    cache.
    """

    def __init__(self, message: str, timeout_seconds: float | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.timeout_seconds = timeout_seconds

    def __reduce__(self):
        return (type(self), (self.message, self.timeout_seconds))


class ShardTimeoutError(ServingError):
    """One shard's execution exceeded its per-shard time budget.

    The worker thread may still be running (Python threads cannot be killed);
    the fan-out abandons its result and accounts the shard as failed.
    """

    def __init__(
        self,
        message: str,
        shard: int | None = None,
        timeout_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.shard = shard
        self.timeout_seconds = timeout_seconds

    def __reduce__(self):
        return (type(self), (self.message, self.shard, self.timeout_seconds))


class CircuitOpenError(ServingError):
    """A shard's circuit breaker is open: work is refused without execution.

    Raised (or recorded as a shard's skip reason) after ``failure_threshold``
    consecutive failures, until a half-open probe succeeds after the cooldown.
    """

    def __init__(
        self,
        message: str,
        shard: int | None = None,
        consecutive_failures: int = 0,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.shard = shard
        self.consecutive_failures = consecutive_failures

    def __reduce__(self):
        return (type(self), (self.message, self.shard, self.consecutive_failures))


class PartialResultError(ServingError):
    """Strict-mode fan-out completed only partially.

    Carries everything a caller needs to decide whether the partial answer is
    usable: ``partial_results`` (the recombined :class:`QueryResult` list over
    the shards that *did* answer, in input order), ``failed_shards`` /
    ``skipped_shards`` (positions that errored vs. were skipped by an open
    circuit breaker), and ``failure_reasons`` (shard position → ``repr`` of
    its final error — reprs rather than exception objects so the payload
    always pickles).
    """

    def __init__(
        self,
        message: str,
        partial_results=(),
        failed_shards=(),
        skipped_shards=(),
        failure_reasons=None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.partial_results = list(partial_results)
        self.failed_shards = list(failed_shards)
        self.skipped_shards = list(skipped_shards)
        self.failure_reasons = dict(failure_reasons or {})

    def __reduce__(self):
        return (
            type(self),
            (
                self.message,
                self.partial_results,
                self.failed_shards,
                self.skipped_shards,
                self.failure_reasons,
            ),
        )


class DispatcherCrashedError(ServingError):
    """The front-end dispatcher thread exited abnormally.

    Every pending and queued future is completed with this error instead of
    being stranded; subsequent submissions are rejected with it until the
    front-end is closed and replaced.
    """


class InjectedFault(ReproError):
    """An error deliberately raised by the fault-injection harness.

    Carries the call site, the fault kind, and the 0-based index of the call
    that tripped the spec, so chaos tests can assert exactly which injection
    they observed.
    """

    def __init__(
        self,
        message: str,
        site: str | None = None,
        kind: str = "error",
        call_index: int = 0,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.site = site
        self.kind = kind
        self.call_index = call_index

    def __reduce__(self):
        return (type(self), (self.message, self.site, self.kind, self.call_index))
