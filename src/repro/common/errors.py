"""Exception hierarchy for the Tsunami reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at an API boundary.  The subclasses partition
failures by subsystem:

* :class:`SchemaError` — malformed tables, unknown columns, bad dtypes.
* :class:`QueryError` — malformed predicates or aggregations.
* :class:`IndexBuildError` — an index could not be constructed from the data
  and workload it was given.
* :class:`OptimizationError` — the layout optimizer could not converge or was
  given an infeasible configuration.
* :class:`ServingError` — the concurrent serving front-end could not accept
  or complete a request (with :class:`ServerOverloadedError` for backpressure
  rejections and :class:`ServerClosedError` for requests after shutdown).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A table, column, or dtype does not satisfy the storage layer's rules."""


class QueryError(ReproError):
    """A query references unknown dimensions or uses an invalid predicate."""


class IndexBuildError(ReproError):
    """An index could not be built from the supplied data and workload."""


class OptimizationError(ReproError):
    """Layout optimization failed or was configured inconsistently."""


class ServingError(ReproError):
    """The serving front-end could not accept or complete a request."""


class ServerOverloadedError(ServingError):
    """The admission queue is full; the request was rejected (backpressure).

    Clients receiving this should back off and retry — the server sheds load
    instead of queueing unboundedly, which is what keeps tail latency bounded
    under overload.
    """


class ServerClosedError(ServingError):
    """The serving front-end has been shut down and accepts no new requests."""
