"""Shared utilities: errors, random-number helpers, and small data types.

The rest of the package depends only on this subpackage and on NumPy/SciPy,
so anything placed here must stay dependency-free with respect to the other
``repro`` subpackages.
"""

from repro.common.errors import (
    ReproError,
    SchemaError,
    QueryError,
    IndexBuildError,
    OptimizationError,
)
from repro.common.rng import make_rng, spawn_rngs
from repro.common.validation import (
    ensure_int64_array,
    ensure_positive,
    ensure_in_range,
    ensure_non_empty,
)

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "IndexBuildError",
    "OptimizationError",
    "make_rng",
    "spawn_rngs",
    "ensure_int64_array",
    "ensure_positive",
    "ensure_in_range",
    "ensure_non_empty",
]
