"""Shared utilities: errors, random-number helpers, and small data types.

The rest of the package depends only on this subpackage and on NumPy/SciPy,
so anything placed here must stay dependency-free with respect to the other
``repro`` subpackages.  The fault-tolerance primitives live here for the same
reason: :mod:`repro.common.faults` (deterministic fault injection) and
:mod:`repro.common.resilience` (retry policies, circuit breakers) are used by
the core, storage, and serve layers alike.
"""

from repro.common.errors import (
    ReproError,
    SchemaError,
    QueryError,
    ConfigError,
    IndexBuildError,
    OptimizationError,
    ServingError,
    ServerOverloadedError,
    ServerClosedError,
    QueryTimeoutError,
    ShardTimeoutError,
    CircuitOpenError,
    PartialResultError,
    DispatcherCrashedError,
    InjectedFault,
)
from repro.common.faults import FaultPlan, FaultSpec, Injection
from repro.common.resilience import CircuitBreaker, FaultPolicy, RetryPolicy
from repro.common.rng import make_rng, spawn_rngs
from repro.common.validation import (
    ensure_int64_array,
    ensure_positive,
    ensure_in_range,
    ensure_non_empty,
)

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "ConfigError",
    "IndexBuildError",
    "OptimizationError",
    "ServingError",
    "ServerOverloadedError",
    "ServerClosedError",
    "QueryTimeoutError",
    "ShardTimeoutError",
    "CircuitOpenError",
    "PartialResultError",
    "DispatcherCrashedError",
    "InjectedFault",
    "FaultPlan",
    "FaultSpec",
    "Injection",
    "CircuitBreaker",
    "FaultPolicy",
    "RetryPolicy",
    "make_rng",
    "spawn_rngs",
    "ensure_int64_array",
    "ensure_positive",
    "ensure_in_range",
    "ensure_non_empty",
]
