"""Small argument-validation helpers used across the package.

These exist so that validation failures raise consistent, informative errors
at API boundaries instead of surfacing as cryptic NumPy exceptions deep inside
index internals.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.errors import SchemaError


#: Integer dtypes the column store may narrow to, widest-coverage last.  The
#: ladder is deterministic: the first dtype whose range covers ``[min, max]``
#: wins, so the same data always lands on the same physical representation.
STORAGE_DTYPES: tuple[np.dtype, ...] = tuple(
    np.dtype(kind) for kind in (np.uint8, np.int16, np.int32, np.int64)
)


def narrowest_dtype(minimum: int, maximum: int) -> np.dtype:
    """Smallest storage dtype whose range covers ``[minimum, maximum]``."""
    for dtype in STORAGE_DTYPES:
        info = np.iinfo(dtype)
        if info.min <= minimum and maximum <= info.max:
            return dtype
    return np.dtype(np.int64)


def ensure_integral_array(values: object, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a 1-D integer array or raise :class:`SchemaError`.

    An existing integer dtype is preserved (the column store narrows storage
    to the smallest dtype covering the value range and must not silently
    widen it back).  Floating-point input is accepted only when it is
    integral, and lands on ``int64``.
    """
    array = np.asarray(values)
    if array.ndim != 1:
        raise SchemaError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size and not np.issubdtype(array.dtype, np.number):
        raise SchemaError(f"{name} must be numeric, got dtype {array.dtype}")
    if np.issubdtype(array.dtype, np.floating):
        if array.size and not np.all(np.isfinite(array)):
            raise SchemaError(f"{name} contains non-finite values")
        rounded = np.rint(array)
        if array.size and not np.allclose(array, rounded, atol=1e-9):
            raise SchemaError(
                f"{name} has non-integral floats; scale them to integers first "
                "(see repro.storage.scaling)"
            )
        array = rounded
    if not np.issubdtype(array.dtype, np.integer):
        array = array.astype(np.int64, copy=False)
    return array


def ensure_int64_array(values: object, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a 1-D ``int64`` array or raise :class:`SchemaError`.

    Floating-point input is accepted only when it is integral (the storage
    layer requires callers to fixed-point scale floats explicitly).
    """
    return ensure_integral_array(values, name=name).astype(np.int64, copy=False)


def ensure_positive(value: float, name: str = "value") -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def ensure_in_range(
    value: float, low: float, high: float, name: str = "value"
) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def ensure_non_empty(items: Sequence, name: str = "sequence") -> Sequence:
    """Raise ``ValueError`` if ``items`` is empty."""
    if len(items) == 0:
        raise ValueError(f"{name} must not be empty")
    return items
