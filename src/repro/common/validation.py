"""Small argument-validation helpers used across the package.

These exist so that validation failures raise consistent, informative errors
at API boundaries instead of surfacing as cryptic NumPy exceptions deep inside
index internals.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.errors import SchemaError


def ensure_int64_array(values: object, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a 1-D ``int64`` array or raise :class:`SchemaError`.

    Floating-point input is accepted only when it is integral (the storage
    layer requires callers to fixed-point scale floats explicitly).
    """
    array = np.asarray(values)
    if array.ndim != 1:
        raise SchemaError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size and not np.issubdtype(array.dtype, np.number):
        raise SchemaError(f"{name} must be numeric, got dtype {array.dtype}")
    if np.issubdtype(array.dtype, np.floating):
        if array.size and not np.all(np.isfinite(array)):
            raise SchemaError(f"{name} contains non-finite values")
        rounded = np.rint(array)
        if array.size and not np.allclose(array, rounded, atol=1e-9):
            raise SchemaError(
                f"{name} has non-integral floats; scale them to integers first "
                "(see repro.storage.scaling)"
            )
        array = rounded
    return array.astype(np.int64, copy=False)


def ensure_positive(value: float, name: str = "value") -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def ensure_in_range(
    value: float, low: float, high: float, name: str = "value"
) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def ensure_non_empty(items: Sequence, name: str = "sequence") -> Sequence:
    """Raise ``ValueError`` if ``items`` is empty."""
    if len(items) == 0:
        raise ValueError(f"{name} must not be empty")
    return items
