"""Deterministic, seeded fault injection for chaos-testing the serving stack.

A fault-tolerance layer is only trustworthy if its failure paths are *tested*,
and failure-path tests are only trustworthy if they are reproducible.  This
module provides both halves:

* **Named call sites.**  Production code marks the places where real systems
  fail with a one-line :func:`trigger` call — shard execution
  (``"shard.execute"``), merges (``"delta.merge"``, ``"shard.merge"``),
  re-optimization (``"lifecycle.reoptimize"``), the result cache
  (``"cache.get"`` / ``"cache.put"``), persistence (``"persistence.save"``),
  and the front-end dispatcher (``"frontend.batch"``).  With no plan
  installed, ``trigger`` is a single global-is-``None`` check — the happy
  path pays nothing measurable.
* **A deterministic plan.**  A :class:`FaultPlan` is a list of
  :class:`FaultSpec` rules plus a seeded RNG.  Each spec matches a site (and
  optionally a per-call ``key``, e.g. a shard position), skips the first
  ``after_calls`` matching calls, fires at most ``max_triggers`` times, and
  draws against ``probability`` from the plan's seeded stream — so a chaos
  run replays identically given the same seed and call order.  Injected
  effects are exceptions (:class:`~repro.common.errors.InjectedFault` by
  default), fixed delays, or *hangs* (a wait that holds until the plan is
  uninstalled or ``delay_seconds`` elapses, whichever first — long enough to
  trip any timeout, but tests never leak a sleeping thread past
  :func:`uninstall`).

Typical test shape::

    plan = FaultPlan([
        FaultSpec(site="shard.execute", key=2, kind="error", max_triggers=3),
    ], seed=7)
    with active(plan):
        ... exercise the index ...
    assert [i.site for i in plan.injections] == ["shard.execute"] * 3

Exactly one plan is active at a time, process-wide: the serving stack spans
threads (shard workers, the dispatcher), so a thread-local plan would miss
the very call sites chaos tests care about.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase
from random import Random
from typing import Callable, Iterator, Sequence

from repro.common.errors import InjectedFault, ReproError

#: Fault kinds a spec may inject.
KINDS = ("error", "delay", "hang")


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule of a :class:`FaultPlan`.

    Parameters
    ----------
    site:
        Call-site name to match; ``fnmatch``-style wildcards are allowed
        (``"shard.*"`` matches every shard-layer site).
    kind:
        ``"error"`` raises (``error_factory()`` or :class:`InjectedFault`),
        ``"delay"`` sleeps ``delay_seconds``, ``"hang"`` blocks until the
        plan is uninstalled or ``delay_seconds`` elapses.
    probability:
        Chance this spec fires on a matching call, drawn from the plan's
        seeded RNG; ``1.0`` fires on every matching call (fully
        deterministic regardless of thread arrival order).
    delay_seconds:
        Sleep length for ``"delay"``, and the hang cap for ``"hang"``.
    error_factory:
        Zero-argument callable building the exception ``"error"`` raises;
        ``None`` raises :class:`InjectedFault` with the site and call index.
    key:
        When set, only calls triggering with this exact key match (e.g. one
        shard position); ``None`` matches every key.
    after_calls:
        Skip this many matching calls before the spec becomes eligible.
    max_triggers:
        Stop firing after this many injections; ``None`` never stops.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    delay_seconds: float = 30.0
    error_factory: Callable[[], BaseException] | None = None
    key: object | None = None
    after_calls: int = 0
    max_triggers: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_seconds < 0:
            raise ReproError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.after_calls < 0:
            raise ReproError(f"after_calls must be >= 0, got {self.after_calls}")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ReproError(f"max_triggers must be >= 1, got {self.max_triggers}")


@dataclass(frozen=True)
class Injection:
    """One fault actually injected (the plan's replayable history)."""

    site: str
    key: object
    kind: str
    call_index: int


@dataclass
class _SpecState:
    """Mutable per-spec bookkeeping (matching-call and trigger counters)."""

    calls: int = 0
    triggers: int = 0


class FaultPlan:
    """A seeded, replayable schedule of faults over named call sites.

    Decisions (counter updates and probability draws) happen under one lock
    in call order, so a single-threaded chaos run replays exactly; concurrent
    runs replay in aggregate (same seed → same draw sequence).  Effects (the
    sleep, the hang, the raise) happen outside the lock so an injected stall
    never serializes unrelated call sites through the plan.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self._specs = list(specs)
        self._states = [_SpecState() for _ in self._specs]
        self._rng = Random(seed)
        self._lock = threading.Lock()
        self._release = threading.Event()
        self._injections: list[Injection] = []

    @property
    def injections(self) -> list[Injection]:
        """Every fault injected so far, in decision order."""
        with self._lock:
            return list(self._injections)

    def injected(self, site: str) -> int:
        """How many faults have been injected at ``site`` (exact name)."""
        with self._lock:
            return sum(1 for injection in self._injections if injection.site == site)

    def release_hangs(self) -> None:
        """Unblock every in-flight ``"hang"`` fault (also done by uninstall)."""
        self._release.set()

    def fire(self, site: str, key: object = None) -> None:
        """Decide and apply the faults matching one call at ``site``.

        Called by :func:`trigger`; usable directly when a test drives the
        plan without installing it globally.
        """
        effects: list[tuple[FaultSpec, Injection]] = []
        with self._lock:
            for spec, state in zip(self._specs, self._states):
                if not fnmatchcase(site, spec.site):
                    continue
                if spec.key is not None and key != spec.key:
                    continue
                call_index = state.calls
                state.calls += 1
                if call_index < spec.after_calls:
                    continue
                if spec.max_triggers is not None and state.triggers >= spec.max_triggers:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                state.triggers += 1
                injection = Injection(site=site, key=key, kind=spec.kind, call_index=call_index)
                self._injections.append(injection)
                effects.append((spec, injection))
        for spec, injection in effects:
            if spec.kind == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.kind == "hang":
                self._release.wait(spec.delay_seconds)
            else:
                if spec.error_factory is not None:
                    raise spec.error_factory()
                raise InjectedFault(
                    f"injected fault at {site!r} (call {injection.call_index})",
                    site=site,
                    kind=spec.kind,
                    call_index=injection.call_index,
                )


#: The process-wide active plan; ``None`` keeps every trigger a no-op.
_active_plan: FaultPlan | None = None
_install_lock = threading.Lock()


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the active plan (replacing any previous one)."""
    global _active_plan
    with _install_lock:
        previous, _active_plan = _active_plan, plan
    if previous is not None:
        previous.release_hangs()
    return plan


def uninstall() -> None:
    """Deactivate fault injection and release any in-flight hangs."""
    global _active_plan
    with _install_lock:
        previous, _active_plan = _active_plan, None
    if previous is not None:
        previous.release_hangs()


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _active_plan


@contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def trigger(site: str, key: object = None) -> None:
    """Fault point: a no-op unless a plan is installed and matches this call.

    Production call sites invoke this with a stable ``site`` name (and a
    ``key`` where one call site serves many targets, e.g. the shard
    position); the active plan decides whether to raise, delay, or hang.
    """
    plan = _active_plan
    if plan is not None:
        plan.fire(site, key)
