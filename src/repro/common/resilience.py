"""Resilience primitives: retry policies and per-shard circuit breakers.

The scale-out fan-out (:class:`~repro.core.sharding.ShardedIndex`) needs
three defenses a single-process library normally skips:

* **Timeouts** bound how long one shard may stall a batch (configured in
  :class:`FaultPolicy`, enforced by the fan-out's worker pool).
* **Retries** absorb transient failures.  :class:`RetryPolicy` computes
  exponential backoff with seeded jitter, so two replicas retrying the same
  failure do not synchronize into retry storms — and so chaos tests replay
  the exact same delays.
* **Circuit breakers** stop sending work to a shard that keeps failing.
  :class:`CircuitBreaker` is the classic three-state machine: *closed*
  (normal), *open* after ``failure_threshold`` consecutive failures (every
  call is refused without execution, which is what keeps one dead shard from
  consuming every batch's timeout budget), and *half-open* after
  ``cooldown_seconds`` (exactly one probe is admitted; success closes the
  breaker, failure re-opens it for another cooldown).

:class:`FaultPolicy` bundles the three plus the degradation mode the fan-out
applies when shards still fail after all of that: ``"strict"`` raises a typed
:class:`~repro.common.errors.PartialResultError` carrying the partial
aggregates, ``"degraded"`` returns the partial aggregates and accounts the
failures in ``explain``/``describe``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable

from repro.common.errors import ReproError

#: Degradation modes a fan-out may run under.
DEGRADATION_MODES = ("strict", "degraded")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``max_retries=0`` (the default) disables retries entirely — the fault-free
    fast path stays untouched.  The delay before retry ``attempt`` (0-based)
    is ``backoff_seconds * multiplier**attempt``, capped at
    ``max_backoff_seconds``, then jittered by a seeded uniform draw in
    ``[1 - jitter, 1 + jitter]``.
    """

    max_retries: int = 0
    backoff_seconds: float = 0.01
    multiplier: float = 2.0
    max_backoff_seconds: float = 0.5
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0:
            raise ReproError(f"backoff_seconds must be >= 0, got {self.backoff_seconds}")
        if self.multiplier < 1.0:
            raise ReproError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_backoff_seconds < 0:
            raise ReproError(
                f"max_backoff_seconds must be >= 0, got {self.max_backoff_seconds}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_seconds(self, attempt: int, rng: Random) -> float:
        """The backoff before retry ``attempt`` (0-based), jittered via ``rng``."""
        base = min(self.backoff_seconds * self.multiplier**attempt, self.max_backoff_seconds)
        if self.jitter == 0.0 or base == 0.0:
            return base
        return base * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


class CircuitBreaker:
    """Three-state (closed / open / half-open) failure gate for one target.

    Thread-safe; time is read through an injectable ``clock`` so tests can
    step it deterministically instead of sleeping through cooldowns.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ReproError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_seconds < 0:
            raise ReproError(f"cooldown_seconds must be >= 0, got {cooldown_seconds}")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._opens = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (open shows as open
        until :meth:`allow` actually admits the half-open probe)."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Consecutive failures recorded since the last success."""
        with self._lock:
            return self._consecutive_failures

    @property
    def opens(self) -> int:
        """How many times the breaker has transitioned closed/half-open → open."""
        with self._lock:
            return self._opens

    def allow(self) -> bool:
        """Whether a call may proceed now.

        Closed: always.  Open: only once the cooldown has elapsed, which
        admits a single half-open probe; further calls are refused until the
        probe reports.  Half-open: refused (the probe is in flight).
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown_seconds:
                    self._state = "half_open"
                    return True
                return False
            return False  # half_open: probe already admitted

    def record_success(self) -> None:
        """A call succeeded: close the breaker and reset the failure run."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A call failed: re-open a half-open breaker, or count toward opening."""
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == "half_open"
                or self._consecutive_failures >= self.failure_threshold
            ):
                if self._state != "open":
                    self._opens += 1
                self._state = "open"
                self._opened_at = self._clock()

    def as_dict(self) -> dict:
        """JSON-serializable state for ``explain``/``describe`` reports."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "opens": self._opens,
            }


@dataclass(frozen=True)
class FaultPolicy:
    """How a fan-out behaves when a shard misbehaves.

    The default policy is inert on the happy path: no timeout, no retries, a
    breaker that never trips without failures, and ``"strict"`` degradation —
    so a fault-free run is bit-identical to a fan-out without the policy.

    Parameters
    ----------
    shard_timeout_seconds:
        Per-shard execution budget, measured from fan-out start (shards run
        concurrently under the budget); ``None`` never times out.  A timed-out
        worker thread cannot be killed — its result is abandoned and the
        shard accounted as failed.
    retry:
        Transient-failure retry schedule (see :class:`RetryPolicy`).
    breaker_failure_threshold / breaker_cooldown_seconds:
        Per-shard :class:`CircuitBreaker` tuning.
    degradation:
        ``"strict"`` raises :class:`~repro.common.errors.PartialResultError`
        when any non-pruned shard fails or is skipped by an open breaker;
        ``"degraded"`` returns the partial aggregates and accounts the
        failure in ``explain``/``describe``.
    """

    shard_timeout_seconds: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 5
    breaker_cooldown_seconds: float = 1.0
    degradation: str = "strict"

    def __post_init__(self) -> None:
        if self.shard_timeout_seconds is not None and self.shard_timeout_seconds <= 0:
            raise ReproError(
                f"shard_timeout_seconds must be > 0 or None, got "
                f"{self.shard_timeout_seconds}"
            )
        if self.degradation not in DEGRADATION_MODES:
            raise ReproError(
                f"degradation must be one of {DEGRADATION_MODES}, got "
                f"{self.degradation!r}"
            )
        # Breaker bounds are validated by CircuitBreaker at construction.

    def build_breaker(self, clock: Callable[[], float] = time.monotonic) -> CircuitBreaker:
        """A fresh :class:`CircuitBreaker` configured by this policy."""
        return CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            cooldown_seconds=self.breaker_cooldown_seconds,
            clock=clock,
        )
