"""Reproduction of "Tsunami: A Learned Multi-dimensional Index for Correlated
Data and Skewed Workloads" (Ding, Nathan, Alizadeh, Kraska — VLDB 2020).

The public API re-exported here is what the examples and benchmarks use:

* Storage: :class:`~repro.storage.table.Table` — the in-memory clustered column store.
* Queries: :class:`~repro.query.query.Query`, :class:`~repro.query.workload.Workload`.
* The paper's contribution: :class:`~repro.core.tsunami.TsunamiIndex`.
* Baselines: Flood and the non-learned indexes from §6.1.
* Dataset and workload generators standing in for the paper's evaluation data.
* Serving: :class:`~repro.serve.frontend.ServingFrontend` — the concurrent
  micro-batching front-end with its result cache.
* Fault tolerance: the typed error hierarchy, the deterministic
  fault-injection harness (:class:`~repro.common.faults.FaultPlan`), and the
  resilience primitives (:class:`~repro.common.resilience.FaultPolicy`,
  :class:`~repro.common.resilience.CircuitBreaker`,
  :class:`~repro.common.resilience.RetryPolicy`) the sharded fan-out and the
  serving front-end are guarded by.
"""

from repro.common import (
    ReproError,
    SchemaError,
    QueryError,
    ConfigError,
    IndexBuildError,
    OptimizationError,
    ServingError,
    ServerOverloadedError,
    ServerClosedError,
    QueryTimeoutError,
    ShardTimeoutError,
    CircuitOpenError,
    PartialResultError,
    DispatcherCrashedError,
    InjectedFault,
    FaultPlan,
    FaultSpec,
    CircuitBreaker,
    FaultPolicy,
    RetryPolicy,
)
from repro.storage import (
    Table,
    Column,
    save_table,
    load_table,
    save_index,
    load_index,
    read_csv,
    write_csv,
)
from repro.query import Query, Workload, execute_full_scan, parse_query, execute_sql
from repro.core import (
    TsunamiIndex,
    TsunamiConfig,
    AugmentedGrid,
    AugmentedGridConfig,
    GridTree,
    GridTreeConfig,
    Skeleton,
    CostModel,
    WorkloadDriftDetector,
    OutlierBoundedMapping,
    CategoricalReordering,
    DeltaBuffer,
    DeltaBufferedIndex,
    IncrementalReoptimizer,
    LifecycleConfig,
    LifecycleManager,
    LifecycleReport,
    ShardedIndex,
)
from repro.baselines import (
    FullScanIndex,
    SingleDimensionIndex,
    ZOrderIndex,
    KdTreeIndex,
    HyperOctreeIndex,
    GridFileIndex,
    RTreeIndex,
    FloodIndex,
)
from repro.serve import (
    MicroBatcher,
    ResultCache,
    ServingConfig,
    ServingFrontend,
)

__version__ = "1.5.0"

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "ConfigError",
    "IndexBuildError",
    "OptimizationError",
    "ServingError",
    "ServerOverloadedError",
    "ServerClosedError",
    "QueryTimeoutError",
    "ShardTimeoutError",
    "CircuitOpenError",
    "PartialResultError",
    "DispatcherCrashedError",
    "InjectedFault",
    "FaultPlan",
    "FaultSpec",
    "CircuitBreaker",
    "FaultPolicy",
    "RetryPolicy",
    "Table",
    "Column",
    "save_table",
    "load_table",
    "save_index",
    "load_index",
    "read_csv",
    "write_csv",
    "Query",
    "Workload",
    "execute_full_scan",
    "parse_query",
    "execute_sql",
    "TsunamiIndex",
    "TsunamiConfig",
    "AugmentedGrid",
    "AugmentedGridConfig",
    "GridTree",
    "GridTreeConfig",
    "Skeleton",
    "CostModel",
    "WorkloadDriftDetector",
    "OutlierBoundedMapping",
    "CategoricalReordering",
    "DeltaBuffer",
    "DeltaBufferedIndex",
    "IncrementalReoptimizer",
    "LifecycleConfig",
    "LifecycleManager",
    "LifecycleReport",
    "ShardedIndex",
    "FullScanIndex",
    "SingleDimensionIndex",
    "ZOrderIndex",
    "KdTreeIndex",
    "HyperOctreeIndex",
    "GridFileIndex",
    "RTreeIndex",
    "FloodIndex",
    "MicroBatcher",
    "ResultCache",
    "ServingConfig",
    "ServingFrontend",
    "__version__",
]
