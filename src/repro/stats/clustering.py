"""DBSCAN clustering, implemented from scratch for query-type discovery.

§4.3.1 clusters queries into *query types* by running DBSCAN over their
per-dimension selectivity embeddings with ``eps = 0.2``.  scikit-learn is not
available in this environment, so this module provides a small, standard
DBSCAN implementation (Ester et al., KDD 1996) sufficient for workload-sized
inputs (hundreds to low thousands of points).
"""

from __future__ import annotations

import numpy as np

NOISE = -1
_UNVISITED = -2


def _region_query(distances: np.ndarray, point: int, eps: float) -> np.ndarray:
    """Indices of all points within ``eps`` of ``point`` (including itself)."""
    return np.flatnonzero(distances[point] <= eps)


def dbscan(points: np.ndarray, eps: float, min_samples: int = 4) -> np.ndarray:
    """Cluster ``points`` with DBSCAN and return per-point integer labels.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``; Euclidean distance is used.
    eps:
        Neighbourhood radius (the paper uses 0.2 over selectivity embeddings).
    min_samples:
        Minimum neighbourhood size (including the point itself) for a core
        point.

    Returns
    -------
    labels:
        Array of shape ``(n,)`` with cluster ids ``0, 1, ...`` and
        :data:`NOISE` (``-1``) for points not assigned to any cluster.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")

    # Pairwise Euclidean distances; workloads are small so O(n^2) is fine.
    deltas = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=2))

    labels = np.full(n, _UNVISITED, dtype=np.int64)
    cluster_id = 0
    for point in range(n):
        if labels[point] != _UNVISITED:
            continue
        neighbours = _region_query(distances, point, eps)
        if len(neighbours) < min_samples:
            labels[point] = NOISE
            continue
        labels[point] = cluster_id
        # Expand the cluster with a classic seed-list sweep.
        seeds = list(neighbours)
        index = 0
        while index < len(seeds):
            candidate = int(seeds[index])
            index += 1
            if labels[candidate] == NOISE:
                labels[candidate] = cluster_id
            if labels[candidate] != _UNVISITED:
                continue
            labels[candidate] = cluster_id
            candidate_neighbours = _region_query(distances, candidate, eps)
            if len(candidate_neighbours) >= min_samples:
                existing = set(seeds)
                seeds.extend(
                    int(i) for i in candidate_neighbours if int(i) not in existing
                )
        cluster_id += 1
    return labels


def assign_noise_to_clusters(points: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Assign each noise point to the nearest non-noise cluster (if any exists).

    Query-type clustering must give every query a type, so noise points are
    folded into their nearest cluster; if the whole input is noise, each point
    becomes its own singleton cluster.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    labels = np.asarray(labels).copy()
    noise_ids = np.flatnonzero(labels == NOISE)
    if len(noise_ids) == 0:
        return labels
    clustered_ids = np.flatnonzero(labels != NOISE)
    if len(clustered_ids) == 0:
        labels[noise_ids] = np.arange(len(noise_ids))
        return labels
    for noise_point in noise_ids:
        deltas = points[clustered_ids] - points[noise_point]
        nearest = clustered_ids[int(np.argmin((deltas**2).sum(axis=1)))]
        labels[noise_point] = labels[nearest]
    return labels
