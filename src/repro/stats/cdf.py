"""Compact CDF models used to partition dimensions into equal-depth cells.

Flood partitions every dimension uniformly in its CDF (§2.2); the Augmented
Grid additionally partitions a dimension uniformly in a *conditional* CDF
given another dimension's partition (§5.2.2).  The models here are compact:
they store at most a fixed number of quantile knots and interpolate linearly
between them, which keeps index size proportional to the knot count instead
of the data size.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import IndexBuildError


class EmpiricalCDF:
    """A compact empirical CDF over one dimension's stored values.

    The model stores up to ``max_knots`` quantile knots of the observed
    distribution and evaluates ``CDF(x)`` by linear interpolation, clamped to
    ``[0, 1]``.  With ``p`` partitions, value ``x`` is assigned to partition
    ``min(floor(CDF(x) * p), p - 1)``, which yields approximately equal-depth
    partitions.
    """

    def __init__(self, values: np.ndarray, max_knots: int = 1024) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise IndexBuildError("cannot fit a CDF over an empty value array")
        if max_knots < 2:
            raise ValueError(f"max_knots must be >= 2, got {max_knots}")
        ordered = np.sort(values)
        self._n = int(ordered.size)
        if ordered.size <= max_knots:
            self._knots = ordered
            self._knot_cdf = (np.arange(1, ordered.size + 1)) / ordered.size
        else:
            quantiles = np.linspace(0.0, 1.0, max_knots)
            self._knots = np.quantile(ordered, quantiles)
            self._knot_cdf = quantiles.copy()
            self._knot_cdf[-1] = 1.0
        self._min = float(ordered[0])
        self._max = float(ordered[-1])

    @property
    def num_values(self) -> int:
        """Number of values the model was fit on."""
        return self._n

    @property
    def domain(self) -> tuple[float, float]:
        """``(min, max)`` of the fitted values."""
        return self._min, self._max

    def evaluate(self, x: float) -> float:
        """Return ``CDF(x)`` in ``[0, 1]``."""
        if x < self._min:
            return 0.0
        if x >= self._max:
            return 1.0
        return float(np.interp(x, self._knots, self._knot_cdf))

    def evaluate_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`."""
        values = np.asarray(values, dtype=np.float64)
        result = np.interp(values, self._knots, self._knot_cdf)
        result[values < self._min] = 0.0
        result[values >= self._max] = 1.0
        return result

    def partition_of(self, x: float, num_partitions: int) -> int:
        """Partition id of value ``x`` when the dimension has ``num_partitions``."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        index = int(self.evaluate(x) * num_partitions)
        return min(index, num_partitions - 1)

    def partitions_of(self, values: np.ndarray, num_partitions: int) -> np.ndarray:
        """Vectorized :meth:`partition_of`."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        indices = (self.evaluate_many(values) * num_partitions).astype(np.int64)
        return np.minimum(indices, num_partitions - 1)

    def partition_range(
        self, low: float, high: float, num_partitions: int
    ) -> tuple[int, int]:
        """Inclusive partition-id range intersecting the filter ``[low, high]``."""
        first = self.partition_of(low, num_partitions)
        last = self.partition_of(high, num_partitions)
        return first, last

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the model."""
        return int(self._knots.nbytes + self._knot_cdf.nbytes)


class HistogramCDF:
    """A CDF model backed by an equi-width histogram (an even cheaper alternative).

    The paper notes (§2.2) that the choice of CDF modelling technique is
    orthogonal; this class exists to demonstrate that and is used in ablation
    tests.
    """

    def __init__(self, values: np.ndarray, num_bins: int = 256) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise IndexBuildError("cannot fit a CDF over an empty value array")
        counts, edges = np.histogram(values, bins=num_bins)
        cumulative = np.cumsum(counts).astype(np.float64)
        self._edges = edges
        self._cdf_at_edges = np.concatenate([[0.0], cumulative / cumulative[-1]])
        self._min = float(edges[0])
        self._max = float(edges[-1])

    def evaluate(self, x: float) -> float:
        """Return ``CDF(x)`` in ``[0, 1]``."""
        if x <= self._min:
            return 0.0
        if x >= self._max:
            return 1.0
        return float(np.interp(x, self._edges, self._cdf_at_edges))

    def partition_of(self, x: float, num_partitions: int) -> int:
        """Partition id of value ``x`` when the dimension has ``num_partitions``."""
        index = int(self.evaluate(x) * num_partitions)
        return min(index, num_partitions - 1)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the model."""
        return int(self._edges.nbytes + self._cdf_at_edges.nbytes)


class ConditionalCDF:
    """``CDF(Y | X)``: one compact CDF of Y per partition of the base dimension X.

    §5.2.2: "if there are pX and pY partitions over X and Y respectively, we
    implement CDF(Y|X) by storing pX histograms over Y, one for each partition
    in X."  We store one :class:`EmpiricalCDF` per X-partition; empty
    X-partitions fall back to the marginal CDF of Y.
    """

    def __init__(
        self,
        base_partitions: np.ndarray,
        dependent_values: np.ndarray,
        num_base_partitions: int,
        max_knots: int = 64,
    ) -> None:
        base_partitions = np.asarray(base_partitions)
        dependent_values = np.asarray(dependent_values, dtype=np.float64)
        if base_partitions.shape != dependent_values.shape:
            raise IndexBuildError(
                "base partition ids and dependent values must have the same length"
            )
        if num_base_partitions < 1:
            raise ValueError("num_base_partitions must be >= 1")
        self._num_base_partitions = num_base_partitions
        marginal = EmpiricalCDF(dependent_values, max_knots=max_knots)
        self._marginal = marginal
        self._models: list[EmpiricalCDF] = []
        for partition in range(num_base_partitions):
            members = dependent_values[base_partitions == partition]
            if members.size == 0:
                self._models.append(marginal)
            else:
                self._models.append(EmpiricalCDF(members, max_knots=max_knots))

    @property
    def num_base_partitions(self) -> int:
        """Number of partitions of the base dimension."""
        return self._num_base_partitions

    def model_for(self, base_partition: int) -> EmpiricalCDF:
        """The CDF of the dependent dimension within one base partition."""
        if not 0 <= base_partition < self._num_base_partitions:
            raise ValueError(
                f"base partition {base_partition} out of range "
                f"[0, {self._num_base_partitions})"
            )
        return self._models[base_partition]

    def partition_of(self, y: float, base_partition: int, num_partitions: int) -> int:
        """Partition id of dependent value ``y`` given the base partition."""
        return self.model_for(base_partition).partition_of(y, num_partitions)

    def partitions_of(
        self, y_values: np.ndarray, base_partitions: np.ndarray, num_partitions: int
    ) -> np.ndarray:
        """Vectorized partition assignment for (y, base-partition) pairs."""
        y_values = np.asarray(y_values, dtype=np.float64)
        base_partitions = np.asarray(base_partitions)
        result = np.empty(y_values.shape, dtype=np.int64)
        for partition in range(self._num_base_partitions):
            mask = base_partitions == partition
            if not mask.any():
                continue
            result[mask] = self._models[partition].partitions_of(
                y_values[mask], num_partitions
            )
        return result

    def partition_range(
        self, low: float, high: float, base_partition: int, num_partitions: int
    ) -> tuple[int, int]:
        """Inclusive partition-id range of ``[low, high]`` within one base partition."""
        model = self.model_for(base_partition)
        return model.partition_range(low, high, num_partitions)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint (deduplicating the shared marginal)."""
        total = self._marginal.size_bytes()
        for model in self._models:
            if model is not self._marginal:
                total += model.size_bytes()
        return total
