"""Histograms over data values and over query filter ranges.

Two kinds of histogram appear in the paper:

* Equi-width histograms over a dimension's value domain, used as cheap CDF
  approximations and as the discretization underlying the skew tree (§4.2.1,
  by default 128 bins, or one bin per unique value when there are fewer).
* The *query histogram* ``Hist_i(Q, a, b, n)``: each query contributes a unit
  of mass spread uniformly over the bins its filter range intersects, so the
  total mass equals ``|Q|`` (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import QueryError


@dataclass(frozen=True)
class EquiWidthHistogram:
    """An equi-width histogram over the integer range ``[low, high]``.

    ``edges`` has ``num_bins + 1`` entries; bin ``j`` covers
    ``[edges[j], edges[j+1])`` except the last bin, which also includes the
    upper edge so that the domain maximum falls into a bin.
    """

    edges: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.counts) + 1:
            raise ValueError(
                f"expected len(edges) == len(counts) + 1, got {len(self.edges)} "
                f"and {len(self.counts)}"
            )

    @property
    def num_bins(self) -> int:
        """Number of histogram bins."""
        return len(self.counts)

    @property
    def low(self) -> float:
        """Inclusive lower edge of the histogram domain."""
        return float(self.edges[0])

    @property
    def high(self) -> float:
        """Inclusive upper edge of the histogram domain."""
        return float(self.edges[-1])

    @property
    def total(self) -> float:
        """Total mass across all bins."""
        return float(self.counts.sum())

    @classmethod
    def from_values(
        cls, values: np.ndarray, num_bins: int = 128
    ) -> "EquiWidthHistogram":
        """Build a histogram of data values.

        If the dimension has fewer distinct values than ``num_bins``, one bin
        is created per distinct value, mirroring the skew-tree construction
        rule in §4.3.2.
        """
        values = np.asarray(values)
        if values.size == 0:
            raise ValueError("cannot build a histogram over an empty value array")
        unique = np.unique(values)
        if len(unique) <= num_bins:
            edges = np.append(unique.astype(np.float64), float(unique[-1]) + 1.0)
            counts = np.array(
                [np.count_nonzero(values == value) for value in unique],
                dtype=np.float64,
            )
            return cls(edges=edges, counts=counts)
        counts, edges = np.histogram(values, bins=num_bins)
        return cls(edges=edges.astype(np.float64), counts=counts.astype(np.float64))

    def bin_of(self, value: float) -> int:
        """Index of the bin containing ``value`` (clamped to the domain)."""
        index = int(np.searchsorted(self.edges, value, side="right")) - 1
        return int(np.clip(index, 0, self.num_bins - 1))

    def bin_range(self, low: float, high: float) -> tuple[int, int]:
        """Half-open bin index range ``[first, last + 1)`` intersecting ``[low, high]``."""
        if high < low:
            raise QueryError(f"invalid range [{low}, {high}]")
        return self.bin_of(low), self.bin_of(high) + 1

    def normalized(self) -> np.ndarray:
        """Counts normalized to sum to one (the empirical PDF over bins)."""
        total = self.total
        if total == 0:
            return np.full(self.num_bins, 1.0 / self.num_bins)
        return self.counts / total


def query_histogram(
    intervals: list[tuple[float, float]],
    low: float,
    high: float,
    num_bins: int = 128,
    edges: np.ndarray | None = None,
) -> EquiWidthHistogram:
    """Build ``Hist_i(Q, a, b, n)`` from per-query filter intervals.

    Parameters
    ----------
    intervals:
        One ``(low, high)`` filter range per query over the dimension, already
        clipped by the caller if desired.  Queries that do not intersect
        ``[low, high]`` contribute nothing.
    low, high:
        The histogram domain ``[a, b)``; typically a Grid Tree node's extent.
    num_bins:
        Number of bins (128 by default, as in §4.3.2).
    edges:
        Optional externally supplied bin edges (e.g. one bin per unique value).
    """
    if high <= low:
        raise QueryError(f"histogram domain [{low}, {high}) is empty")
    if edges is None:
        edges = np.linspace(low, high, num_bins + 1)
    else:
        edges = np.asarray(edges, dtype=np.float64)
        num_bins = len(edges) - 1
    counts = np.zeros(num_bins, dtype=np.float64)
    histogram = EquiWidthHistogram(edges=edges, counts=counts)
    for q_low, q_high in intervals:
        clipped_low = max(q_low, low)
        clipped_high = min(q_high, high - 1e-9)
        if clipped_high < clipped_low:
            continue
        first, last = histogram.bin_range(clipped_low, clipped_high)
        span = last - first
        counts[first:last] += 1.0 / span
    return EquiWidthHistogram(edges=edges, counts=counts)
