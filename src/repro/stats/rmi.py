"""A two-layer Recursive Model Index (RMI) over one dimension.

Flood's original implementation models per-dimension CDFs with an RMI
(Kraska et al., SIGMOD 2018).  The paper states the modelling choice is
orthogonal, and the reproduction's default CDF model is the quantile-knot
:class:`~repro.stats.cdf.EmpiricalCDF`; this module provides a faithful RMI
alternative so the substitution can be validated (see the ablation tests and
the optimizer-comparison benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import IndexBuildError


def _fit_linear(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    """Least-squares fit of ``y ~ slope * x + intercept`` (degenerate-safe)."""
    if x.size == 0:
        return 0.0, 0.0
    if x.size == 1 or float(np.ptp(x)) == 0.0:
        return 0.0, float(np.mean(y))
    slope, intercept = np.polyfit(x, y, deg=1)
    return float(slope), float(intercept)


class RecursiveModelIndex:
    """Two-layer RMI mapping a value to its CDF position in ``[0, 1]``.

    The root linear model routes a value to one of ``num_leaf_models`` leaf
    linear models; the selected leaf predicts the CDF.  Predictions are
    clamped to each leaf's observed CDF range so the overall mapping is
    monotone enough for partition assignment.
    """

    def __init__(self, values: np.ndarray, num_leaf_models: int = 32) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise IndexBuildError("cannot fit an RMI over an empty value array")
        if num_leaf_models < 1:
            raise ValueError("num_leaf_models must be >= 1")
        ordered = np.sort(values)
        n = ordered.size
        cdf = np.arange(1, n + 1) / n
        self._min = float(ordered[0])
        self._max = float(ordered[-1])
        self._num_leaves = num_leaf_models

        # Root model predicts the leaf id from the value.
        leaf_ids = np.minimum(
            (cdf * num_leaf_models).astype(np.int64), num_leaf_models - 1
        )
        self._root_slope, self._root_intercept = _fit_linear(
            ordered, leaf_ids.astype(np.float64)
        )

        # Leaf models predict the CDF from the value, with clamping bounds.
        self._leaf_slopes = np.zeros(num_leaf_models)
        self._leaf_intercepts = np.zeros(num_leaf_models)
        self._leaf_low = np.zeros(num_leaf_models)
        self._leaf_high = np.ones(num_leaf_models)
        for leaf in range(num_leaf_models):
            mask = leaf_ids == leaf
            if not mask.any():
                # Empty leaf: fall back to the midpoint of its nominal range.
                midpoint = (leaf + 0.5) / num_leaf_models
                self._leaf_intercepts[leaf] = midpoint
                self._leaf_low[leaf] = leaf / num_leaf_models
                self._leaf_high[leaf] = (leaf + 1) / num_leaf_models
                continue
            slope, intercept = _fit_linear(ordered[mask], cdf[mask])
            self._leaf_slopes[leaf] = slope
            self._leaf_intercepts[leaf] = intercept
            self._leaf_low[leaf] = float(cdf[mask].min())
            self._leaf_high[leaf] = float(cdf[mask].max())

    def _leaf_of(self, x: float) -> int:
        predicted = self._root_slope * x + self._root_intercept
        return int(np.clip(int(predicted), 0, self._num_leaves - 1))

    def evaluate(self, x: float) -> float:
        """Return the predicted CDF of ``x``, clamped to ``[0, 1]``."""
        if x <= self._min:
            return 0.0
        if x >= self._max:
            return 1.0
        leaf = self._leaf_of(x)
        prediction = self._leaf_slopes[leaf] * x + self._leaf_intercepts[leaf]
        prediction = float(
            np.clip(prediction, self._leaf_low[leaf], self._leaf_high[leaf])
        )
        return float(np.clip(prediction, 0.0, 1.0))

    def evaluate_many(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`."""
        return np.array([self.evaluate(float(x)) for x in np.asarray(values)])

    def partition_of(self, x: float, num_partitions: int) -> int:
        """Partition id of value ``x`` under this model."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        return min(int(self.evaluate(x) * num_partitions), num_partitions - 1)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the model parameters."""
        per_leaf = 8 * 4  # slope, intercept, low, high
        return 16 + self._num_leaves * per_leaf
