"""Statistical substrates: histograms, CDF models, EMD, correlation, clustering.

These are the building blocks the learned indexes are made of:

* CDF models map values to uniform partition ids (Flood §2.2, Augmented Grid §5.2).
* Query histograms and the Earth Mover's Distance define query skew (§4.2.1).
* The correlation tools fit functional mappings and decide between
  partitioning strategies (§5.2.1, §5.3.2 heuristics).
* DBSCAN clusters queries into query types (§4.3.1).
"""

from repro.stats.histogram import EquiWidthHistogram, query_histogram
from repro.stats.emd import earth_movers_distance, uniform_like
from repro.stats.cdf import EmpiricalCDF, HistogramCDF, ConditionalCDF
from repro.stats.rmi import RecursiveModelIndex
from repro.stats.correlation import (
    BoundedLinearModel,
    monotonic_correlation,
    empty_cell_fraction,
    correlation_report,
)
from repro.stats.clustering import dbscan

__all__ = [
    "EquiWidthHistogram",
    "query_histogram",
    "earth_movers_distance",
    "uniform_like",
    "EmpiricalCDF",
    "HistogramCDF",
    "ConditionalCDF",
    "RecursiveModelIndex",
    "BoundedLinearModel",
    "monotonic_correlation",
    "empty_cell_fraction",
    "correlation_report",
    "dbscan",
]
