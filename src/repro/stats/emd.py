"""Earth Mover's Distance between one-dimensional binned distributions.

Query skew (§4.2.1) is defined as the EMD between the empirical PDF of query
mass over histogram bins and the uniform distribution over the same bins.
For one-dimensional histograms with equal-width bins the EMD has a closed
form: the L1 distance between the cumulative distributions.
"""

from __future__ import annotations

import numpy as np


def earth_movers_distance(p: np.ndarray, q: np.ndarray) -> float:
    """EMD between two non-negative mass vectors over aligned bins.

    The inputs need not be normalized; they are compared as distributions, so
    each is divided by its own total mass first.  Two all-zero vectors have
    distance zero.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"distributions have different shapes {p.shape} vs {q.shape}")
    if p.size == 0:
        return 0.0
    p_total = p.sum()
    q_total = q.sum()
    if p_total == 0 and q_total == 0:
        return 0.0
    p_norm = p / p_total if p_total > 0 else np.full_like(p, 1.0 / p.size)
    q_norm = q / q_total if q_total > 0 else np.full_like(q, 1.0 / q.size)
    return float(np.abs(np.cumsum(p_norm - q_norm)).sum())


def uniform_like(mass: np.ndarray) -> np.ndarray:
    """The uniform distribution with the same total mass and bin count as ``mass``.

    This is ``Uni_i(Q, x, y)`` from §4.2.1: each bin receives the average of
    the histogram mass over the range.
    """
    mass = np.asarray(mass, dtype=np.float64)
    if mass.size == 0:
        return mass.copy()
    return np.full(mass.shape, mass.sum() / mass.size)
