"""Correlation detection and the functional-mapping regression model.

The Augmented Grid chooses among three partitioning strategies per dimension
using correlation statistics (§5.2, §5.3.2 heuristics):

* a *functional mapping* (a bounded linear regression) when two dimensions are
  tightly monotonically correlated — the mapping's error bound must be below
  10% of the target dimension's domain;
* a *conditional CDF* when independently partitioning the pair would leave
  more than 25% of cells in their grid hyperplane empty;
* an independent CDF otherwise.

This module provides the statistics those decisions are based on and the
:class:`BoundedLinearModel` that implements the mapping itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.common.errors import IndexBuildError


@dataclass(frozen=True)
class BoundedLinearModel:
    """A linear regression with hard lower/upper error bounds.

    §5.2.1: "we implement the mapping function as a simple linear regression
    LR trained to predict X from Y, with lower and upper error bounds el and
    eu.  Therefore, a functional mapping is encoded in four floating point
    numbers."  Given a filter range over the mapped dimension Y, the model
    produces a covering range over the target dimension X.
    """

    slope: float
    intercept: float
    error_low: float
    error_high: float

    @classmethod
    def fit(cls, mapped_values: np.ndarray, target_values: np.ndarray) -> "BoundedLinearModel":
        """Fit the regression predicting target X from mapped Y with hard bounds."""
        y = np.asarray(mapped_values, dtype=np.float64)
        x = np.asarray(target_values, dtype=np.float64)
        if y.shape != x.shape:
            raise IndexBuildError("mapped and target value arrays differ in length")
        if y.size == 0:
            raise IndexBuildError("cannot fit a functional mapping on no data")
        if y.size == 1 or float(np.ptp(y)) == 0.0:
            slope, intercept = 0.0, float(np.mean(x))
        else:
            # Near-degenerate inputs (e.g. subnormal spreads) can make the
            # least-squares scaling inside polyfit blow up; any finite
            # (slope, intercept) is valid because the error bounds below are
            # computed from the actual residuals, so fall back to a constant
            # model rather than failing the whole index build.
            try:
                with np.errstate(all="ignore"):
                    slope, intercept = np.polyfit(y, x, deg=1)
            except np.linalg.LinAlgError:
                slope, intercept = 0.0, float(np.mean(x))
            if not (np.isfinite(slope) and np.isfinite(intercept)):
                slope, intercept = 0.0, float(np.mean(x))
        predictions = slope * y + intercept
        residuals = x - predictions
        # error_low is how far the prediction can overshoot the true minimum,
        # error_high how far it can undershoot the true maximum.
        error_low = float(max(0.0, -residuals.min())) if residuals.size else 0.0
        error_high = float(max(0.0, residuals.max())) if residuals.size else 0.0
        return cls(
            slope=float(slope),
            intercept=float(intercept),
            error_low=error_low,
            error_high=error_high,
        )

    def widened(
        self, mapped_values: np.ndarray, target_values: np.ndarray
    ) -> "BoundedLinearModel":
        """Copy whose error bounds also cover the given rows.

        The regression itself (slope, intercept) is kept; only ``error_low``
        and ``error_high`` grow as needed, so the covering guarantee of
        :meth:`map_range` extends to rows appended after the original fit
        without re-running the regression over everything it ever saw.  The
        delta absorb path uses this for small increments — bounds only ever
        widen, so a drifting region should eventually be refit.
        """
        y = np.asarray(mapped_values, dtype=np.float64)
        x = np.asarray(target_values, dtype=np.float64)
        if y.shape != x.shape:
            raise IndexBuildError("mapped and target value arrays differ in length")
        if y.size == 0:
            return self
        residuals = x - (self.slope * y + self.intercept)
        return BoundedLinearModel(
            slope=self.slope,
            intercept=self.intercept,
            error_low=max(self.error_low, float(-residuals.min())),
            error_high=max(self.error_high, float(residuals.max())),
        )

    def predict(self, y: float) -> float:
        """Point prediction of the target value for mapped value ``y``."""
        return self.slope * y + self.intercept

    def map_range(self, y_low: float, y_high: float) -> tuple[float, float]:
        """Map a filter range over Y to a covering range over X.

        The guarantee from §5.2.1: every point whose Y value lies in
        ``[y_low, y_high]`` has its X value inside the returned range.
        """
        candidates = (self.predict(y_low), self.predict(y_high))
        x_low = min(candidates) - self.error_low
        x_high = max(candidates) + self.error_high
        return x_low, x_high

    @property
    def error_span(self) -> float:
        """Total width added by the error bounds."""
        return self.error_low + self.error_high

    def relative_error(self, target_domain_width: float) -> float:
        """Error span relative to the target dimension's domain width."""
        if target_domain_width <= 0:
            return float("inf")
        return self.error_span / target_domain_width

    def size_bytes(self) -> int:
        """Four floating point numbers (§5.2.1)."""
        return 32


@dataclass(frozen=True)
class CorrelationInfo:
    """Pairwise correlation summary between two dimensions."""

    dimension_a: str
    dimension_b: str
    spearman: float
    pearson: float

    @property
    def is_monotonic(self) -> bool:
        """Whether the pair is (strongly) monotonically correlated."""
        return abs(self.spearman) >= 0.8


def monotonic_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation between two value arrays (NaN-safe, in [-1, 1])."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("arrays must have equal length")
    if x.size < 2 or float(np.ptp(x)) == 0.0 or float(np.ptp(y)) == 0.0:
        return 0.0
    rho = scipy_stats.spearmanr(x, y).statistic
    if np.isnan(rho):
        return 0.0
    return float(rho)


def empty_cell_fraction(
    x_partitions: np.ndarray,
    y_partitions: np.ndarray,
    num_x_partitions: int,
    num_y_partitions: int,
) -> float:
    """Fraction of cells in the X×Y grid hyperplane containing no points.

    This is the statistic behind the conditional-CDF heuristic (§5.3.2): if
    independently partitioning X and Y leaves more than 25% of their pairwise
    cells empty, the data is correlated enough to justify ``CDF(Y | X)``.
    """
    if num_x_partitions < 1 or num_y_partitions < 1:
        raise ValueError("partition counts must be >= 1")
    x_partitions = np.asarray(x_partitions)
    y_partitions = np.asarray(y_partitions)
    total_cells = num_x_partitions * num_y_partitions
    if x_partitions.size == 0:
        return 1.0
    cell_ids = x_partitions * num_y_partitions + y_partitions
    occupied = len(np.unique(cell_ids))
    return 1.0 - occupied / total_cells


def correlation_report(
    columns: dict[str, np.ndarray], sample_size: int = 10_000, seed: int = 13
) -> list[CorrelationInfo]:
    """Pairwise correlation summary over a set of columns (on a row sample)."""
    names = list(columns)
    if not names:
        return []
    length = len(next(iter(columns.values())))
    rng = np.random.default_rng(seed)
    if length > sample_size:
        chosen = np.sort(rng.choice(length, size=sample_size, replace=False))
        sampled = {name: np.asarray(values)[chosen] for name, values in columns.items()}
    else:
        sampled = {name: np.asarray(values) for name, values in columns.items()}
    report = []
    for i, name_a in enumerate(names):
        for name_b in names[i + 1 :]:
            a = sampled[name_a].astype(np.float64)
            b = sampled[name_b].astype(np.float64)
            spearman = monotonic_correlation(a, b)
            if a.size < 2 or float(np.ptp(a)) == 0.0 or float(np.ptp(b)) == 0.0:
                pearson = 0.0
            else:
                pearson = float(np.corrcoef(a, b)[0, 1])
                if np.isnan(pearson):
                    pearson = 0.0
            report.append(
                CorrelationInfo(
                    dimension_a=name_a,
                    dimension_b=name_b,
                    spearman=spearman,
                    pearson=pearson,
                )
            )
    return report
