"""Fused filter→aggregate kernels over contiguous column slices.

These compute count/sum/min/max directly from a value slice plus an optional
boolean selection mask, without ever materializing the selected rows
(``values[mask]``).  Sums accumulate in ``int64`` explicitly, which is exact
for every storage dtype the column store narrows to (uint8/int16/int32/int64
all embed in int64), so results are bit-identical to the materializing path.

``mask=None`` means "every row in the slice is selected" — the exact-range
case, where the kernel degenerates to a plain slice-level reduction.
"""

from __future__ import annotations

import numpy as np


def fused_count(mask: np.ndarray) -> int:
    """Number of selected rows in ``mask``."""
    return int(np.count_nonzero(mask))


def fused_sum(values: np.ndarray, mask: np.ndarray | None = None) -> int:
    """Exact integer sum of the selected values (no row materialization)."""
    if mask is None:
        return int(np.sum(values, dtype=np.int64))
    return int(np.sum(values, where=mask, dtype=np.int64))


def fused_min(values: np.ndarray, mask: np.ndarray | None = None) -> int:
    """Minimum of the selected values.

    The caller must guarantee at least one selected row (the executor checks
    the fused count first), matching ``values[mask].min()`` semantics.
    """
    if mask is None:
        return int(values.min())
    initial = np.iinfo(values.dtype).max
    return int(np.amin(values, where=mask, initial=initial))


def fused_max(values: np.ndarray, mask: np.ndarray | None = None) -> int:
    """Maximum of the selected values (at least one row must be selected)."""
    if mask is None:
        return int(values.max())
    initial = np.iinfo(values.dtype).min
    return int(np.amax(values, where=mask, initial=initial))
