"""Contiguous range scans over the clustered column store.

Every index in the reproduction answers a query by producing a set of
contiguous physical row ranges (*cell ranges* in the paper's terminology) and
delegating the actual scan to this module.  The executor implements the
paper's single scan-time optimization (§6.1): when a range is known ahead of
time to contain only matching rows (an *exact* range), per-value filter checks
are skipped, and for COUNT aggregations the underlying data is not touched at
all.

The executor also records machine-independent work counters
(:class:`ScanStats`) that the cost model and the benchmark harness use in
place of raw wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.common.errors import QueryError
from repro.storage.kernels import fused_count, fused_max, fused_min, fused_sum
from repro.storage.table import Table


@dataclass(frozen=True, slots=True)
class RowRange:
    """A contiguous physical row range ``[start, stop)``.

    ``exact`` marks ranges whose rows are all guaranteed to satisfy the query
    filter, which enables the scan-time optimization described in §6.1.
    """

    start: int
    stop: int
    exact: bool = False

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise QueryError(f"invalid row range [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass
class ScanStats:
    """Machine-independent accounting of the work done by one or more scans.

    ``values_scanned`` counts individual cell values logically read (filter
    columns per inexact range, plus the aggregate column when one is read);
    ``bytes_scanned`` weighs the same reads by each column's storage dtype, so
    an all-``int64`` table scans exactly ``8 * values_scanned`` bytes and any
    smaller ratio is the narrow-dtype win.  Both are logical counters: batch
    caches that share physical work do not reduce them.
    """

    points_scanned: int = 0
    cell_ranges: int = 0
    rows_matched: int = 0
    dims_accessed: int = 0
    values_scanned: int = 0
    bytes_scanned: int = 0

    def merge(self, other: "ScanStats") -> "ScanStats":
        """Accumulate another stats object into this one (in place)."""
        self.points_scanned += other.points_scanned
        self.cell_ranges += other.cell_ranges
        self.rows_matched += other.rows_matched
        self.dims_accessed += other.dims_accessed
        self.values_scanned += other.values_scanned
        self.bytes_scanned += other.bytes_scanned
        return self

    def copy(self) -> "ScanStats":
        """An independent copy (batch paths hand out one per query)."""
        return ScanStats(
            points_scanned=self.points_scanned,
            cell_ranges=self.cell_ranges,
            rows_matched=self.rows_matched,
            dims_accessed=self.dims_accessed,
            values_scanned=self.values_scanned,
            bytes_scanned=self.bytes_scanned,
        )

    @property
    def scan_work(self) -> int:
        """The cost-model scan term: points scanned times filtered dimensions."""
        return self.points_scanned * max(self.dims_accessed, 1)


def coalesce_ranges(ranges: Iterable[RowRange]) -> list[RowRange]:
    """Merge adjacent or overlapping row ranges into maximal contiguous runs.

    Adjacent ranges are only merged when they agree on ``exact``: merging an
    exact range into an inexact one would either lose the optimization or
    wrongly extend it.

    Planners emit ranges already ordered by ``(start, stop)``, so the common
    case skips the sort entirely.
    """
    ordered = ranges if isinstance(ranges, list) else list(ranges)
    previous: RowRange | None = None
    for current in ordered:
        if previous is not None and (
            current.start < previous.start
            or (current.start == previous.start and current.stop < previous.stop)
        ):
            ordered = sorted(ordered, key=lambda r: (r.start, r.stop))
            break
        previous = current
    merged: list[RowRange] = []
    for current in ordered:
        if len(current) == 0:
            continue
        if merged and current.start <= merged[-1].stop and current.exact == merged[-1].exact:
            previous = merged[-1]
            merged[-1] = RowRange(
                previous.start, max(previous.stop, current.stop), exact=previous.exact
            )
        else:
            merged.append(current)
    return merged


class ScanExecutor:
    """Evaluates filter predicates and aggregations over physical row ranges."""

    def __init__(self, table: Table) -> None:
        self._table = table
        self._itemsizes: dict[str, int] = {}

    @property
    def table(self) -> Table:
        """The clustered table this executor scans."""
        return self._table

    def _itemsize(self, dim: str) -> int:
        """Bytes per stored value of ``dim`` (dtype is fixed per column)."""
        size = self._itemsizes.get(dim)
        if size is None:
            size = self._table.column(dim).itemsize
            self._itemsizes[dim] = size
        return size

    def _slice(
        self,
        dim: str,
        start: int,
        stop: int,
        slice_cache: dict | None = None,
    ) -> np.ndarray:
        """Column values in ``[start, stop)``, optionally cached across a batch."""
        if slice_cache is None:
            return self._table.column(dim).slice(start, stop)
        key = (dim, start, stop)
        values = slice_cache.get(key)
        if values is None:
            values = self._table.column(dim).slice(start, stop)
            slice_cache[key] = values
        return values

    def _filter_mask(
        self,
        start: int,
        stop: int,
        filters: Mapping[str, tuple[int, int]],
        slice_cache: dict | None = None,
        mask_cache: dict | None = None,
    ) -> np.ndarray:
        """Boolean mask of rows in ``[start, stop)`` matching every filter.

        Inside a batch, queries of the same type scan the same merged ranges
        with the same (or overlapping) predicates; the caches let those
        queries reuse both the gathered column slices and the per-dimension
        comparison masks instead of recomputing them.
        """
        key = None
        if mask_cache is not None:
            key = (start, stop, tuple(sorted(filters.items())))
            cached = mask_cache.get(key)
            if cached is not None:
                return cached
        mask = np.ones(stop - start, dtype=bool)
        for dim, (low, high) in filters.items():
            dim_mask = None
            dim_key = None
            if mask_cache is not None:
                dim_key = (start, stop, dim, low, high)
                dim_mask = mask_cache.get(dim_key)
            if dim_mask is None:
                values = self._slice(dim, start, stop, slice_cache)
                dim_mask = (values >= low) & (values <= high)
                if mask_cache is not None:
                    mask_cache[dim_key] = dim_mask
            mask &= dim_mask
        if mask_cache is not None:
            mask_cache[key] = mask
        return mask

    def execute(
        self,
        ranges: Sequence[RowRange],
        filters: Mapping[str, tuple[int, int]],
        aggregate: str = "count",
        aggregate_column: str | None = None,
    ) -> tuple[float, ScanStats]:
        """Scan ``ranges``, apply ``filters``, and compute an aggregation.

        Parameters
        ----------
        ranges:
            Physical row ranges to scan (typically produced by an index).
        filters:
            ``{dimension: (low, high)}`` inclusive bounds in storage units.
        aggregate:
            One of ``count``, ``sum``, ``avg``, ``min``, ``max``.
        aggregate_column:
            Column to aggregate; required for everything except ``count``.

        Returns
        -------
        (result, stats):
            The aggregate value and the work counters for this query.
        """
        self._validate_aggregate(aggregate, aggregate_column)
        merged = coalesce_ranges(ranges)
        return self._execute_merged(merged, filters, aggregate, aggregate_column)

    def _validate_aggregate(self, aggregate: str, aggregate_column: str | None) -> None:
        if aggregate not in {"count", "sum", "avg", "min", "max"}:
            raise QueryError(f"unsupported aggregate {aggregate!r}")
        if aggregate != "count" and aggregate_column is None:
            raise QueryError(f"aggregate {aggregate!r} requires aggregate_column")
        if aggregate_column is not None and aggregate_column not in self._table:
            raise QueryError(
                f"aggregate column {aggregate_column!r} does not exist in table "
                f"{self._table.name!r}"
            )

    def _execute_merged(
        self,
        merged: Sequence[RowRange],
        filters: Mapping[str, tuple[int, int]],
        aggregate: str,
        aggregate_column: str | None,
        slice_cache: dict | None = None,
        mask_cache: dict | None = None,
    ) -> tuple[float, ScanStats]:
        """Scan already-coalesced ranges; the caches are shared across a batch."""
        stats = ScanStats(dims_accessed=len(filters))
        stats.cell_ranges = len(merged)
        filter_bytes_per_row = sum(self._itemsize(dim) for dim in filters)
        aggregate_itemsize = (
            self._itemsize(aggregate_column) if aggregate_column is not None else 0
        )

        count = 0
        total = 0.0
        minimum: float | None = None
        maximum: float | None = None

        for row_range in merged:
            start, stop = row_range.start, row_range.stop
            if stop > self._table.num_rows:
                raise QueryError(
                    f"row range [{start}, {stop}) exceeds table size {self._table.num_rows}"
                )
            length = stop - start
            if row_range.exact:
                # Exact ranges skip per-value filter checks entirely.
                matched = length
                count += matched
                stats.rows_matched += matched
                if aggregate == "count":
                    continue
                stats.points_scanned += length
                mask = None
            else:
                stats.points_scanned += length
                stats.values_scanned += length * len(filters)
                stats.bytes_scanned += length * filter_bytes_per_row
                mask = self._filter_mask(start, stop, filters, slice_cache, mask_cache)
                matched = fused_count(mask)
                count += matched
                stats.rows_matched += matched
                if aggregate == "count" or matched == 0:
                    continue

            # Fused aggregation: reduce over the whole slice under the mask
            # instead of materializing ``values[mask]``.
            values = self._slice(aggregate_column, start, stop, slice_cache)
            stats.values_scanned += length
            stats.bytes_scanned += length * aggregate_itemsize
            if aggregate in {"sum", "avg"}:
                total += float(fused_sum(values, mask))
            if aggregate == "min":
                candidate = float(fused_min(values, mask))
                minimum = candidate if minimum is None else min(minimum, candidate)
            if aggregate == "max":
                candidate = float(fused_max(values, mask))
                maximum = candidate if maximum is None else max(maximum, candidate)

        if aggregate == "count":
            return float(count), stats
        if aggregate == "sum":
            return total, stats
        if aggregate == "avg":
            return (total / count) if count else float("nan"), stats
        if aggregate == "min":
            return minimum if minimum is not None else float("nan"), stats
        return maximum if maximum is not None else float("nan"), stats

    def execute_batch(
        self,
        ranges_per_query: Sequence[Sequence[RowRange]],
        filters_per_query: Sequence[Mapping[str, tuple[int, int]]],
        aggregates: Sequence[str] | str = "count",
        aggregate_columns: Sequence[str | None] | str | None = None,
    ) -> list[tuple[float, ScanStats]]:
        """Execute a batch of queries with shared physical work.

        Results are returned in input order and are identical to calling
        :meth:`execute` per query.  The batch path shares three caches across
        the queries:

        * column slices gathered per merged range (one gather serves every
          query that scans the range),
        * per-dimension and conjunctive filter masks (skewed workloads repeat
          predicates, so boundary-range filtering is paid once per distinct
          predicate instead of once per query),
        * whole results for queries whose merged ranges, filters, and
          aggregation coincide (common-subexpression elimination across the
          batch; duplicated queries still report their full logical
          :class:`ScanStats`, only the physical work is shared).
        """
        if len(ranges_per_query) != len(filters_per_query):
            raise QueryError(
                "execute_batch needs one filter mapping per range list "
                f"({len(ranges_per_query)} != {len(filters_per_query)})"
            )
        num_queries = len(ranges_per_query)
        if isinstance(aggregates, str):
            aggregates = [aggregates] * num_queries
        if aggregate_columns is None or isinstance(aggregate_columns, str):
            aggregate_columns = [aggregate_columns] * num_queries
        if len(aggregates) != num_queries or len(aggregate_columns) != num_queries:
            raise QueryError("aggregate specs must match the number of queries")

        slice_cache: dict = {}
        mask_cache: dict = {}
        result_cache: dict = {}
        results: list[tuple[float, ScanStats]] = []
        for ranges, filters, aggregate, aggregate_column in zip(
            ranges_per_query, filters_per_query, aggregates, aggregate_columns
        ):
            self._validate_aggregate(aggregate, aggregate_column)
            merged = coalesce_ranges(ranges)
            key = (
                tuple((r.start, r.stop, r.exact) for r in merged),
                tuple(sorted(filters.items())),
                aggregate,
                aggregate_column,
            )
            cached = result_cache.get(key)
            if cached is not None:
                value, stats = cached
            else:
                value, stats = self._execute_merged(
                    merged, filters, aggregate, aggregate_column,
                    slice_cache, mask_cache,
                )
                result_cache[key] = (value, stats)
            results.append((value, stats.copy()))
        return results
