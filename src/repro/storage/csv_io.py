"""CSV ingestion and export for the column store.

The paper's datasets arrive as flat files (TLC trip records, Kaggle stock
prices, TPC-H ``dbgen`` output).  This module provides the small amount of
I/O a downstream user needs to get such a file into a
:class:`~repro.storage.table.Table` — with the same encoding rules the rest of
the storage layer uses (§6.1): integer columns stored as-is, floating point
columns fixed-point scaled, string columns dictionary encoded.

Only the features the indexes care about are implemented: typed columns and a
header row.  Anything more exotic (quoting dialects, NULLs, nested values)
should be cleaned up before ingestion.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.common.errors import SchemaError
from repro.storage.table import Table


def _infer_one(value: str) -> object:
    """Parse one CSV cell into int, float, or string (in that priority order)."""
    text = value.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _infer_column(values: Sequence[str]) -> list:
    """Parse a whole column, falling back to the widest type any cell needs.

    If every cell parses as an integer the column is integral; if every cell
    parses as a number the column is floating point; otherwise it is a string
    column (and every cell is kept verbatim).
    """
    parsed = [_infer_one(value) for value in values]
    if all(isinstance(value, int) for value in parsed):
        return parsed
    if all(isinstance(value, (int, float)) for value in parsed):
        return [float(value) for value in parsed]
    return [str(value).strip() for value in values]


def read_csv(
    path: str | Path,
    table_name: str | None = None,
    columns: Iterable[str] | None = None,
    delimiter: str = ",",
    max_rows: int | None = None,
) -> Table:
    """Load a CSV file with a header row into a :class:`Table`.

    Parameters
    ----------
    path:
        CSV file to read.  The first row must be the header.
    table_name:
        Name of the resulting table; defaults to the file's stem.
    columns:
        Optional subset of header columns to keep (in the given order).
    delimiter:
        Field separator; defaults to a comma.
    max_rows:
        Optional cap on the number of data rows read (useful for sampling a
        large file before committing to a full ingest).
    """
    file_path = Path(path)
    if not file_path.exists():
        raise SchemaError(f"CSV file {file_path} does not exist")

    with open(file_path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {file_path} is empty") from None
        header = [name.strip() for name in header]
        if len(set(header)) != len(header):
            raise SchemaError(f"CSV header has duplicate column names: {header}")

        keep = list(columns) if columns is not None else header
        missing = [name for name in keep if name not in header]
        if missing:
            raise SchemaError(f"requested columns {missing} are not in the CSV header {header}")
        positions = [header.index(name) for name in keep]

        raw: dict[str, list[str]] = {name: [] for name in keep}
        for row_number, row in enumerate(reader):
            if max_rows is not None and row_number >= max_rows:
                break
            if len(row) != len(header):
                raise SchemaError(
                    f"row {row_number + 2} of {file_path} has {len(row)} fields, "
                    f"expected {len(header)}"
                )
            for name, position in zip(keep, positions):
                raw[name].append(row[position])

    if not raw or not next(iter(raw.values())):
        raise SchemaError(f"CSV file {file_path} contains a header but no data rows")

    data = {name: _infer_column(values) for name, values in raw.items()}
    return Table.from_dict(table_name or file_path.stem, data)


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> Path:
    """Write ``table`` to a CSV file using user-facing values.

    Dictionary-encoded columns are written as their original strings and
    fixed-point columns as floats, so a round trip through
    :func:`read_csv` reproduces the same logical table (physical row order is
    whatever the table currently has, i.e. the clustered order if an index
    owns it).
    """
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    names = table.column_names
    decoders = {name: table.column(name) for name in names}
    with open(file_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for row_id in range(table.num_rows):
            writer.writerow(
                [decoders[name].to_user(int(table.values(name)[row_id])) for name in names]
            )
    return file_path
