"""Saving and loading tables and built indexes (§8, "Persistence").

The paper's index is purely in-memory, but §8 notes that its techniques
"could be incorporated into a multi-dimensional index for data resident on
disk or SSD."  The first prerequisite for that is a durable representation of
the clustered table and the optimized index structure, which this module
provides:

* :func:`save_table` / :func:`load_table` write a
  :class:`~repro.storage.table.Table` as one raw ``.npy`` file per column
  (under ``columns/``) plus a JSON manifest describing each column's storage
  dtype and encoding (dictionary values or fixed-point scale), so the table
  round-trips exactly — narrow dtypes included — along with the physical row
  order a clustered index imposed.  Raw ``.npy`` files can be opened with
  ``mmap_mode="r"``: :func:`load_index` does so by default, so N shard
  workers (or any number of loaded snapshots of the same table) share pages
  instead of heap copies.
* :func:`save_index` / :func:`load_index` snapshot a *built* index.  The
  optimized structure (Grid Tree, Augmented Grids, baselines' trees) is
  pickled; the table it was clustered over is stored with
  :func:`save_table` and re-attached on load, so the snapshot does not keep
  two copies of the data and loading restores a fully queryable index without
  re-optimizing or re-sorting anything.
* Updatable and sharded indexes snapshot structurally rather than as one
  pickle: a :class:`~repro.core.delta.DeltaBufferedIndex` stores its wrapped
  index under ``main/`` plus the delta buffer's columns, so pending inserts
  round-trip exactly; a :class:`~repro.core.sharding.ShardedIndex` stores
  each shard under ``shard_NN/`` (recursively — updatable shards keep their
  buffers) plus the partition manifest.  The index factory both wrappers
  carry is pickled when possible (module-level callables, classes,
  ``functools.partial``); an unpicklable factory (a lambda) is replaced on
  load by one that rebuilds a fresh instance of the wrapped index's class
  with its recorded config.

Objects that implement the serving contract but none of these layouts raise
a typed :class:`~repro.common.errors.IndexBuildError` instead of failing with
an ``AttributeError`` mid-write.

:func:`save_index` is crash-safe: the whole snapshot tree is staged into a
temporary sibling directory and swapped into place with directory renames
only after every file is written, so a crash mid-write (exercised by the
``persistence.save`` fault-injection site) never corrupts or removes an
existing snapshot at the destination.

Snapshots are trusted artifacts: like any pickle-based format they must only
be loaded from directories this process (or an equally trusted one) wrote.
"""

from __future__ import annotations

import json
import pickle
import shutil
from pathlib import Path

import numpy as np

from repro.baselines.base import ClusteredIndex
from repro.common import faults
from repro.common.errors import IndexBuildError, SchemaError
from repro.storage.column import Column, StorageMeta
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.scaling import FixedPointScaler
from repro.storage.scan import ScanExecutor
from repro.storage.table import Table

#: Manifest format version, bumped on any incompatible layout change.
#: Version 2: per-column raw ``.npy`` files (mmap-shareable) with the storage
#: dtype recorded in the manifest, replacing the v1 ``columns.npz`` archive.
FORMAT_VERSION = 2

_TABLE_MANIFEST = "table.json"
_TABLE_COLUMNS_DIR = "columns"
_INDEX_MANIFEST = "index.json"
_INDEX_PICKLE = "index.pkl"
_DELTA_MANIFEST = "delta.json"
_DELTA_MAIN_DIR = "main"
_BUFFER_VALUES = "buffer.npz"
_SHARDED_MANIFEST = "sharded.json"
_FACTORY_PICKLE = "factory.pkl"
_WORKLOAD_PICKLE = "workload.pkl"


# -- tables ---------------------------------------------------------------------------


def save_table(table: Table, directory: str | Path) -> Path:
    """Write ``table`` (values, encodings, physical row order) to ``directory``.

    The directory is created if needed.  Returns the directory path.
    """
    path = Path(directory)
    columns_dir = path / _TABLE_COLUMNS_DIR
    columns_dir.mkdir(parents=True, exist_ok=True)

    columns = []
    for position, name in enumerate(table.column_names):
        column = table.column(name)
        filename = f"col_{position:03d}.npy"
        np.save(columns_dir / filename, np.asarray(column.values))
        entry: dict = {
            "name": name,
            "kind": "int",
            "file": filename,
            "dtype": column.dtype.name,
            # Bounds let the loader rebuild StorageMeta without scanning the
            # values (keeps memory-mapped loads from touching any pages).
            "min": column.min() if len(column) else None,
            "max": column.max() if len(column) else None,
        }
        if column.dictionary is not None:
            entry["kind"] = "dictionary"
            entry["values"] = column.dictionary.values
        elif column.scaler is not None:
            entry["kind"] = "scaled"
            entry["decimals"] = column.scaler.decimals
        columns.append(entry)
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": table.name,
        "num_rows": table.num_rows,
        "columns": columns,
    }
    with open(path / _TABLE_MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return path


def load_table(directory: str | Path, *, mmap_mode: str | None = None) -> Table:
    """Load a table previously written by :func:`save_table`.

    ``mmap_mode="r"`` opens each column file as a read-only ``np.memmap``
    instead of reading it into the heap; the manifest's recorded dtype and
    bounds are attached as :class:`~repro.storage.column.StorageMeta`, so the
    load touches no data pages.
    """
    path = Path(directory)
    manifest_path = path / _TABLE_MANIFEST
    if not manifest_path.exists():
        raise SchemaError(f"no table manifest found in {path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported table snapshot version {manifest.get('format_version')!r}"
        )

    columns = []
    for entry in manifest["columns"]:
        name = entry["name"]
        values_path = path / _TABLE_COLUMNS_DIR / entry["file"]
        if not values_path.exists():
            raise SchemaError(f"column {name!r} listed in manifest but missing from values")
        values = np.load(values_path, mmap_mode=mmap_mode)
        meta = StorageMeta(
            dtype=np.dtype(entry["dtype"]),
            min_value=entry.get("min"),
            max_value=entry.get("max"),
        )
        if entry["kind"] == "dictionary":
            dictionary = DictionaryEncoder.from_ordered_values(entry["values"])
            columns.append(Column(name, values, dictionary=dictionary, meta=meta))
        elif entry["kind"] == "scaled":
            scaler = FixedPointScaler(decimals=int(entry["decimals"]))
            columns.append(Column(name, values, scaler=scaler, meta=meta))
        else:
            columns.append(Column(name, values, meta=meta))
    table = Table(manifest["name"], columns)
    if table.num_rows != manifest["num_rows"]:
        raise SchemaError(
            f"snapshot row count mismatch: manifest says {manifest['num_rows']}, "
            f"values contain {table.num_rows}"
        )
    return table


# -- indexes ---------------------------------------------------------------------------


def _write_index_manifest(path: Path, index, extra: dict | None = None) -> None:
    """Write the top-level ``index.json`` every snapshot kind shares."""
    manifest = {
        "format_version": FORMAT_VERSION,
        "index_name": index.name,
        "index_class": type(index).__qualname__,
        "index_size_bytes": index.index_size_bytes(),
        "num_rows": index.table.num_rows,
    }
    manifest.update(extra or {})
    with open(path / _INDEX_MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def _save_factory(factory, path: Path) -> bool:
    """Pickle the index factory next to the snapshot when possible.

    Lambdas and other unpicklable callables are silently skipped; the loader
    falls back to rebuilding fresh instances of the wrapped index's class.
    """
    try:
        payload = pickle.dumps(factory, protocol=pickle.HIGHEST_PROTOCOL)
    except (pickle.PicklingError, AttributeError, TypeError):
        return False
    (path / _FACTORY_PICKLE).write_bytes(payload)
    return True


def _load_factory(path: Path):
    """The pickled index factory, or ``None`` when it was not persistable."""
    factory_path = path / _FACTORY_PICKLE
    if not factory_path.exists():
        return None
    with open(factory_path, "rb") as handle:
        return pickle.load(handle)


def _fallback_factory(wrapped):
    """A best-effort factory for snapshots whose original factory was a lambda.

    Rebuilds fresh instances of the wrapped index's class, reusing its
    ``config`` when it carries one (:class:`TsunamiIndex` does); classes with
    required constructor arguments and no config cannot be reconstructed this
    way and will fail at the next merge-triggered rebuild instead.
    """
    cls = type(wrapped)
    config = getattr(wrapped, "config", None)
    if config is not None:
        return lambda: cls(config)
    return cls


def _read_manifest(path: Path, filename: str) -> dict:
    with open(path / filename, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported index snapshot version {manifest.get('format_version')!r}"
        )
    return manifest


def _save_delta_index(index, path: Path) -> Path:
    """Snapshot an updatable index: wrapped index under ``main/`` plus buffer."""
    path.mkdir(parents=True, exist_ok=True)
    _save_index_into(index.base_index, path / _DELTA_MAIN_DIR)
    buffer = index.buffer
    arrays = {name: np.asarray(buffer.column(name)) for name in buffer.column_names}
    np.savez_compressed(path / _BUFFER_VALUES, **arrays)
    _save_factory(index._index_factory, path)
    if index.workload is not None:
        # Merges rebuild the main index for this workload; losing it across a
        # snapshot would silently degrade post-merge layouts to unoptimized.
        with open(path / _WORKLOAD_PICKLE, "wb") as handle:
            pickle.dump(index.workload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "delta",
        "merge_threshold": index.merge_threshold,
        "merge_strategy": index.merge_strategy,
        "split_threshold": index.split_threshold,
        "pending_rows": index.num_pending,
    }
    with open(path / _DELTA_MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    _write_index_manifest(path, index, {"kind": "delta", "num_rows": index.num_rows})
    return path


def _load_delta_index(path: Path, mmap_mode: str | None):
    from repro.core.delta import DEFAULT_SPLIT_THRESHOLD, DeltaBuffer, DeltaBufferedIndex

    manifest = _read_manifest(path, _DELTA_MANIFEST)
    wrapped = load_index(path / _DELTA_MAIN_DIR, mmap_mode=mmap_mode)
    factory = _load_factory(path) or _fallback_factory(wrapped)
    index = DeltaBufferedIndex(
        factory,
        merge_threshold=int(manifest["merge_threshold"]),
        # Older snapshots predate the merge-strategy knob; they were written
        # by the global-rebuild implementation, so that is what they resume.
        merge_strategy=str(manifest.get("merge_strategy", "rebuild")),
        split_threshold=float(
            manifest.get("split_threshold", DEFAULT_SPLIT_THRESHOLD)
        ),
    )
    index._index = wrapped
    workload_path = path / _WORKLOAD_PICKLE
    if workload_path.exists():
        with open(workload_path, "rb") as handle:
            index.workload = pickle.load(handle)
    buffer = DeltaBuffer(wrapped.table.column_names)
    with np.load(path / _BUFFER_VALUES) as archive:
        arrays = {name: np.array(archive[name]) for name in archive.files}
    if arrays and next(iter(arrays.values())).shape[0] > 0:
        buffer.append_many(arrays)
    index._buffer = buffer
    if index.num_pending != int(manifest["pending_rows"]):
        raise SchemaError(
            f"snapshot pending-row mismatch: manifest says "
            f"{manifest['pending_rows']}, buffer contains {index.num_pending}"
        )
    return index


def _shard_dirname(position: int) -> str:
    return f"shard_{position:02d}"


def _save_sharded_index(index, path: Path) -> Path:
    """Snapshot a sharded index: one subdirectory per shard plus the manifest."""
    path.mkdir(parents=True, exist_ok=True)
    shards = index.shards
    for position, shard in enumerate(shards):
        _save_index_into(shard, path / _shard_dirname(position))
    _save_factory(index._index_factory, path)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "sharded",
        "num_shards": len(shards),
        "shard_dimension": index.dimension,
        "boundaries": index.boundaries,
        "parallelism": index.parallelism,
        "table_name": index.table.name,
        "shard_dirs": [_shard_dirname(position) for position in range(len(shards))],
    }
    with open(path / _SHARDED_MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    _write_index_manifest(
        path, index, {"kind": "sharded", "num_rows": index.num_rows}
    )
    return path


def _load_sharded_index(path: Path, mmap_mode: str | None):
    from repro.core.sharding import ShardedIndex

    manifest = _read_manifest(path, _SHARDED_MANIFEST)
    shards = [
        load_index(path / subdir, mmap_mode=mmap_mode)
        for subdir in manifest["shard_dirs"]
    ]
    if not shards:
        raise IndexBuildError(f"sharded snapshot in {path} contains no shards")
    factory = _load_factory(path) or _fallback_factory(shards[0])
    return ShardedIndex._from_snapshot(
        factory,
        shards,
        dimension=manifest["shard_dimension"],
        boundaries=manifest["boundaries"],
        parallelism=int(manifest["parallelism"]),
        table_name=manifest["table_name"],
    )


def _save_index_into(index, path: Path) -> Path:
    """Write an index snapshot directly into ``path`` (no staging).

    This is the recursive workhorse behind :func:`save_index`: nested
    snapshots (delta ``main/``, sharded ``shard_NN/``) write straight into
    their subdirectory because the whole tree lives inside the staging
    directory the public entry point swaps into place atomically.
    """
    from repro.core.delta import DeltaBufferedIndex
    from repro.core.sharding import ShardedIndex

    if not isinstance(index, (DeltaBufferedIndex, ShardedIndex, ClusteredIndex)):
        raise IndexBuildError(
            f"{type(index).__name__} does not support snapshotting; expected a "
            "ClusteredIndex, DeltaBufferedIndex, or ShardedIndex"
        )
    if not index.is_built:
        raise IndexBuildError("only a built index can be saved")
    if isinstance(index, DeltaBufferedIndex):
        return _save_delta_index(index, path)
    if isinstance(index, ShardedIndex):
        return _save_sharded_index(index, path)
    path.mkdir(parents=True, exist_ok=True)
    save_table(index.table, path)

    # Detach the table and executor so the pickle holds only the index
    # structure; they are restored immediately afterwards and on load.
    table, executor = index._table, index._executor
    try:
        index._table, index._executor = None, None
        with open(path / _INDEX_PICKLE, "wb") as handle:
            pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        index._table, index._executor = table, executor

    # Mid-write fault-injection site: fires after the data files but before
    # the manifest, the worst moment a crash could hit.
    faults.trigger("persistence.save", key=path.name)
    _write_index_manifest(path, index)
    return path


def save_index(index, directory: str | Path) -> Path:
    """Snapshot a built index (structure plus its clustered table) to ``directory``.

    Plain :class:`ClusteredIndex` instances are pickled next to their table;
    :class:`~repro.core.delta.DeltaBufferedIndex` and
    :class:`~repro.core.sharding.ShardedIndex` snapshot structurally (see the
    module docstring), so pending inserts and per-shard layouts round-trip.
    Anything else raises :class:`IndexBuildError`.

    The write is crash-safe: the snapshot is staged into a temporary sibling
    directory and atomically renamed over ``directory`` only once complete.
    A crash (or injected ``persistence.save`` fault) mid-write leaves any
    previous snapshot at ``directory`` untouched and loadable; the orphaned
    staging directory is cleaned up by the next successful save.
    """
    path = Path(directory)
    staging = path.with_name(path.name + ".saving")
    if staging.exists():
        shutil.rmtree(staging)
    try:
        _save_index_into(index, staging)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if path.exists():
        retired = path.with_name(path.name + ".old")
        if retired.exists():
            shutil.rmtree(retired)
        path.rename(retired)
        staging.rename(path)
        shutil.rmtree(retired)
    else:
        staging.rename(path)
    return path


def load_index(directory: str | Path, *, mmap_mode: str | None = "r"):
    """Load an index snapshot written by :func:`save_index`, ready to query.

    Dispatches on the snapshot layout: sharded and delta snapshots are
    reassembled recursively; plain snapshots unpickle the index structure and
    re-attach the stored table.

    Column data is memory-mapped read-only by default (``mmap_mode="r"``), so
    concurrent loaders of the same snapshot — shard workers in particular —
    share the OS page cache instead of materializing private copies.  Pass
    ``mmap_mode=None`` to read the columns into the heap.
    """
    path = Path(directory)
    if (path / _SHARDED_MANIFEST).exists():
        return _load_sharded_index(path, mmap_mode)
    if (path / _DELTA_MANIFEST).exists():
        return _load_delta_index(path, mmap_mode)
    pickle_path = path / _INDEX_PICKLE
    if not pickle_path.exists():
        raise IndexBuildError(f"no index snapshot found in {path}")
    table = load_table(path, mmap_mode=mmap_mode)
    with open(pickle_path, "rb") as handle:
        index = pickle.load(handle)
    if not isinstance(index, ClusteredIndex):
        raise IndexBuildError(
            f"snapshot in {path} does not contain a ClusteredIndex "
            f"(got {type(index).__name__})"
        )
    index._table = table
    index._executor = ScanExecutor(table)
    return index


def snapshot_info(directory: str | Path) -> dict:
    """Read a snapshot's manifests without loading the data or the index."""
    path = Path(directory)
    info: dict = {}
    table_manifest = path / _TABLE_MANIFEST
    if table_manifest.exists():
        with open(table_manifest, encoding="utf-8") as handle:
            info["table"] = json.load(handle)
    index_manifest = path / _INDEX_MANIFEST
    if index_manifest.exists():
        with open(index_manifest, encoding="utf-8") as handle:
            info["index"] = json.load(handle)
    if not info:
        raise SchemaError(f"{path} does not contain a snapshot")
    return info
