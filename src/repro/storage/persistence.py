"""Saving and loading tables and built indexes (§8, "Persistence").

The paper's index is purely in-memory, but §8 notes that its techniques
"could be incorporated into a multi-dimensional index for data resident on
disk or SSD."  The first prerequisite for that is a durable representation of
the clustered table and the optimized index structure, which this module
provides:

* :func:`save_table` / :func:`load_table` write a
  :class:`~repro.storage.table.Table` as an ``.npz`` file of column values
  plus a JSON manifest describing each column's encoding (dictionary values
  or fixed-point scale), so the table round-trips exactly, including the
  physical row order a clustered index imposed.
* :func:`save_index` / :func:`load_index` snapshot a *built* index.  The
  optimized structure (Grid Tree, Augmented Grids, baselines' trees) is
  pickled; the table it was clustered over is stored with
  :func:`save_table` and re-attached on load, so the snapshot does not keep
  two copies of the data and loading restores a fully queryable index without
  re-optimizing or re-sorting anything.

Snapshots are trusted artifacts: like any pickle-based format they must only
be loaded from directories this process (or an equally trusted one) wrote.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np

from repro.baselines.base import ClusteredIndex
from repro.common.errors import IndexBuildError, SchemaError
from repro.storage.column import Column
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.scaling import FixedPointScaler
from repro.storage.scan import ScanExecutor
from repro.storage.table import Table

#: Manifest format version, bumped on any incompatible layout change.
FORMAT_VERSION = 1

_TABLE_MANIFEST = "table.json"
_TABLE_VALUES = "columns.npz"
_INDEX_MANIFEST = "index.json"
_INDEX_PICKLE = "index.pkl"


# -- tables ---------------------------------------------------------------------------


def save_table(table: Table, directory: str | Path) -> Path:
    """Write ``table`` (values, encodings, physical row order) to ``directory``.

    The directory is created if needed.  Returns the directory path.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    arrays = {name: np.asarray(table.values(name)) for name in table.column_names}
    np.savez_compressed(path / _TABLE_VALUES, **arrays)

    columns = []
    for name in table.column_names:
        column = table.column(name)
        entry: dict = {"name": name, "kind": "int"}
        if column.dictionary is not None:
            entry["kind"] = "dictionary"
            entry["values"] = column.dictionary.values
        elif column.scaler is not None:
            entry["kind"] = "scaled"
            entry["decimals"] = column.scaler.decimals
        columns.append(entry)
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": table.name,
        "num_rows": table.num_rows,
        "columns": columns,
    }
    with open(path / _TABLE_MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return path


def load_table(directory: str | Path) -> Table:
    """Load a table previously written by :func:`save_table`."""
    path = Path(directory)
    manifest_path = path / _TABLE_MANIFEST
    if not manifest_path.exists():
        raise SchemaError(f"no table manifest found in {path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported table snapshot version {manifest.get('format_version')!r}"
        )
    with np.load(path / _TABLE_VALUES) as archive:
        arrays = {name: np.array(archive[name]) for name in archive.files}

    columns = []
    for entry in manifest["columns"]:
        name = entry["name"]
        if name not in arrays:
            raise SchemaError(f"column {name!r} listed in manifest but missing from values")
        values = arrays[name]
        if entry["kind"] == "dictionary":
            dictionary = DictionaryEncoder.from_ordered_values(entry["values"])
            columns.append(Column(name, values, dictionary=dictionary))
        elif entry["kind"] == "scaled":
            scaler = FixedPointScaler(decimals=int(entry["decimals"]))
            columns.append(Column(name, values, scaler=scaler))
        else:
            columns.append(Column(name, values))
    table = Table(manifest["name"], columns)
    if table.num_rows != manifest["num_rows"]:
        raise SchemaError(
            f"snapshot row count mismatch: manifest says {manifest['num_rows']}, "
            f"values contain {table.num_rows}"
        )
    return table


# -- indexes ---------------------------------------------------------------------------


def save_index(index: ClusteredIndex, directory: str | Path) -> Path:
    """Snapshot a built index (structure plus its clustered table) to ``directory``."""
    if not index.is_built:
        raise IndexBuildError("only a built index can be saved")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    save_table(index.table, path)

    # Detach the table and executor so the pickle holds only the index
    # structure; they are restored immediately afterwards and on load.
    table, executor = index._table, index._executor
    try:
        index._table, index._executor = None, None
        with open(path / _INDEX_PICKLE, "wb") as handle:
            pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        index._table, index._executor = table, executor

    manifest = {
        "format_version": FORMAT_VERSION,
        "index_name": index.name,
        "index_class": type(index).__qualname__,
        "index_size_bytes": index.index_size_bytes(),
        "num_rows": index.table.num_rows,
    }
    with open(path / _INDEX_MANIFEST, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return path


def load_index(directory: str | Path) -> ClusteredIndex:
    """Load an index snapshot written by :func:`save_index`, ready to query."""
    path = Path(directory)
    pickle_path = path / _INDEX_PICKLE
    if not pickle_path.exists():
        raise IndexBuildError(f"no index snapshot found in {path}")
    table = load_table(path)
    with open(pickle_path, "rb") as handle:
        index = pickle.load(handle)
    if not isinstance(index, ClusteredIndex):
        raise IndexBuildError(
            f"snapshot in {path} does not contain a ClusteredIndex "
            f"(got {type(index).__name__})"
        )
    index._table = table
    index._executor = ScanExecutor(table)
    return index


def snapshot_info(directory: str | Path) -> dict:
    """Read a snapshot's manifests without loading the data or the index."""
    path = Path(directory)
    info: dict = {}
    table_manifest = path / _TABLE_MANIFEST
    if table_manifest.exists():
        with open(table_manifest, encoding="utf-8") as handle:
            info["table"] = json.load(handle)
    index_manifest = path / _INDEX_MANIFEST
    if index_manifest.exists():
        with open(index_manifest, encoding="utf-8") as handle:
            info["index"] = json.load(handle)
    if not info:
        raise SchemaError(f"{path} does not contain a snapshot")
    return info
