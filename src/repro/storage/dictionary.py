"""Dictionary encoding for string-valued columns.

The paper's setup (§6.1) dictionary-encodes any string attribute before
evaluation so that every stored value is a 64-bit integer.  The encoder here
assigns codes in lexicographic order of the distinct values, which preserves
the alphanumeric sort order used for categorical dimensions (§8 notes that
categorical dimensions default to an alphanumeric sort).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import SchemaError


class DictionaryEncoder:
    """Bidirectional mapping between string values and dense integer codes.

    Codes are assigned in sorted order of the distinct values, so
    ``encode`` is order-preserving: ``a < b`` implies ``code(a) < code(b)``.
    """

    def __init__(self, values: Iterable[str] = ()) -> None:
        self._value_to_code: dict[str, int] = {}
        self._code_to_value: list[str] = []
        initial = list(values)
        if initial:
            self.fit(initial)

    def __len__(self) -> int:
        return len(self._code_to_value)

    def __contains__(self, value: str) -> bool:
        return value in self._value_to_code

    @property
    def values(self) -> list[str]:
        """Distinct values in code order (i.e. sorted order)."""
        return list(self._code_to_value)

    def fit(self, values: Iterable[str]) -> "DictionaryEncoder":
        """Build the dictionary from an iterable of string values."""
        distinct = sorted(set(values) | set(self._code_to_value))
        self._code_to_value = distinct
        self._value_to_code = {value: code for code, value in enumerate(distinct)}
        return self

    @classmethod
    def from_ordered_values(cls, values: Sequence[str]) -> "DictionaryEncoder":
        """Build a dictionary whose codes follow the given value order.

        This is the entry point for workload-aware categorical orderings
        (:mod:`repro.core.categorical`, §8): instead of the default
        alphanumeric order, codes are assigned in the order ``values`` are
        listed.  Values must be distinct.
        """
        ordered = list(values)
        if len(set(ordered)) != len(ordered):
            raise SchemaError("ordered dictionary values must be distinct")
        encoder = cls()
        encoder._code_to_value = ordered
        encoder._value_to_code = {value: code for code, value in enumerate(ordered)}
        return encoder

    def encode_one(self, value: str) -> int:
        """Return the code for a single value."""
        try:
            return self._value_to_code[value]
        except KeyError:
            raise SchemaError(f"value {value!r} is not in the dictionary") from None

    def decode_one(self, code: int) -> str:
        """Return the value for a single code."""
        if not 0 <= code < len(self._code_to_value):
            raise SchemaError(
                f"code {code} is out of range for dictionary of size {len(self)}"
            )
        return self._code_to_value[code]

    def encode(self, values: Sequence[str]) -> np.ndarray:
        """Encode a sequence of values into an ``int64`` array."""
        return np.array([self.encode_one(value) for value in values], dtype=np.int64)

    def decode(self, codes: Sequence[int]) -> list[str]:
        """Decode a sequence of codes back into their string values."""
        return [self.decode_one(int(code)) for code in codes]

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the dictionary."""
        return sum(len(value.encode("utf-8")) + 8 for value in self._code_to_value)
