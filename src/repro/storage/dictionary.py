"""Dictionary encoding for string-valued columns.

The paper's setup (§6.1) dictionary-encodes any string attribute before
evaluation so that every stored value is a 64-bit integer.  The encoder here
assigns codes in lexicographic order of the distinct values, which preserves
the alphanumeric sort order used for categorical dimensions (§8 notes that
categorical dimensions default to an alphanumeric sort).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import SchemaError


class DictionaryEncoder:
    """Bidirectional mapping between string values and dense integer codes.

    Codes are assigned in sorted order of the distinct values, so
    ``encode`` is order-preserving: ``a < b`` implies ``code(a) < code(b)``.
    """

    def __init__(self, values: Iterable[str] = ()) -> None:
        self._value_to_code: dict[str, int] = {}
        self._code_to_value: list[str] = []
        # Lazily-built arrays backing the vectorized encode/decode paths:
        # (values sorted lexicographically, their codes in that order, and the
        # code→value object array).  Invalidated whenever the mapping changes.
        self._arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        initial = list(values)
        if initial:
            self.fit(initial)

    def __len__(self) -> int:
        return len(self._code_to_value)

    def __contains__(self, value: str) -> bool:
        return value in self._value_to_code

    @property
    def values(self) -> list[str]:
        """Distinct values in code order (i.e. sorted order)."""
        return list(self._code_to_value)

    def fit(self, values: Iterable[str]) -> "DictionaryEncoder":
        """Build the dictionary from an iterable of string values."""
        distinct = sorted(set(values) | set(self._code_to_value))
        self._code_to_value = distinct
        self._value_to_code = {value: code for code, value in enumerate(distinct)}
        self._arrays = None
        return self

    @classmethod
    def from_ordered_values(cls, values: Sequence[str]) -> "DictionaryEncoder":
        """Build a dictionary whose codes follow the given value order.

        This is the entry point for workload-aware categorical orderings
        (:mod:`repro.core.categorical`, §8): instead of the default
        alphanumeric order, codes are assigned in the order ``values`` are
        listed.  Values must be distinct.
        """
        ordered = list(values)
        if len(set(ordered)) != len(ordered):
            raise SchemaError("ordered dictionary values must be distinct")
        encoder = cls()
        encoder._code_to_value = ordered
        encoder._value_to_code = {value: code for code, value in enumerate(ordered)}
        return encoder

    def encode_one(self, value: str) -> int:
        """Return the code for a single value."""
        try:
            return self._value_to_code[value]
        except KeyError:
            raise SchemaError(f"value {value!r} is not in the dictionary") from None

    def decode_one(self, code: int) -> str:
        """Return the value for a single code."""
        if not 0 <= code < len(self._code_to_value):
            raise SchemaError(
                f"code {code} is out of range for dictionary of size {len(self)}"
            )
        return self._code_to_value[code]

    def _vectors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arrays backing vectorized encode/decode, built once per mapping.

        Codes are *not* necessarily in sorted value order (workload-aware
        orderings from :meth:`from_ordered_values`), so the sorted value array
        carries a parallel sorted-position→code mapping.
        """
        if self._arrays is None:
            values_by_code = np.asarray(self._code_to_value, dtype=object)
            sortable = np.asarray(self._code_to_value, dtype=np.str_)
            order = np.argsort(sortable, kind="stable")
            self._arrays = (
                sortable[order],
                order.astype(np.int64),
                values_by_code,
            )
        return self._arrays

    def encode(self, values: Sequence[str]) -> np.ndarray:
        """Encode a sequence of values into an ``int64`` array.

        Vectorized: one ``searchsorted`` over the sorted distinct values plus
        a membership check, instead of a per-value Python loop.
        """
        batch = np.asarray(list(values), dtype=np.str_)
        if batch.size == 0:
            return np.empty(0, dtype=np.int64)
        sorted_values, sorted_codes, _ = self._vectors()
        if sorted_values.size == 0:
            raise SchemaError(f"value {batch[0]!r} is not in the dictionary")
        positions = np.minimum(
            np.searchsorted(sorted_values, batch), sorted_values.size - 1
        )
        found = sorted_values[positions] == batch
        if not found.all():
            missing = str(batch[int(np.argmin(found))])
            raise SchemaError(f"value {missing!r} is not in the dictionary")
        return sorted_codes[positions]

    def decode(self, codes: Sequence[int]) -> list[str]:
        """Decode a sequence of codes back into their string values.

        Vectorized: a single fancy-index over the code→value object array.
        """
        try:
            batch = np.asarray(codes, dtype=np.int64)
        except (ValueError, TypeError):
            batch = np.asarray([int(code) for code in codes], dtype=np.int64)
        if batch.size == 0:
            return []
        out_of_range = (batch < 0) | (batch >= len(self._code_to_value))
        if out_of_range.any():
            bad = int(batch[int(np.argmax(out_of_range))])
            raise SchemaError(
                f"code {bad} is out of range for dictionary of size {len(self)}"
            )
        _, _, values_by_code = self._vectors()
        return list(values_by_code[batch])

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the dictionary."""
        return sum(len(value.encode("utf-8")) + 8 for value in self._code_to_value)
