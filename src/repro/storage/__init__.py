"""In-memory clustered column store substrate.

The paper evaluates every index on a custom in-memory column store whose
physical row order is owned by the index (a *clustered* layout).  This
subpackage reproduces that substrate:

* :class:`~repro.storage.column.Column` — a typed column of 64-bit integers,
  optionally backed by a string dictionary or a fixed-point float scale.
* :class:`~repro.storage.table.Table` — a named collection of equal-length
  columns plus the clustered reorganization primitive used by every index.
* :class:`~repro.storage.scan.ScanExecutor` — contiguous range scans with the
  paper's "exact range" optimization and machine-independent work counters.
"""

from repro.storage.column import Column
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.scaling import FixedPointScaler, scale_to_int64
from repro.storage.table import Table
from repro.storage.scan import RowRange, ScanExecutor, ScanStats
from repro.storage.persistence import (
    save_table,
    load_table,
    save_index,
    load_index,
    snapshot_info,
)
from repro.storage.csv_io import read_csv, write_csv

__all__ = [
    "Column",
    "DictionaryEncoder",
    "FixedPointScaler",
    "scale_to_int64",
    "Table",
    "RowRange",
    "ScanExecutor",
    "ScanStats",
    "save_table",
    "load_table",
    "save_index",
    "load_index",
    "snapshot_info",
    "read_csv",
    "write_csv",
]
