"""In-memory clustered column store substrate.

The paper evaluates every index on a custom in-memory column store whose
physical row order is owned by the index (a *clustered* layout).  This
subpackage reproduces that substrate:

* :class:`~repro.storage.column.Column` — a typed integer column stored in the
  narrowest covering dtype (uint8/int16/int32/int64, see
  :class:`~repro.storage.column.StorageMeta`), optionally backed by a string
  dictionary or a fixed-point float scale.
* :class:`~repro.storage.table.Table` — a named collection of equal-length
  columns plus the clustered reorganization primitive used by every index.
* :class:`~repro.storage.scan.ScanExecutor` — contiguous range scans with the
  paper's "exact range" optimization and machine-independent work counters,
  aggregating through the fused filter→aggregate kernels in
  :mod:`repro.storage.kernels`.
"""

from repro.storage.column import Column, StorageMeta
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.kernels import fused_count, fused_max, fused_min, fused_sum
from repro.storage.scaling import FixedPointScaler, scale_to_int64
from repro.storage.table import Table
from repro.storage.scan import RowRange, ScanExecutor, ScanStats
from repro.storage.persistence import (
    save_table,
    load_table,
    save_index,
    load_index,
    snapshot_info,
)
from repro.storage.csv_io import read_csv, write_csv

__all__ = [
    "Column",
    "StorageMeta",
    "DictionaryEncoder",
    "fused_count",
    "fused_max",
    "fused_min",
    "fused_sum",
    "FixedPointScaler",
    "scale_to_int64",
    "Table",
    "RowRange",
    "ScanExecutor",
    "ScanStats",
    "save_table",
    "load_table",
    "save_index",
    "load_index",
    "snapshot_info",
    "read_csv",
    "write_csv",
]
