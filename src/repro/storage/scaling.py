"""Fixed-point scaling of floating-point attributes to 64-bit integers.

§6.1: "Floating point values are typically limited to a fixed number of
decimal points (e.g., 2 for price values).  We scale all values by the
smallest power of 10 that converts them to integers."  This module implements
exactly that conversion and remembers the scale so values can be converted
back for display or for mapping query predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import SchemaError

_MAX_DECIMALS = 9


def _required_decimals(values: np.ndarray, max_decimals: int) -> int:
    """Return the smallest number of decimal digits that makes ``values`` integral."""
    for decimals in range(max_decimals + 1):
        scaled = values * (10**decimals)
        # rtol must be zero: a relative tolerance would wrongly accept large
        # scaled values whose fractional part is far from zero.
        if np.allclose(scaled, np.rint(scaled), rtol=0.0, atol=1e-6):
            return decimals
    raise SchemaError(
        f"values require more than {max_decimals} decimal digits of precision; "
        "round them before ingestion"
    )


@dataclass(frozen=True)
class FixedPointScaler:
    """Reversible mapping ``float -> int64`` using a power-of-ten scale."""

    decimals: int

    @property
    def factor(self) -> int:
        """Multiplicative factor applied to raw values (``10 ** decimals``)."""
        return 10**self.decimals

    @classmethod
    def fit(cls, values: np.ndarray, max_decimals: int = _MAX_DECIMALS) -> "FixedPointScaler":
        """Choose the smallest power of ten that converts ``values`` to integers."""
        array = np.asarray(values, dtype=np.float64)
        if array.size and not np.all(np.isfinite(array)):
            raise SchemaError("cannot scale non-finite floating point values")
        if array.size == 0:
            return cls(decimals=0)
        return cls(decimals=_required_decimals(array, max_decimals))

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Scale raw float values to ``int64``."""
        array = np.asarray(values, dtype=np.float64)
        return np.rint(array * self.factor).astype(np.int64)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Map stored integers back to their original floating-point values."""
        return np.asarray(values, dtype=np.float64) / self.factor

    def transform_scalar(self, value: float) -> int:
        """Scale a single raw value (useful for query predicate bounds)."""
        return int(round(float(value) * self.factor))


def scale_to_int64(values: np.ndarray, max_decimals: int = _MAX_DECIMALS) -> tuple[np.ndarray, FixedPointScaler]:
    """Convenience helper returning the scaled array together with its scaler."""
    scaler = FixedPointScaler.fit(values, max_decimals=max_decimals)
    return scaler.transform(values), scaler
