"""The clustered in-memory table used by every index in the reproduction.

A :class:`Table` owns a set of equal-length :class:`~repro.storage.column.Column`
objects.  The physical row order is shared by all columns and is controlled by
whichever index currently clusters the table (via :meth:`Table.reorder`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.common.errors import SchemaError
from repro.storage.column import Column


class Table:
    """A named collection of equal-length columns with a shared row order."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name:
            raise SchemaError("table name must be a non-empty string")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} has columns of differing lengths: {sorted(lengths)}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names: {names}")
        self.name = name
        self._columns: dict[str, Column] = {column.name: column for column in columns}
        self._num_rows = lengths.pop()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Sequence]) -> "Table":
        """Build a table from ``{column name: values}``, inferring encodings."""
        columns = [Column.from_values(col, values) for col, values in data.items()]
        return cls(name, columns)

    @classmethod
    def from_arrays(
        cls, name: str, data: Mapping[str, np.ndarray], *, narrow: bool = True
    ) -> "Table":
        """Build a table from already-integral NumPy arrays (no re-encoding).

        ``narrow=False`` preserves each array's integer dtype instead of
        narrowing to the smallest covering dtype — benchmarks use it to build
        forced-``int64`` baseline tables.
        """
        columns = [
            Column(col, np.asarray(values), narrow=narrow)
            for col, values in data.items()
        ]
        return cls(name, columns)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, rows={self._num_rows}, "
            f"columns={list(self._columns)})"
        )

    # -- accessors ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows (points) in the table."""
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    @property
    def num_dimensions(self) -> int:
        """Number of columns, i.e. the dimensionality of the data space."""
        return len(self._columns)

    def column(self, name: str) -> Column:
        """Return the column called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {list(self._columns)}"
            ) from None

    def values(self, name: str) -> np.ndarray:
        """Shortcut for ``table.column(name).values``."""
        return self.column(name).values

    def matrix(self, names: Iterable[str] | None = None) -> np.ndarray:
        """Stack the requested columns into an ``(n_rows, n_dims)`` matrix.

        Columns may use different narrow storage dtypes; the stack promotes
        to their common integer dtype (value-preserving for every storage
        dtype combination).
        """
        selected = list(names) if names is not None else self.column_names
        return np.column_stack([self.column(name).values for name in selected])

    def bounds(self, name: str) -> tuple[int, int]:
        """Return ``(min, max)`` of the stored values in column ``name``."""
        column = self.column(name)
        return column.min(), column.max()

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of all column data."""
        return sum(column.size_bytes() for column in self._columns.values())

    def describe(self) -> dict:
        """Storage breakdown (footprint + per-column dtypes) for reports.

        ``bytes_per_value`` is the compression headline: an all-``int64``
        table sits at 8.0, so anything lower is the narrow-dtype win.
        """
        columns = [column.describe() for column in self._columns.values()]
        total = self.size_bytes()
        num_values = self._num_rows * len(self._columns)
        return {
            "name": self.name,
            "num_rows": self._num_rows,
            "num_columns": len(self._columns),
            "size_bytes": total,
            "bytes_per_value": round(total / num_values, 3) if num_values else None,
            "columns": columns,
        }

    # -- clustered reorganization ---------------------------------------------------

    def reorder(self, permutation: np.ndarray) -> None:
        """Physically reorder every column's rows by the same ``permutation``.

        ``permutation`` must be a permutation of ``range(num_rows)``.  Indexes
        call this once at build time to cluster the table by their layout.
        """
        permutation = np.asarray(permutation)
        if permutation.shape != (self._num_rows,):
            raise SchemaError(
                f"permutation has shape {permutation.shape}, expected ({self._num_rows},)"
            )
        if self._num_rows:
            seen = np.zeros(self._num_rows, dtype=bool)
            seen[permutation] = True
            if not seen.all():
                raise SchemaError("permutation is not a bijection over the row ids")
        for column in self._columns.values():
            column.reorder(permutation)

    def reorder_rows(self, rows: np.ndarray, start: int, stop: int) -> None:
        """Physically reorder only rows ``[start, stop)`` by the slice permutation.

        ``rows`` is relative to the slice (see
        :meth:`~repro.storage.column.Column.reorder_rows`) and must be a
        bijection over ``range(stop - start)``.  Local merges use this to
        re-sort a single region's row range in place instead of permuting the
        whole table.
        """
        rows = np.asarray(rows)
        if stop < start or start < 0 or stop > self._num_rows:
            raise SchemaError(
                f"row range [{start}, {stop}) is outside table "
                f"{self.name!r} with {self._num_rows} rows"
            )
        length = stop - start
        if rows.shape != (length,):
            raise SchemaError(
                f"slice permutation has shape {rows.shape}, expected ({length},)"
            )
        if length:
            seen = np.zeros(length, dtype=bool)
            seen[rows] = True
            if not seen.all():
                raise SchemaError(
                    "slice permutation is not a bijection over the row range"
                )
        for column in self._columns.values():
            column.reorder_rows(rows, start, stop)

    def sample_rows(self, count: int, rng: np.random.Generator) -> "Table":
        """Return a new table containing ``count`` rows sampled without replacement."""
        count = min(count, self._num_rows)
        chosen = np.sort(rng.choice(self._num_rows, size=count, replace=False))
        columns = [
            Column(
                column.name,
                column.values[chosen],
                dictionary=column.dictionary,
                scaler=column.scaler,
            )
            for column in self._columns.values()
        ]
        return Table(f"{self.name}_sample", columns)

    def subset(self, row_ids: np.ndarray, name: str | None = None) -> "Table":
        """Return a new table restricted to ``row_ids`` (logical selection).

        A contiguous ascending ``row_ids`` run becomes a zero-copy slice view
        that preserves each column's storage dtype and any memory-mapped
        backing (shard builds over a clustered shard dimension hit this path);
        anything else gathers copies and re-narrows per column.
        """
        row_ids = np.asarray(row_ids)
        contiguous = bool(
            row_ids.size
            and row_ids.ndim == 1
            and np.issubdtype(row_ids.dtype, np.integer)
            and int(row_ids[-1]) - int(row_ids[0]) == row_ids.size - 1
            and np.all(np.diff(row_ids) == 1)
        )
        if contiguous:
            start, stop = int(row_ids[0]), int(row_ids[-1]) + 1
            columns = [
                Column(
                    column.name,
                    column.slice(start, stop),
                    dictionary=column.dictionary,
                    scaler=column.scaler,
                    narrow=False,
                )
                for column in self._columns.values()
            ]
        else:
            columns = [
                Column(
                    column.name,
                    column.values[row_ids],
                    dictionary=column.dictionary,
                    scaler=column.scaler,
                )
                for column in self._columns.values()
            ]
        return Table(name or f"{self.name}_subset", columns)
