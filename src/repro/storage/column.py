"""A single typed column of the in-memory column store.

All stored values are 64-bit integers (§6.1).  A column remembers how its
values were produced — directly as integers, via fixed-point scaling of
floats, or via dictionary encoding of strings — so user-facing values can be
converted to storage values (for query predicates) and back (for display).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.errors import SchemaError
from repro.common.validation import ensure_int64_array
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.scaling import FixedPointScaler


class Column:
    """An immutable-length, reorderable column of ``int64`` values."""

    def __init__(
        self,
        name: str,
        values: np.ndarray,
        dictionary: DictionaryEncoder | None = None,
        scaler: FixedPointScaler | None = None,
    ) -> None:
        if not name:
            raise SchemaError("column name must be a non-empty string")
        if dictionary is not None and scaler is not None:
            raise SchemaError(
                f"column {name!r} cannot be both dictionary-encoded and float-scaled"
            )
        self.name = name
        self._values = ensure_int64_array(values, name=f"column {name!r}")
        self.dictionary = dictionary
        self.scaler = scaler

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_values(cls, name: str, values: Sequence) -> "Column":
        """Build a column from raw user values, inferring the encoding.

        Strings are dictionary-encoded; floats are fixed-point scaled by the
        smallest power of ten that makes them integral; integers are stored
        as-is.
        """
        sample = list(values)
        if sample and isinstance(sample[0], str):
            dictionary = DictionaryEncoder(sample)
            return cls(name, dictionary.encode(sample), dictionary=dictionary)
        array = np.asarray(sample)
        if array.dtype.kind == "U" or array.dtype.kind == "O":
            dictionary = DictionaryEncoder([str(v) for v in sample])
            return cls(
                name,
                dictionary.encode([str(v) for v in sample]),
                dictionary=dictionary,
            )
        if np.issubdtype(array.dtype, np.floating):
            scaler = FixedPointScaler.fit(array)
            return cls(name, scaler.transform(array), scaler=scaler)
        return cls(name, array)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __repr__(self) -> str:
        kind = "dict" if self.dictionary else ("scaled" if self.scaler else "int")
        return f"Column(name={self.name!r}, rows={len(self)}, kind={kind})"

    # -- access -------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The stored ``int64`` values (a read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Return the stored values in the physical row range ``[start, stop)``."""
        return self._values[start:stop]

    def min(self) -> int:
        """Minimum stored value (raises on an empty column)."""
        if len(self) == 0:
            raise SchemaError(f"column {self.name!r} is empty")
        return int(self._values.min())

    def max(self) -> int:
        """Maximum stored value (raises on an empty column)."""
        if len(self) == 0:
            raise SchemaError(f"column {self.name!r} is empty")
        return int(self._values.max())

    # -- value conversion ----------------------------------------------------

    def to_storage(self, value) -> int:
        """Convert a user-facing value into the stored integer domain."""
        if self.dictionary is not None:
            return self.dictionary.encode_one(str(value))
        if self.scaler is not None:
            return self.scaler.transform_scalar(float(value))
        return int(value)

    def to_storage_array(self, values: Sequence) -> np.ndarray:
        """Vectorized :meth:`to_storage`: convert a whole sequence at once."""
        if self.dictionary is not None:
            try:
                return self.dictionary.encode([str(value) for value in values])
            except SchemaError as exc:
                raise SchemaError(
                    f"values cannot be stored in column {self.name!r}: {exc}"
                ) from exc
        try:
            if self.scaler is not None:
                return self.scaler.transform(np.asarray(values, dtype=np.float64))
            return np.asarray(values, dtype=np.int64)
        except (ValueError, TypeError) as exc:
            raise SchemaError(
                f"values cannot be stored in column {self.name!r}: {exc}"
            ) from exc

    def to_user(self, value: int):
        """Convert a stored integer back to its user-facing value."""
        if self.dictionary is not None:
            return self.dictionary.decode_one(int(value))
        if self.scaler is not None:
            return float(value) / self.scaler.factor
        return int(value)

    # -- mutation (clustered reorganization only) ----------------------------

    def reorder(self, permutation: np.ndarray) -> None:
        """Physically reorder the column rows by ``permutation``.

        This is the primitive used by clustered indexes to own the physical
        layout; it is the only supported mutation of a column.
        """
        permutation = np.asarray(permutation)
        if permutation.shape != (len(self),):
            raise SchemaError(
                f"permutation length {permutation.shape} does not match column "
                f"length {len(self)}"
            )
        self._values = self._values[permutation]

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the stored values."""
        total = int(self._values.nbytes)
        if self.dictionary is not None:
            total += self.dictionary.size_bytes()
        return total
