"""A single typed column of the in-memory column store.

The user-facing value domain is 64-bit integers (§6.1 of the paper), but the
physical representation narrows to the smallest integer dtype that covers the
value range (uint8/int16/int32/int64).  A column remembers how its values were
produced — directly as integers, via fixed-point scaling of floats, or via
dictionary encoding of strings — so user-facing values can be converted to
storage values (for query predicates) and back (for display).  Physical
storage details live in :class:`StorageMeta`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.common.errors import SchemaError
from repro.common.validation import ensure_integral_array, narrowest_dtype
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.scaling import FixedPointScaler


@dataclass
class StorageMeta:
    """Physical storage metadata for one column.

    ``min_value`` / ``max_value`` are ``None`` for empty columns and for
    columns constructed with ``narrow=False`` where the bounds were never
    scanned (e.g. zero-copy subset views over memory-mapped files).
    ``distinct_count`` is filled lazily by :meth:`Column.distinct_count`.
    """

    dtype: np.dtype
    min_value: int | None = None
    max_value: int | None = None
    distinct_count: int | None = None

    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.dtype).itemsize)


class Column:
    """An immutable-length, reorderable column of integer values.

    With ``narrow=True`` (the default) the stored dtype is the smallest of
    ``uint8``/``int16``/``int32``/``int64`` covering the value range.  With
    ``narrow=False`` an existing integer dtype is preserved as-is — used for
    zero-copy views (subsetting, mmap-backed loads) and for forced-``int64``
    baseline tables in benchmarks.  Passing a ``meta`` whose dtype matches the
    input skips the min/max scan entirely, which keeps memory-mapped loads
    from touching any pages.
    """

    def __init__(
        self,
        name: str,
        values: np.ndarray,
        dictionary: DictionaryEncoder | None = None,
        scaler: FixedPointScaler | None = None,
        *,
        narrow: bool = True,
        meta: StorageMeta | None = None,
    ) -> None:
        if not name:
            raise SchemaError("column name must be a non-empty string")
        if dictionary is not None and scaler is not None:
            raise SchemaError(
                f"column {name!r} cannot be both dictionary-encoded and float-scaled"
            )
        self.name = name
        array = ensure_integral_array(values, name=f"column {name!r}")
        if meta is not None and np.dtype(meta.dtype) == array.dtype:
            self._meta = meta
        elif narrow and array.size:
            low = int(array.min())
            high = int(array.max())
            dtype = narrowest_dtype(low, high)
            array = array.astype(dtype, copy=False)
            self._meta = StorageMeta(dtype=dtype, min_value=low, max_value=high)
        else:
            if narrow:
                array = array.astype(np.int64, copy=False)
            self._meta = StorageMeta(dtype=array.dtype)
        self._values = array
        self.dictionary = dictionary
        self.scaler = scaler

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_values(cls, name: str, values: Sequence) -> "Column":
        """Build a column from raw user values, inferring the encoding.

        Strings are dictionary-encoded; floats are fixed-point scaled by the
        smallest power of ten that makes them integral; integers are stored
        as-is.
        """
        sample = list(values)
        if sample and isinstance(sample[0], str):
            dictionary = DictionaryEncoder(sample)
            return cls(name, dictionary.encode(sample), dictionary=dictionary)
        array = np.asarray(sample)
        if array.dtype.kind == "U" or array.dtype.kind == "O":
            dictionary = DictionaryEncoder([str(v) for v in sample])
            return cls(
                name,
                dictionary.encode([str(v) for v in sample]),
                dictionary=dictionary,
            )
        if np.issubdtype(array.dtype, np.floating):
            scaler = FixedPointScaler.fit(array)
            return cls(name, scaler.transform(array), scaler=scaler)
        return cls(name, array)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __repr__(self) -> str:
        kind = "dict" if self.dictionary else ("scaled" if self.scaler else "int")
        return (
            f"Column(name={self.name!r}, rows={len(self)}, kind={kind}, "
            f"dtype={self.dtype.name})"
        )

    # -- access -------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The stored integer values (a read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def dtype(self) -> np.dtype:
        """Physical storage dtype of the column."""
        return self._values.dtype

    @property
    def itemsize(self) -> int:
        """Bytes per stored value."""
        return int(self._values.dtype.itemsize)

    @property
    def meta(self) -> StorageMeta:
        """Physical storage metadata (dtype, bounds, distinct-count cache)."""
        return self._meta

    @property
    def is_memory_mapped(self) -> bool:
        """True when the stored values are backed by a memory-mapped file."""
        array = self._values
        return isinstance(array, np.memmap) or isinstance(array.base, np.memmap)

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Read-only view of the stored values in physical rows ``[start, stop)``."""
        view = self._values[start:stop]
        view.flags.writeable = False
        return view

    def min(self) -> int:
        """Minimum stored value (raises on an empty column)."""
        if len(self) == 0:
            raise SchemaError(f"column {self.name!r} is empty")
        if self._meta.min_value is None:
            self._meta.min_value = int(self._values.min())
        return self._meta.min_value

    def max(self) -> int:
        """Maximum stored value (raises on an empty column)."""
        if len(self) == 0:
            raise SchemaError(f"column {self.name!r} is empty")
        if self._meta.max_value is None:
            self._meta.max_value = int(self._values.max())
        return self._meta.max_value

    def distinct_count(self) -> int:
        """Number of distinct stored values (computed once, then cached)."""
        if self._meta.distinct_count is None:
            self._meta.distinct_count = int(np.unique(self._values).size)
        return self._meta.distinct_count

    # -- value conversion ----------------------------------------------------

    def to_storage(self, value) -> int:
        """Convert a user-facing value into the stored integer domain."""
        if self.dictionary is not None:
            return self.dictionary.encode_one(str(value))
        if self.scaler is not None:
            return self.scaler.transform_scalar(float(value))
        return int(value)

    def to_storage_array(self, values: Sequence) -> np.ndarray:
        """Vectorized :meth:`to_storage`: convert a whole sequence at once."""
        if self.dictionary is not None:
            try:
                return self.dictionary.encode([str(value) for value in values])
            except SchemaError as exc:
                raise SchemaError(
                    f"values cannot be stored in column {self.name!r}: {exc}"
                ) from exc
        try:
            if self.scaler is not None:
                return self.scaler.transform(np.asarray(values, dtype=np.float64))
            return np.asarray(values, dtype=np.int64)
        except (ValueError, TypeError) as exc:
            raise SchemaError(
                f"values cannot be stored in column {self.name!r}: {exc}"
            ) from exc

    def to_user(self, value: int):
        """Convert a stored integer back to its user-facing value."""
        if self.dictionary is not None:
            return self.dictionary.decode_one(int(value))
        if self.scaler is not None:
            return float(value) / self.scaler.factor
        return int(value)

    # -- mutation (clustered reorganization only) ----------------------------

    def reorder(self, permutation: np.ndarray) -> None:
        """Physically reorder the column rows by ``permutation``.

        This is the primitive used by clustered indexes to own the physical
        layout; it is the only supported mutation of a column.  The storage
        dtype and bounds are unaffected (a permutation is value-preserving).
        """
        permutation = np.asarray(permutation)
        if permutation.shape != (len(self),):
            raise SchemaError(
                f"permutation length {permutation.shape} does not match column "
                f"length {len(self)}"
            )
        self._values = self._values[permutation]

    def reorder_rows(self, rows: np.ndarray, start: int, stop: int) -> None:
        """Physically reorder only the rows in ``[start, stop)`` by ``rows``.

        ``rows`` is a permutation *relative to the slice*: after the call,
        slice position ``i`` holds the value previously at ``start + rows[i]``.
        Rows outside the range are untouched, so a local merge re-sorts one
        region's row range without rewriting the whole column.  Like
        :meth:`reorder` this is value-preserving: dtype and bounds metadata
        are unaffected.  A read-only backing array (e.g. a column loaded with
        ``mmap_mode="r"``) is copied into the heap first — the mapped file is
        never written through.
        """
        rows = np.asarray(rows)
        if stop < start or start < 0 or stop > len(self):
            raise SchemaError(
                f"row range [{start}, {stop}) is outside column "
                f"{self.name!r} of length {len(self)}"
            )
        if rows.shape != (stop - start,):
            raise SchemaError(
                f"slice permutation length {rows.shape} does not match row "
                f"range [{start}, {stop})"
            )
        if not self._values.flags.writeable:
            self._values = np.array(self._values)
        self._values[start:stop] = self._values[start:stop][rows]

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the stored values."""
        total = int(self._values.nbytes)
        if self.dictionary is not None:
            total += self.dictionary.size_bytes()
        return total

    def describe(self) -> dict:
        """Storage breakdown of this column for reports and artifacts."""
        kind = "dictionary" if self.dictionary else ("scaled" if self.scaler else "int")
        info = {
            "name": self.name,
            "kind": kind,
            "dtype": self.dtype.name,
            "num_rows": len(self),
            "size_bytes": self.size_bytes(),
        }
        if len(self):
            info["min"] = self.min()
            info["max"] = self.max()
            info["distinct_count"] = self.distinct_count()
        return info
