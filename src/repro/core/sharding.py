"""Scale-out serving: a sharded index that fans queries across partitions.

The ROADMAP's north star calls for serving heavy traffic from one process by
fanning work across independently optimized partitions.  :class:`ShardedIndex`
implements that layer on top of the existing serving contract:

* **Partitioning.**  Rows are range-partitioned on a configurable shard
  dimension.  Cut points are placed at equal-count positions of the
  dimension's empirical CDF (the same flat-grid idea the Augmented Grid uses
  for its partition boundaries), so skewed data still yields balanced shards.
  Cuts that would create an empty shard are dropped, so every shard built is
  non-empty.
* **Independent optimization.**  Each shard is built by an index factory
  (:class:`~repro.core.tsunami.TsunamiIndex` for read-only shards,
  :class:`~repro.core.delta.DeltaBufferedIndex` for updatable ones) over its
  own rows, optimized for the subset of the workload that intersects its
  bounding box — per-partition layout optimization is where learned indexes
  win (Flood, §6).
* **Pruning.**  Every shard keeps a per-dimension bounding box (widened by
  any pending inserts in a delta shard's buffer); shards whose box misses the
  query rectangle are skipped entirely.
* **Fan-out.**  ``execute_batch`` dedupes the batch into distinct templates,
  hands every shard the templates that intersect its box — optionally on a
  ``ThreadPoolExecutor`` (``parallelism=``; numpy gathers release the GIL) —
  and recombines the per-shard partials through
  :func:`~repro.baselines.base.combine_partial_results`.  Results are
  bit-identical to single-index execution, in input order: partial sums are
  exact integer sums in float64 and are accumulated in shard order.
* **Fault isolation.**  Each shard call runs behind a
  :class:`~repro.common.resilience.FaultPolicy`: an optional per-shard
  execution timeout (enforced on the worker pool, so a hung shard cannot
  stall the batch), bounded retry with exponential backoff and seeded jitter
  for transient failures, and a per-shard
  :class:`~repro.common.resilience.CircuitBreaker` that stops sending work to
  a shard that keeps failing (open after N consecutive failures, half-open
  probe after a cooldown; state is visible in :meth:`ShardedIndex.explain`).
  When shards still fail after all of that, the policy's degradation mode
  decides: ``"strict"`` (the default) raises a typed
  :class:`~repro.common.errors.PartialResultError` carrying the partial
  aggregates and the failed-shard list; ``"degraded"`` returns the partial
  aggregates and accounts the failure in ``explain``/``describe``.  With no
  faults, the guarded path executes the exact same shard calls in the exact
  same order, so fault-free runs stay bit-identical.

The wrapper implements the full serving contract — ``is_built`` / ``table`` /
``execute`` / ``execute_batch`` / ``execute_workload`` / ``explain`` /
``index_size_bytes`` / ``describe`` — so
:class:`~repro.query.engine.QueryEngine` wraps it unchanged.  When the
factory produces updatable shards, :meth:`insert` / :meth:`insert_many` route
each row to its owning shard by the same partition rule.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from random import Random
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.baselines.base import (
    PartialAggregate,
    QueryResult,
    avg_as_sum,
    combine_partial_results,
    dedupe_queries,
    expand_deduped_results,
    serve_workload,
)
from repro.common import faults
from repro.common.errors import (
    CircuitOpenError,
    IndexBuildError,
    PartialResultError,
    SchemaError,
    ShardTimeoutError,
)
from repro.common.resilience import CircuitBreaker, FaultPolicy
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.column import Column
from repro.storage.scan import ScanStats
from repro.storage.table import Table

#: Zero-argument callable producing a fresh shard index (any object
#: implementing the serving contract; adding ``insert_many`` makes the
#: sharded index updatable).
ShardFactory = Callable[[], object]


def balanced_cuts(values: np.ndarray, num_shards: int) -> list[int]:
    """Range-partition cut points splitting ``values`` into balanced buckets.

    Cuts are taken at equal-count positions of the sorted values (the
    empirical CDF), then thinned until no bucket of
    ``searchsorted(cuts, values, side="right")`` is empty — heavily duplicated
    values can otherwise produce empty buckets.  Returns at most
    ``num_shards - 1`` strictly increasing cut values.
    """
    if num_shards < 1:
        raise IndexBuildError(f"num_shards must be >= 1, got {num_shards}")
    ordered = np.sort(np.asarray(values))
    count = len(ordered)
    if count == 0:
        return []
    cuts = sorted(
        {int(ordered[(i * count) // num_shards]) for i in range(1, num_shards)}
    )
    while cuts:
        assigned = np.searchsorted(cuts, values, side="right")
        bucket_sizes = np.bincount(assigned, minlength=len(cuts) + 1)
        empty = np.flatnonzero(bucket_sizes == 0)
        if len(empty) == 0:
            break
        position = int(empty[0])
        del cuts[position - 1 if position > 0 else 0]
    return cuts


def scaled_tsunami_config(num_shards: int, config=None):
    """A :class:`TsunamiConfig` whose layout budget is one shard's share.

    A shard holds ``1/num_shards`` of the rows and sees a localized slice of
    the workload, so building it with the monolithic index's configuration
    over-partitions it: N shards × ``max_regions`` Grid Tree leaves means a
    query covering a large fraction of one shard's domain plans far more
    Augmented Grids than the single index would.  Dividing the region budget
    by the shard count keeps total planning work comparable while each shard
    still optimizes its own layout.
    """
    from dataclasses import replace

    from repro.core.tsunami import TsunamiConfig

    if num_shards < 1:
        raise IndexBuildError(f"num_shards must be >= 1, got {num_shards}")
    base = config or TsunamiConfig()
    tree = replace(
        base.grid_tree,
        max_regions=max(base.grid_tree.max_regions // num_shards, 2),
    )
    return replace(base, grid_tree=tree)


@dataclass
class FanOutStats:
    """Cumulative fault accounting for one :class:`ShardedIndex`."""

    shard_failures: int = 0
    shard_timeouts: int = 0
    shard_retries: int = 0
    shards_skipped_open: int = 0
    partial_serves: int = 0

    def as_dict(self) -> dict:
        """JSON-serializable summary for ``describe`` and benchmark reports."""
        return {
            "shard_failures": self.shard_failures,
            "shard_timeouts": self.shard_timeouts,
            "shard_retries": self.shard_retries,
            "shards_skipped_open": self.shards_skipped_open,
            "partial_serves": self.partial_serves,
        }


@dataclass
class _ShardOutcome:
    """What one shard's guarded call produced: results, or a reason it didn't."""

    results: list | None = None
    error: BaseException | None = None
    skipped_open: bool = False


class ShardedIndex:
    """N independently optimized index partitions behind one serving contract.

    Parameters
    ----------
    index_factory:
        Zero-argument callable producing a fresh shard index; called once per
        shard at build time.  A factory producing
        :class:`~repro.core.delta.DeltaBufferedIndex` makes the sharded index
        updatable.
    num_shards:
        Target number of partitions; the effective count can be lower when
        the shard dimension has too few distinct values to cut.
    shard_dimension:
        Column to range-partition on.  ``None`` picks the dimension the build
        workload filters most often (falling back to the first column).
    parallelism:
        Maximum worker threads fanning ``execute_batch`` out across shards;
        ``0`` or ``1`` executes shards serially on the calling thread (unless
        a shard timeout forces the pool — see ``fault_policy``).
    fault_policy:
        Per-shard timeout / retry / circuit-breaker / degradation behavior
        (see :class:`~repro.common.resilience.FaultPolicy`).  The default
        policy is inert on the happy path: no timeout, no retries, strict
        degradation, and breakers that only trip on real failures.
    """

    name = "sharded"

    def __init__(
        self,
        index_factory: ShardFactory,
        num_shards: int = 4,
        shard_dimension: str | None = None,
        parallelism: int = 0,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        if num_shards < 1:
            raise IndexBuildError(f"num_shards must be >= 1, got {num_shards}")
        if parallelism < 0:
            raise IndexBuildError(f"parallelism must be >= 0, got {parallelism}")
        self._index_factory = index_factory
        self.num_shards = num_shards
        self.shard_dimension = shard_dimension
        self.parallelism = parallelism
        self.fault_policy = fault_policy or FaultPolicy()
        self.fault_stats = FanOutStats()
        self._table: Table | None = None
        self._table_merges = 0
        self._dimension: str | None = None
        self._boundaries: np.ndarray = np.empty(0, dtype=np.int64)
        self._shards: list = []
        self._breakers: list[CircuitBreaker] = []
        self._retry_rng = Random(self.fault_policy.retry.seed)
        # Failure accounting of the most recent execute/execute_batch call
        # (shard positions that failed / were skipped by an open breaker).
        self._last_fan_out: dict = {
            "shards_failed": [],
            "shards_skipped_open": [],
            "failure_reasons": {},
        }
        # position -> (merge count, table box, pending count, widened box)
        self._box_cache: dict[int, tuple] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- build ----------------------------------------------------------------------

    @staticmethod
    def _choose_dimension(table: Table, workload: Workload | None) -> str:
        """The most frequently filtered dimension, or the first column."""
        counts = {name: 0 for name in table.column_names}
        for query in workload or ():
            for dim in query.filtered_dimensions:
                if dim in counts:
                    counts[dim] += 1
        best = max(table.column_names, key=lambda name: counts[name])
        return best if counts[best] > 0 else table.column_names[0]

    def build(self, table: Table, workload: Workload | None = None) -> "ShardedIndex":
        """Partition ``table`` and build one independently optimized shard each.

        Every shard is built over its own row subset and optimized for the
        queries of ``workload`` that intersect its bounding box.
        """
        if table.num_rows == 0:
            raise IndexBuildError(f"cannot build {self.name} over an empty table")
        dimension = self.shard_dimension or self._choose_dimension(table, workload)
        if dimension not in table:
            raise SchemaError(
                f"shard dimension {dimension!r} does not exist in table "
                f"{table.name!r}; available: {table.column_names}"
            )
        values = table.values(dimension)
        cuts = balanced_cuts(values, min(self.num_shards, table.num_rows))
        assigned = np.searchsorted(np.asarray(cuts, dtype=np.int64), values, side="right")

        shards: list = []
        for shard_id in range(len(cuts) + 1):
            row_ids = np.flatnonzero(assigned == shard_id)
            shard_table = table.subset(row_ids, name=f"{table.name}_shard{shard_id}")
            shard_workload: Workload | None = None
            if workload is not None and len(workload) > 0:
                box = {name: shard_table.bounds(name) for name in shard_table.column_names}
                local = [q for q in workload if q.intersects_box(box)]
                if local:
                    shard_workload = Workload(local, name=f"{workload.name}_shard{shard_id}")
            shard = self._index_factory()
            shard.build(shard_table, shard_workload)
            shards.append(shard)

        self._table = table
        self._table_merges = 0
        self._dimension = dimension
        self._boundaries = np.asarray(cuts, dtype=np.int64)
        self._shards = shards
        self._breakers = [self.fault_policy.build_breaker() for _ in shards]
        self._box_cache = {}
        return self

    @classmethod
    def _from_snapshot(
        cls,
        index_factory: ShardFactory,
        shards: Sequence,
        dimension: str,
        boundaries: Sequence[int],
        parallelism: int,
        table_name: str,
    ) -> "ShardedIndex":
        """Reassemble a sharded index from already-loaded shards (persistence)."""
        index = cls(
            index_factory,
            num_shards=max(len(shards), 1),
            shard_dimension=dimension,
            parallelism=parallelism,
        )
        index._shards = list(shards)
        index._dimension = dimension
        index._boundaries = np.asarray(boundaries, dtype=np.int64)
        index._table = _concat_shard_tables(index._shards, table_name)
        index._breakers = [index.fault_policy.build_breaker() for _ in index._shards]
        index._box_cache = {}
        return index

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexBuildError("ShardedIndex has not been built yet")

    # -- serving contract --------------------------------------------------------------

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed (serving-contract parity)."""
        return bool(self._shards) and all(shard.is_built for shard in self._shards)

    @property
    def table(self) -> Table:
        """The logical (unsharded) view of every row the shards serve.

        Each shard clusters its own copy of its rows; this is the source
        table, kept for encodings and as the full-scan oracle.  When a delta
        shard merges pending inserts into its own table, the cached view is
        rebuilt by concatenating the shard tables so the logical table keeps
        covering every merged row (row order then follows shard order, not
        the original source order).  Rows still pending in a shard's buffer
        are not part of the table, as with ``DeltaBufferedIndex.table``.
        """
        self._require_built()
        assert self._table is not None
        merges = sum(len(getattr(shard, "merge_history", ())) for shard in self._shards)
        if merges != self._table_merges:
            self._table = _concat_shard_tables(self._shards, self._table.name)
            self._table_merges = merges
        return self._table

    @property
    def shards(self) -> list:
        """The per-partition indexes, in shard-dimension order."""
        return list(self._shards)

    @property
    def dimension(self) -> str:
        """The dimension rows are range-partitioned on."""
        self._require_built()
        assert self._dimension is not None
        return self._dimension

    @property
    def boundaries(self) -> list[int]:
        """The partition cut points: shard ``i`` holds shard-dimension values
        in ``[boundaries[i-1], boundaries[i])`` (unbounded at either end)."""
        return [int(b) for b in self._boundaries]

    @property
    def num_rows(self) -> int:
        """Total rows visible to queries across every shard (including pending)."""
        self._require_built()
        return sum(
            getattr(shard, "num_rows", None) or shard.table.num_rows
            for shard in self._shards
        )

    @property
    def num_pending(self) -> int:
        """Inserted rows not yet merged into the shards' main indexes."""
        return sum(getattr(shard, "num_pending", 0) for shard in self._shards)

    # -- pruning -------------------------------------------------------------------------

    def _shard_box(self, position: int) -> dict[str, tuple[int, int]]:
        """The per-dimension bounding box of shard ``position``.

        The box over the shard's clustered table is cached and invalidated
        when a delta shard merges (its table object is replaced); pending
        buffered inserts widen the box so a query matching only unmerged rows
        is never pruned.  The widened box is cached by buffer length, so it
        is recomputed once per insert batch rather than once per query.
        """
        shard = self._shards[position]
        merges = len(getattr(shard, "merge_history", ()))
        pending = getattr(shard, "num_pending", 0)
        cached = self._box_cache.get(position)
        if cached is None or cached[0] != merges:
            shard_table = shard.table
            box = {name: shard_table.bounds(name) for name in shard_table.column_names}
            cached = (merges, box, -1, box)
            self._box_cache[position] = cached
        if pending == 0:
            return cached[1]
        if cached[2] != pending:
            buffer = shard.buffer
            widened = {}
            for name, (low, high) in cached[1].items():
                values = buffer.column(name)
                widened[name] = (
                    min(low, int(values.min())),
                    max(high, int(values.max())),
                )
            cached = (cached[0], cached[1], pending, widened)
            self._box_cache[position] = cached
        return cached[3]

    def shards_pruned(self, query: Query) -> int:
        """How many shards' bounding boxes miss ``query`` (skipped entirely)."""
        self._require_built()
        return sum(
            0 if query.intersects_box(self._shard_box(position)) else 1
            for position in range(len(self._shards))
        )

    # -- inserts ----------------------------------------------------------------------

    def _require_updatable(self) -> None:
        if not all(hasattr(shard, "insert_many") for shard in self._shards):
            raise IndexBuildError(
                f"{self.name} shards of type "
                f"{type(self._shards[0]).__name__!r} are not updatable; build "
                "with an index factory producing DeltaBufferedIndex shards"
            )

    def insert(self, row: Mapping[str, object]) -> None:
        """Insert one row, routed to its owning shard by the partition rule."""
        self.insert_many([row])

    def insert_many(self, rows: Sequence[Mapping[str, object]]) -> None:
        """Insert several rows, routed per shard through the vectorized path.

        Every row is schema-checked and every column converted before any
        shard buffers anything, so a bad value rejects the whole batch (the
        same all-or-nothing contract as ``DeltaBufferedIndex.insert_many``)
        instead of leaving earlier shards with half the batch inserted.
        """
        rows = list(rows)
        if not rows:
            return
        self._require_built()
        self._require_updatable()
        assert self._dimension is not None
        table = self._shards[0].table
        routing: np.ndarray | None = None
        for name in table.column_names:
            try:
                values = [row[name] for row in rows]
            except KeyError:
                position = next(i for i, row in enumerate(rows) if name not in row)
                missing = [c for c in table.column_names if c not in rows[position]]
                raise SchemaError(
                    f"insert is missing values for columns {missing}"
                ) from None
            storage = table.column(name).to_storage_array(values)
            if name == self._dimension:
                routing = storage
        assert routing is not None
        assigned = np.searchsorted(self._boundaries, routing, side="right")
        for shard_id in np.unique(assigned):
            selected = np.flatnonzero(assigned == shard_id)
            self._shards[int(shard_id)].insert_many([rows[int(i)] for i in selected])

    def merge(self) -> list:
        """Fold every shard's pending inserts into its main index.

        Returns the per-shard :class:`~repro.core.delta.MergeReport` objects
        (``None`` entries for shards whose buffer was empty).
        """
        self._require_built()
        self._require_updatable()
        reports = []
        for position, shard in enumerate(self._shards):
            faults.trigger("shard.merge", key=position)
            reports.append(shard.merge())
        return reports

    # -- queries ----------------------------------------------------------------------

    @staticmethod
    def _partial(result: QueryResult) -> PartialAggregate:
        return PartialAggregate(
            value=result.value, matched=result.stats.rows_matched, stats=result.stats
        )

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """The fan-out worker pool, created lazily and reused across batches.

        Spawning threads per batch would dominate small batches; numpy
        gathers and filter masks release the GIL, so shard batches overlap on
        multi-core hosts.  When a shard timeout is configured the pool is
        sized to run every shard concurrently (capped), so one hung shard
        cannot queue-block the others into spurious timeouts.
        """
        with self._pool_lock:
            if self._pool is None:
                workers = max(self.parallelism, 1)
                if self.fault_policy.shard_timeout_seconds is not None:
                    workers = max(workers, len(self._shards))
                self._pool = ThreadPoolExecutor(
                    max_workers=min(workers, 32), thread_name_prefix="shard"
                )
            return self._pool

    def _use_pool(self, num_tasks: int) -> bool:
        if self.fault_policy.shard_timeout_seconds is not None:
            return True
        return self.parallelism > 1 and num_tasks > 1

    def _execute_wave(
        self, tasks: list, run_task
    ) -> tuple[list[tuple[int, list]], list[tuple[int, BaseException]]]:
        """Run one attempt over ``tasks``; returns (successes, failures).

        Each task touches exactly one shard, so shard-local mutable state
        (plan caches, scan stats) is never shared across workers.  With a
        shard timeout configured, tasks run on the pool and each must finish
        within ``shard_timeout_seconds`` of the wave start (they run
        concurrently under that shared deadline); a worker that overruns is
        abandoned — Python threads cannot be killed — and its shard accounted
        as timed out.
        """
        timeout = self.fault_policy.shard_timeout_seconds
        successes: list[tuple[int, list]] = []
        failures: list[tuple[int, BaseException]] = []
        if self._use_pool(len(tasks)):
            pool = self._ensure_pool()
            futures = [(task[0], pool.submit(run_task, task)) for task in tasks]
            deadline = None if timeout is None else time.monotonic() + timeout
            for position, future in futures:
                remaining = (
                    None if deadline is None else max(deadline - time.monotonic(), 0.0)
                )
                try:
                    successes.append((position, future.result(remaining)))
                except FutureTimeoutError:
                    future.cancel()  # drop it if still queued; running ones finish ignored
                    self.fault_stats.shard_timeouts += 1
                    failures.append(
                        (
                            position,
                            ShardTimeoutError(
                                f"shard {position} exceeded its execution budget "
                                f"of {timeout}s",
                                shard=position,
                                timeout_seconds=timeout,
                            ),
                        )
                    )
                except Exception as exc:
                    failures.append((position, exc))
        else:
            for task in tasks:
                try:
                    successes.append((task[0], run_task(task)))
                except Exception as exc:
                    failures.append((task[0], exc))
        return successes, failures

    def _run_guarded(self, tasks: list, run_task) -> dict[int, _ShardOutcome]:
        """Run per-shard tasks behind breakers, retries, and timeouts.

        ``tasks`` hold one entry per shard position (position first).  Shards
        whose breaker refuses work are skipped without execution; the rest
        run in retry waves — transient failures are retried up to
        ``retry.max_retries`` times with jittered exponential backoff between
        waves.  Breakers record one success or one final failure per task
        (attempts are not individually counted, so one flaky call survived by
        a retry does not creep a breaker toward open).
        """
        policy = self.fault_policy
        outcomes: dict[int, _ShardOutcome] = {}
        task_by_position: dict[int, object] = {}
        pending: list = []
        for task in tasks:
            position = task[0]
            breaker = self._breakers[position]
            if breaker.allow():
                task_by_position[position] = task
                pending.append(task)
            else:
                self.fault_stats.shards_skipped_open += 1
                outcomes[position] = _ShardOutcome(
                    error=CircuitOpenError(
                        f"shard {position} circuit breaker is open "
                        f"({breaker.consecutive_failures} consecutive failures)",
                        shard=position,
                        consecutive_failures=breaker.consecutive_failures,
                    ),
                    skipped_open=True,
                )
        attempt = 0
        while pending:
            successes, failures = self._execute_wave(pending, run_task)
            for position, results in successes:
                self._breakers[position].record_success()
                outcomes[position] = _ShardOutcome(results=results)
            if not failures:
                break
            if attempt >= policy.retry.max_retries:
                for position, error in failures:
                    self._breakers[position].record_failure()
                    self.fault_stats.shard_failures += 1
                    outcomes[position] = _ShardOutcome(error=error)
                break
            self.fault_stats.shard_retries += len(failures)
            delay = policy.retry.delay_seconds(attempt, self._retry_rng)
            if delay > 0:
                time.sleep(delay)
            pending = [task_by_position[position] for position, _ in failures]
            attempt += 1
        return outcomes

    def _fan_out(
        self, distinct: Sequence[Query]
    ) -> tuple[list[list[PartialAggregate]], dict]:
        """Serve the distinct templates across shards; partials plus accounting.

        Partials are accumulated in shard-position order regardless of which
        worker finished first, so fault-free recombination is bit-identical
        to serial execution.
        """
        tasks: list[tuple[int, list[int]]] = []
        for position in range(len(self._shards)):
            box = self._shard_box(position)
            hit = [i for i, query in enumerate(distinct) if query.intersects_box(box)]
            if hit:
                tasks.append((position, hit))

        def run_shard(task: tuple[int, list[int]]) -> list[QueryResult]:
            position, hit = task
            faults.trigger("shard.execute", key=position)
            return self._shards[position].execute_batch(
                [avg_as_sum(distinct[i]) for i in hit]
            )

        outcomes = self._run_guarded(tasks, run_shard)
        partials_per_query: list[list[PartialAggregate]] = [[] for _ in distinct]
        failed: list[int] = []
        skipped: list[int] = []
        reasons: dict[int, str] = {}
        for position, hit in tasks:
            outcome = outcomes[position]
            if outcome.error is not None:
                (skipped if outcome.skipped_open else failed).append(position)
                reasons[position] = repr(outcome.error)
                continue
            for i, result in zip(hit, outcome.results):
                partials_per_query[i].append(self._partial(result))
        report = {
            "shards_failed": failed,
            "shards_skipped_open": skipped,
            "failure_reasons": reasons,
        }
        self._last_fan_out = report
        if failed or skipped:
            self.fault_stats.partial_serves += 1
        return partials_per_query, report

    def _finish_fan_out(self, results: list[QueryResult], report: dict):
        """Apply the degradation policy to one fan-out's combined results."""
        if not (report["shards_failed"] or report["shards_skipped_open"]):
            return results
        if self.fault_policy.degradation == "degraded":
            return results
        raise PartialResultError(
            f"{len(report['shards_failed'])} shard(s) failed and "
            f"{len(report['shards_skipped_open'])} were skipped by open circuit "
            "breakers; partial aggregates attached",
            partial_results=results,
            failed_shards=report["shards_failed"],
            skipped_shards=report["shards_skipped_open"],
            failure_reasons=report["failure_reasons"],
        )

    def close(self) -> None:
        """Shut down the fan-out worker pool (idempotent).

        Long-running servers would otherwise leak the persistent pool's
        threads on every index they retire.  Safe to call while a batch is in
        flight (the shutdown waits for in-flight shard tasks, and the fan-out
        holds its own pool reference), and safe to call repeatedly.  The
        index remains usable after closing: the next threaded batch lazily
        recreates the pool.  The serving front-end's shutdown path calls this
        through :meth:`~repro.query.engine.QueryEngine.close`.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def execute(self, query: Query) -> QueryResult:
        """Answer ``query`` over every non-pruned shard and recombine.

        Under the fault policy's ``"strict"`` degradation (the default), a
        shard failure raises :class:`~repro.common.errors.PartialResultError`
        with the partial aggregate attached; ``"degraded"`` returns the
        partial aggregate over the shards that answered.
        """
        self._require_built()
        partials_per_query, report = self._fan_out([query])
        combined = combine_partial_results(query.aggregate, partials_per_query[0])
        return self._finish_fan_out([combined], report)[0]

    def execute_batch(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries with per-shard fan-out.

        The batch is deduped into distinct templates; every shard receives
        the templates intersecting its bounding box and serves them through
        its own batched pipeline (shard batches run concurrently when
        ``parallelism > 1``).  Per-shard partials are recombined in shard
        order, so results are bit-identical to per-query :meth:`execute`, in
        input order.  Shard failures follow the fault policy's degradation
        mode, as in :meth:`execute` (strict mode attaches the full batch's
        partial results to the :class:`PartialResultError`).
        """
        self._require_built()
        queries = list(queries)
        if not queries:
            return []
        distinct, order = dedupe_queries(queries)
        partials_per_query, report = self._fan_out(distinct)
        combined = [
            combine_partial_results(query.aggregate, partials)
            for query, partials in zip(distinct, partials_per_query)
        ]
        return self._finish_fan_out(expand_deduped_results(combined, order), report)

    def execute_workload(self, workload: Workload) -> tuple[list[QueryResult], ScanStats]:
        """Execute every query in ``workload`` and return results plus total work."""
        return serve_workload(self, workload)

    # -- reporting --------------------------------------------------------------------

    def explain(self, query: Query) -> dict:
        """The combined plan for ``query``: per-shard plans plus pruning counters.

        Also reports the fault-isolation state the next execution would see:
        every shard's circuit-breaker state (open shards would be skipped),
        and the failure accounting of the most recent execution
        (``shards_failed`` / ``shards_skipped_open``) — the counters degraded
        mode uses to report partial answers.
        """
        self._require_built()
        shard_plans = []
        pruned = 0
        for position in range(len(self._shards)):
            if query.intersects_box(self._shard_box(position)):
                shard_plans.append((position, self._shards[position].explain(query)))
            else:
                pruned += 1
        rows_to_scan = sum(plan["rows_to_scan"] for _, plan in shard_plans)
        inner = self._shards[0].name
        return {
            "index": f"{self.name}({inner})",
            "filtered_dimensions": list(query.filtered_dimensions),
            "aggregate": query.aggregate,
            "num_shards": len(self._shards),
            "shards_pruned": pruned,
            "shard_dimension": self._dimension,
            "cell_ranges": sum(plan["cell_ranges"] for _, plan in shard_plans),
            "rows_to_scan": rows_to_scan,
            "exact_rows": sum(plan.get("exact_rows", 0) for _, plan in shard_plans),
            "table_fraction_scanned": rows_to_scan / max(self.num_rows, 1),
            "shard_plans": {position: plan for position, plan in shard_plans},
            "degradation": self.fault_policy.degradation,
            "circuit_breakers": [breaker.state for breaker in self._breakers],
            "shards_failed": list(self._last_fan_out["shards_failed"]),
            "shards_skipped_open": list(self._last_fan_out["shards_skipped_open"]),
        }

    def index_size_bytes(self) -> int:
        """Sum of the shard structures plus the partition boundaries."""
        self._require_built()
        return (
            sum(shard.index_size_bytes() for shard in self._shards)
            + 8 * len(self._boundaries)
            + 64
        )

    def describe(self) -> dict:
        """Structural statistics of the partitioning and every shard."""
        self._require_built()
        return {
            "name": self.name,
            "num_shards": len(self._shards),
            "shard_dimension": self._dimension,
            "boundaries": self.boundaries,
            "parallelism": self.parallelism,
            "total_rows": self.num_rows,
            "pending_inserts": self.num_pending,
            # Updatable shards merge independently (a hot shard's merge never
            # touches a cold shard); surface the strategy their buffers use.
            "merge_strategy": getattr(self._shards[0], "merge_strategy", None),
            "rows_per_shard": [
                getattr(shard, "num_rows", None) or shard.table.num_rows
                for shard in self._shards
            ],
            "degradation": self.fault_policy.degradation,
            "fault_stats": self.fault_stats.as_dict(),
            "circuit_breakers": [breaker.as_dict() for breaker in self._breakers],
            "shards": [shard.describe() for shard in self._shards],
        }


def _concat_shard_tables(shards: Sequence, name: str) -> Table:
    """Concatenate shard tables into one logical table (snapshot reassembly)."""
    first = shards[0].table
    columns = []
    for column_name in first.column_names:
        source = first.column(column_name)
        values = np.concatenate([shard.table.values(column_name) for shard in shards])
        columns.append(
            Column(
                column_name,
                values,
                dictionary=source.dictionary,
                scaler=source.scaler,
            )
        )
    return Table(name, columns)
