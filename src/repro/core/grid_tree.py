"""The Grid Tree: a space-partitioning decision tree that reduces query skew (§4).

The Grid Tree divides the data space into non-overlapping regions such that
the query workload has little skew inside each region.  Unlike a k-d tree it
is built from the *query workload*, its internal nodes may split on more than
one value, and it is deliberately shallow and small (Table 4): its only job is
to remove inter-region skew so that a simple grid index per region works well.

Construction (§4.3) is greedy and recursive: at each node, every dimension is
evaluated with a skew tree (:mod:`repro.core.skew`) to find the split values
that remove the most combined query skew; the best dimension wins, unless the
reduction or the node's point/query share falls below the configured
thresholds, in which case the node becomes a leaf region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.common.errors import IndexBuildError
from repro.core.skew import SplitCandidate, evaluate_split_dimension
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


@dataclass(frozen=True)
class GridTreeConfig:
    """Tuning knobs for Grid Tree construction (defaults follow §4.3)."""

    num_histogram_bins: int = 128
    min_skew_reduction_fraction: float = 0.05
    min_points_fraction: float = 0.01
    min_queries_fraction: float = 0.05
    merge_tolerance: float = 0.10
    max_depth: int = 4
    max_children: int = 6
    max_regions: int = 48
    max_unique_values_for_exact_bins: int = 128


@dataclass
class GridTreeNode:
    """One node of the Grid Tree.

    ``bounds`` is the node's data-space extent per dimension (half-open
    ``[low, high)`` in storage units).  Internal nodes carry a split dimension
    and split values; leaves carry a ``region_id``.
    """

    bounds: dict[str, tuple[float, float]]
    depth: int
    num_points: int
    num_queries: int
    split_dimension: str | None = None
    split_values: tuple[float, ...] = ()
    children: list["GridTreeNode"] = field(default_factory=list)
    region_id: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def child_index_for_value(self, value: float) -> int:
        """Which child a point with ``value`` in the split dimension belongs to."""
        return int(np.searchsorted(np.asarray(self.split_values), value, side="right"))


class GridTree:
    """A fitted Grid Tree over a table and a typed query workload."""

    def __init__(self, config: GridTreeConfig | None = None) -> None:
        self.config = config or GridTreeConfig()
        self.root: GridTreeNode | None = None
        self.leaves: list[GridTreeNode] = []
        self.num_nodes = 0
        self.depth = 0
        self._dimensions: list[str] = []

    # -- construction --------------------------------------------------------------

    def fit(self, table: Table, workload: Workload) -> "GridTree":
        """Build the tree from the full dataset and the (typed) sample workload."""
        if table.num_rows == 0:
            raise IndexBuildError("cannot build a Grid Tree over an empty table")
        self._dimensions = list(table.column_names)
        bounds = {}
        unique_values: dict[str, np.ndarray | None] = {}
        for dim in self._dimensions:
            low, high = table.bounds(dim)
            bounds[dim] = (float(low), float(high) + 1.0)
            values = table.values(dim)
            distinct = np.unique(values)
            if len(distinct) <= self.config.max_unique_values_for_exact_bins:
                unique_values[dim] = distinct.astype(np.float64)
            else:
                unique_values[dim] = None
        self._unique_values = unique_values

        self.leaves = []
        self.num_nodes = 0
        self.depth = 0
        total_points = table.num_rows
        total_queries = max(len(workload), 1)
        self.root = self._build_node(
            table=table,
            row_ids=np.arange(table.num_rows),
            queries=list(workload),
            bounds=bounds,
            depth=0,
            total_points=total_points,
            total_queries=total_queries,
        )
        return self

    def _queries_per_type_intervals(
        self, queries: list[Query], dimension: str, low: float, high: float
    ) -> dict[int, list[tuple[float, float]]]:
        """Per-type filter intervals over ``dimension``, restricted to queries filtering it."""
        per_type: dict[int, list[tuple[float, float]]] = {}
        for query in queries:
            predicate = query.predicate_for(dimension)
            if predicate is None:
                continue
            if predicate.high < low or predicate.low >= high:
                continue
            type_id = query.query_type if query.query_type is not None else 0
            per_type.setdefault(type_id, []).append(
                (float(predicate.low), float(predicate.high))
            )
        return per_type

    def _best_split(
        self, queries: list[Query], bounds: dict[str, tuple[float, float]]
    ) -> SplitCandidate | None:
        """Evaluate every dimension and return the candidate with the largest reduction."""
        best: SplitCandidate | None = None
        for dimension in self._dimensions:
            low, high = bounds[dimension]
            per_type = self._queries_per_type_intervals(queries, dimension, low, high)
            if not per_type:
                continue
            candidate = evaluate_split_dimension(
                dimension,
                per_type,
                low,
                high,
                num_bins=self.config.num_histogram_bins,
                unique_values=self._unique_values.get(dimension),
                merge_tolerance=self.config.merge_tolerance,
            )
            if not candidate.split_values:
                continue
            if best is None or candidate.skew_reduction > best.skew_reduction:
                best = candidate
        return best

    def _make_leaf(self, node: GridTreeNode) -> GridTreeNode:
        node.region_id = len(self.leaves)
        self.leaves.append(node)
        return node

    def _build_node(
        self,
        table: Table,
        row_ids: np.ndarray,
        queries: list[Query],
        bounds: dict[str, tuple[float, float]],
        depth: int,
        total_points: int,
        total_queries: int,
        reserved: int = 0,
    ) -> GridTreeNode:
        self.num_nodes += 1
        self.depth = max(self.depth, depth)
        node = GridTreeNode(
            bounds=bounds,
            depth=depth,
            num_points=len(row_ids),
            num_queries=len(queries),
        )

        # Stopping rules (§4.3.2): too deep, too few points, or too few queries.
        # ``max_regions`` is an additional engineering bound keeping the tree
        # lightweight at small data scales (see DESIGN.md §6).  ``reserved``
        # counts sibling/ancestor subtrees still awaiting construction, each
        # of which will produce at least one leaf, so the budget check holds
        # across the whole depth-first build rather than only locally.
        if (
            depth >= self.config.max_depth
            or len(self.leaves) + reserved + 1 > self.config.max_regions
            or len(row_ids) <= self.config.min_points_fraction * total_points
            or len(queries) <= self.config.min_queries_fraction * total_queries
        ):
            return self._make_leaf(node)

        candidate = self._best_split(queries, bounds)
        if candidate is None:
            return self._make_leaf(node)
        if candidate.skew_reduction < self.config.min_skew_reduction_fraction * len(queries):
            return self._make_leaf(node)

        dimension = candidate.dimension
        low, high = bounds[dimension]
        split_values = list(candidate.split_values)
        # Keep the tree lightweight: a node may have at most ``max_children``
        # children, so thin out excess split values evenly if needed.
        max_splits = max(1, self.config.max_children - 1)
        if len(split_values) > max_splits:
            chosen = np.linspace(0, len(split_values) - 1, max_splits).round().astype(int)
            split_values = [split_values[i] for i in sorted(set(chosen.tolist()))]
        # Respect the region budget: splitting replaces this node's single
        # reserved leaf slot with one slot per child, so it is only allowed if
        # the finished leaves, the slots reserved by pending subtrees, and the
        # new children all fit within ``max_regions``.
        if len(self.leaves) + reserved + len(split_values) + 1 > self.config.max_regions:
            return self._make_leaf(node)
        boundaries = [low, *split_values, high]
        node.split_dimension = dimension
        node.split_values = tuple(split_values)

        values = table.values(dimension)[row_ids]
        num_children = len(boundaries) - 1
        for child_id in range(num_children):
            child_low, child_high = boundaries[child_id], boundaries[child_id + 1]
            child_bounds = dict(bounds)
            child_bounds[dimension] = (child_low, child_high)
            mask = (values >= child_low) & (values < child_high)
            child_rows = row_ids[mask]
            child_queries = [
                q
                for q in queries
                if self._query_intersects(q, dimension, child_low, child_high)
            ]
            child = self._build_node(
                table=table,
                row_ids=child_rows,
                queries=child_queries,
                bounds=child_bounds,
                depth=depth + 1,
                total_points=total_points,
                total_queries=total_queries,
                reserved=reserved + (num_children - 1 - child_id),
            )
            node.children.append(child)
        return node

    @staticmethod
    def _query_intersects(query: Query, dimension: str, low: float, high: float) -> bool:
        predicate = query.predicate_for(dimension)
        if predicate is None:
            return True
        return predicate.high >= low and predicate.low < high

    # -- usage ------------------------------------------------------------------------

    def _require_fitted(self) -> GridTreeNode:
        if self.root is None:
            raise IndexBuildError("GridTree has not been fitted")
        return self.root

    @property
    def num_regions(self) -> int:
        """Number of leaf regions."""
        return len(self.leaves)

    def assign_regions(self, table: Table) -> np.ndarray:
        """Region id of every row in ``table`` (vectorized tree traversal)."""
        root = self._require_fitted()
        region_ids = np.empty(table.num_rows, dtype=np.int64)

        def descend(node: GridTreeNode, row_ids: np.ndarray) -> None:
            if node.is_leaf:
                region_ids[row_ids] = node.region_id
                return
            values = table.values(node.split_dimension)[row_ids]
            child_index = np.searchsorted(
                np.asarray(node.split_values), values, side="right"
            )
            for index, child in enumerate(node.children):
                members = row_ids[child_index == index]
                if len(members):
                    descend(child, members)

        descend(root, np.arange(table.num_rows))
        return region_ids

    def regions_for_query(self, query: Query) -> list[GridTreeNode]:
        """All leaf regions whose extent intersects the query rectangle."""
        root = self._require_fitted()
        result: list[GridTreeNode] = []

        def descend(node: GridTreeNode) -> None:
            if node.is_leaf:
                result.append(node)
                return
            predicate = query.predicate_for(node.split_dimension)
            # Edge children are open-ended: assign_regions routes every value
            # below the first split (or at/above the last) into the edge
            # leaves, so after local merges absorb out-of-domain inserts the
            # query side must reach those leaves too.
            boundaries = [-np.inf, *node.split_values, np.inf]
            for index, child in enumerate(node.children):
                child_low, child_high = boundaries[index], boundaries[index + 1]
                if predicate is None or (
                    predicate.high >= child_low and predicate.low < child_high
                ):
                    descend(child)

        descend(root)
        return result

    def regions_for_queries(self, queries: Sequence[Query]) -> list[list[GridTreeNode]]:
        """Intersecting leaf regions for every query, in one tree traversal.

        Equivalent to ``[self.regions_for_query(q) for q in queries]`` but the
        tree is descended once with the whole batch: at each inner node the
        batch is split among the children, so shared prefixes of the
        traversal are paid once per batch instead of once per query.
        """
        root = self._require_fitted()
        result: list[list[GridTreeNode]] = [[] for _ in queries]

        def descend(node: GridTreeNode, members: list[int]) -> None:
            if node.is_leaf:
                for position in members:
                    result[position].append(node)
                return
            # Open-ended edge children, matching assign_regions (see
            # regions_for_query).
            boundaries = [-np.inf, *node.split_values, np.inf]
            predicates = [
                (position, queries[position].predicate_for(node.split_dimension))
                for position in members
            ]
            for index, child in enumerate(node.children):
                child_low, child_high = boundaries[index], boundaries[index + 1]
                surviving = [
                    position
                    for position, predicate in predicates
                    if predicate is None
                    or (predicate.high >= child_low and predicate.low < child_high)
                ]
                if surviving:
                    descend(child, surviving)

        descend(root, list(range(len(queries))))
        return result

    def describe(self) -> dict:
        """Structural statistics reported in Table 4."""
        self._require_fitted()
        points = [leaf.num_points for leaf in self.leaves]
        return {
            "num_nodes": self.num_nodes,
            "depth": self.depth,
            "num_regions": self.num_regions,
            "min_points_per_region": int(min(points)) if points else 0,
            "median_points_per_region": float(np.median(points)) if points else 0.0,
            "max_points_per_region": int(max(points)) if points else 0,
        }

    def size_bytes(self) -> int:
        """Approximate footprint: split values plus child pointers per node."""
        total = 0

        def visit(node: GridTreeNode) -> None:
            nonlocal total
            total += 32 + 8 * len(node.split_values) + 8 * len(node.children)
            for child in node.children:
                visit(child)

        visit(self._require_fitted())
        return total
