"""Outlier-aware functional mappings (§8, "Complex Correlations").

The paper points out that plain functional mappings "are not robust to
outliers: one outlier can significantly increase the error bound of the
mapping" and sketches the fix used by Hermit [45]: keep the outliers in a
separate buffer so the regression's error bounds only have to cover the
well-behaved points.

:class:`OutlierBoundedMapping` implements that extension.  It fits a
:class:`~repro.stats.correlation.BoundedLinearModel` on the inlier subset of
the data and stores the outlying ``(mapped, target)`` pairs explicitly.  The
covering guarantee of §5.2.1 is preserved: a filter range over the mapped
dimension Y is rewritten to the union of

* the inlier model's predicted range (with its now much tighter error bounds),
  and
* the exact target values of every buffered outlier whose mapped value falls
  inside the filter range.

The class intentionally mirrors the interface of ``BoundedLinearModel``
(:meth:`predict`, :meth:`map_range`, :attr:`error_span`,
:meth:`relative_error`, :meth:`size_bytes`), so the Augmented Grid can use
either implementation behind the ``outlier_aware_mappings`` configuration
switch without any further changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import IndexBuildError
from repro.stats.correlation import BoundedLinearModel

#: Residuals beyond this many robust standard deviations (MAD-based) are
#: treated as outliers, subject to the ``max_outlier_fraction`` cap.
DEFAULT_RESIDUAL_SIGMAS = 4.0

#: Hard cap on the fraction of rows that may be moved into the outlier buffer.
#: Buffering more than this means the correlation simply is not tight enough
#: for a functional mapping and the caller should fall back to a conditional
#: CDF instead.
DEFAULT_MAX_OUTLIER_FRACTION = 0.05


@dataclass(frozen=True)
class OutlierBoundedMapping:
    """A functional mapping whose error bounds exclude buffered outliers.

    Parameters
    ----------
    model:
        The bounded linear regression fitted on the inlier rows only.
    outlier_mapped:
        Mapped-dimension (Y) values of the buffered outliers, sorted ascending.
    outlier_target:
        Target-dimension (X) values of the buffered outliers, aligned with
        ``outlier_mapped``.
    """

    model: BoundedLinearModel
    outlier_mapped: np.ndarray
    outlier_target: np.ndarray

    # -- fitting -----------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        mapped_values: np.ndarray,
        target_values: np.ndarray,
        residual_sigmas: float = DEFAULT_RESIDUAL_SIGMAS,
        max_outlier_fraction: float = DEFAULT_MAX_OUTLIER_FRACTION,
    ) -> "OutlierBoundedMapping":
        """Fit the mapping, moving extreme residuals into the outlier buffer.

        A preliminary regression over all rows defines the residuals; rows
        whose absolute residual exceeds ``residual_sigmas`` robust standard
        deviations (estimated from the median absolute deviation) are
        buffered, capped at ``max_outlier_fraction`` of the rows (the most
        extreme residuals win).  The final regression and its error bounds are
        computed over the remaining inliers.
        """
        if not 0.0 <= max_outlier_fraction < 1.0:
            raise IndexBuildError(
                f"max_outlier_fraction must be in [0, 1), got {max_outlier_fraction}"
            )
        y = np.asarray(mapped_values, dtype=np.float64)
        x = np.asarray(target_values, dtype=np.float64)
        if y.shape != x.shape:
            raise IndexBuildError("mapped and target value arrays differ in length")
        if y.size == 0:
            raise IndexBuildError("cannot fit a functional mapping on no data")

        preliminary = BoundedLinearModel.fit(y, x)
        residuals = x - (preliminary.slope * y + preliminary.intercept)
        outlier_mask = cls._outlier_mask(
            residuals, residual_sigmas=residual_sigmas, max_fraction=max_outlier_fraction
        )

        inlier_y, inlier_x = y[~outlier_mask], x[~outlier_mask]
        if inlier_y.size == 0:
            # Degenerate data (every row flagged): keep everything as inliers.
            outlier_mask = np.zeros(y.shape, dtype=bool)
            inlier_y, inlier_x = y, x
        model = BoundedLinearModel.fit(inlier_y, inlier_x)

        order = np.argsort(y[outlier_mask], kind="stable")
        return cls(
            model=model,
            outlier_mapped=np.ascontiguousarray(y[outlier_mask][order]),
            outlier_target=np.ascontiguousarray(x[outlier_mask][order]),
        )

    @staticmethod
    def _outlier_mask(
        residuals: np.ndarray, residual_sigmas: float, max_fraction: float
    ) -> np.ndarray:
        """Boolean mask of rows to buffer, honouring the fraction cap."""
        if residuals.size == 0 or max_fraction == 0.0:
            return np.zeros(residuals.shape, dtype=bool)
        deviation = np.abs(residuals - np.median(residuals))
        # 1.4826 rescales the median absolute deviation to a Gaussian sigma.
        robust_sigma = 1.4826 * float(np.median(deviation))
        if robust_sigma == 0.0:
            # Most residuals are identical; flag anything that deviates at all.
            mask = deviation > 0.0
        else:
            mask = deviation > residual_sigmas * robust_sigma
        budget = int(np.floor(max_fraction * residuals.size))
        if int(mask.sum()) <= budget:
            return mask
        if budget == 0:
            return np.zeros(residuals.shape, dtype=bool)
        # Keep only the ``budget`` most extreme residuals.
        threshold = np.partition(deviation, residuals.size - budget)[residuals.size - budget]
        return deviation >= threshold

    # -- mapping interface --------------------------------------------------------

    @property
    def num_outliers(self) -> int:
        """Number of rows held in the outlier buffer."""
        return int(self.outlier_mapped.size)

    def widened(
        self, mapped_values: np.ndarray, target_values: np.ndarray
    ) -> "OutlierBoundedMapping":
        """Copy whose inlier bounds also cover the given rows.

        The appended rows are all treated as inliers — the buffer is kept
        as-is rather than re-deciding outliers, so the covering guarantee of
        :meth:`map_range` extends to them at the cost of (possibly) looser
        bounds.  The delta absorb path uses this for small increments; a
        region whose distribution shifts enough to matter is refit instead.
        """
        return OutlierBoundedMapping(
            model=self.model.widened(mapped_values, target_values),
            outlier_mapped=self.outlier_mapped,
            outlier_target=self.outlier_target,
        )

    def predict(self, y: float) -> float:
        """Point prediction of the target value for mapped value ``y``."""
        return self.model.predict(y)

    def map_range(self, y_low: float, y_high: float) -> tuple[float, float]:
        """Map a filter range over Y to a covering range over X.

        The inlier model's range is widened only by the buffered outliers
        whose mapped value actually falls inside ``[y_low, y_high]``, so
        unrelated outliers never inflate the range.
        """
        x_low, x_high = self.model.map_range(y_low, y_high)
        if self.num_outliers:
            first = int(np.searchsorted(self.outlier_mapped, y_low, side="left"))
            last = int(np.searchsorted(self.outlier_mapped, y_high, side="right"))
            if last > first:
                hit_targets = self.outlier_target[first:last]
                x_low = min(x_low, float(hit_targets.min()))
                x_high = max(x_high, float(hit_targets.max()))
        return x_low, x_high

    @property
    def error_span(self) -> float:
        """Width added by the inlier model's error bounds (outliers excluded)."""
        return self.model.error_span

    def relative_error(self, target_domain_width: float) -> float:
        """Inlier error span relative to the target dimension's domain width."""
        return self.model.relative_error(target_domain_width)

    def size_bytes(self) -> int:
        """Four floats for the regression plus two floats per buffered outlier."""
        return self.model.size_bytes() + 16 * self.num_outliers

    def describe(self) -> dict:
        """Summary used by ablation benchmarks and index reports."""
        return {
            "num_outliers": self.num_outliers,
            "inlier_error_span": self.error_span,
            "slope": self.model.slope,
            "intercept": self.model.intercept,
        }
