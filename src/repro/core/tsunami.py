"""The end-to-end Tsunami index (§3).

Tsunami composes the two structures introduced by the paper:

1. A :class:`~repro.core.grid_tree.GridTree` partitions the data space into
   non-overlapping regions so that the query workload has little skew inside
   each region (§4).
2. Inside every region that the sample workload touches, an
   :class:`~repro.core.augmented_grid.AugmentedGrid` indexes that region's
   points, with its skeleton and partition counts chosen by Adaptive Gradient
   Descent against the cost model (§5).  Regions no query touches are left
   unindexed and simply scanned if a future query hits them.

The index is clustered: rows are physically ordered by (region, cell), so
every query resolves to a small number of contiguous row ranges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import ClusteredIndex, containment_exactness
from repro.common.errors import IndexBuildError, OptimizationError
from repro.core.augmented_grid import DEFAULT_MAX_CELLS, AugmentedGrid, AugmentedGridConfig
from repro.core.cost_model import CostModel
from repro.core.grid_tree import GridTree, GridTreeConfig, GridTreeNode
from repro.core.optimizer import (
    AdaptiveGradientDescent,
    OptimizerResult,
    initialize_partitions,
)
from repro.core.query_types import PlanCache, PlanCacheStats, cluster_query_types
from repro.core.skeleton import Skeleton
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table


@dataclass(frozen=True)
class TsunamiConfig:
    """Configuration of the end-to-end Tsunami index.

    The two ``use_*`` switches exist for the Fig. 12a ablation:
    ``use_grid_tree=False`` yields the Augmented-Grid-only variant,
    ``use_augmented_strategies=False`` yields the Grid-Tree-only variant
    (a Flood-style independent grid inside each region).

    ``planner`` selects the Augmented Grid planning implementation
    (``"vectorized"`` or ``"reference"``, see
    :mod:`repro.core.augmented_grid`); ``plan_cache_entries`` sizes the
    per-region plan cache (0 disables caching).
    """

    grid_tree: GridTreeConfig = field(default_factory=GridTreeConfig)
    use_grid_tree: bool = True
    use_augmented_strategies: bool = True
    planner: str = "vectorized"
    plan_cache_entries: int = 4096
    cost_model: CostModel = field(default_factory=CostModel)
    optimizer_iterations: int = 4
    optimizer_sample_rows: int = 10_000
    target_points_per_cell: int = 128
    max_cells_per_region: int = DEFAULT_MAX_CELLS
    query_type_eps: float = 0.2
    query_type_min_samples: int = 4
    seed: int = 43


@dataclass
class _RegionIndex:
    """Bookkeeping for one Grid Tree leaf region inside the built index."""

    node: GridTreeNode
    row_offset: int
    num_rows: int
    grid: AugmentedGrid | None
    optimizer_result: OptimizerResult | None


class TsunamiIndex(ClusteredIndex):
    """The learned multi-dimensional index this repository reproduces."""

    name = "tsunami"

    def __init__(self, config: TsunamiConfig | None = None) -> None:
        super().__init__()
        self.config = config or TsunamiConfig()
        self.grid_tree: GridTree | None = None
        self.typed_workload: Workload | None = None
        self._region_ids: np.ndarray | None = None
        self._region_configs: dict[int, AugmentedGridConfig | None] = {}
        self._region_results: dict[int, OptimizerResult | None] = {}
        self._regions: list[_RegionIndex] = []

    # -- optimization (offline, §3) ----------------------------------------------

    def _make_optimizer(self) -> AdaptiveGradientDescent:
        return AdaptiveGradientDescent(
            cost_model=self.config.cost_model,
            max_iterations=self.config.optimizer_iterations,
            naive_init=not self.config.use_augmented_strategies,
            search_skeleton=self.config.use_augmented_strategies,
            target_points_per_cell=self.config.target_points_per_cell,
            sample_rows=self.config.optimizer_sample_rows,
            max_cells=self.config.max_cells_per_region,
            seed=self.config.seed,
        )

    def _default_config(self, table: Table, workload: Workload) -> AugmentedGridConfig:
        """Fallback configuration when a region has no queries to optimize for."""
        skeleton = Skeleton.all_independent(list(table.column_names))
        partitions = initialize_partitions(
            skeleton,
            table,
            workload,
            target_points_per_cell=self.config.target_points_per_cell,
            max_cells=self.config.max_cells_per_region,
            seed=self.config.seed,
        )
        return AugmentedGridConfig(
            skeleton=skeleton,
            partitions=partitions,
            max_cells=self.config.max_cells_per_region,
        )

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        workload = workload or Workload([], name="empty")
        if len(workload) > 0:
            self.typed_workload = cluster_query_types(
                table,
                workload,
                eps=self.config.query_type_eps,
                min_samples=self.config.query_type_min_samples,
                seed=self.config.seed,
            )
        else:
            self.typed_workload = workload

        # Step 1: optimize the Grid Tree over the full dataset and workload.
        if self.config.use_grid_tree and len(self.typed_workload) > 0:
            self.grid_tree = GridTree(self.config.grid_tree).fit(table, self.typed_workload)
            self._region_ids = self.grid_tree.assign_regions(table)
            regions = self.grid_tree.leaves
        else:
            self.grid_tree = None
            self._region_ids = np.zeros(table.num_rows, dtype=np.int64)
            regions = [self._whole_space_node(table)]

        # Step 2: optimize an Augmented Grid per region over the points and
        # queries that intersect it.
        self._region_configs = {}
        self._region_results = {}
        optimizer = self._make_optimizer()
        for node in regions:
            region_id = node.region_id
            row_ids = np.flatnonzero(self._region_ids == region_id)
            if len(row_ids) == 0:
                self._region_configs[region_id] = None
                self._region_results[region_id] = None
                continue
            region_queries = [
                q for q in self.typed_workload if q.intersects_box(self._int_bounds(node))
            ]
            region_table = table.subset(row_ids, name=f"{table.name}_region{region_id}")
            if not region_queries:
                # §3: regions no query intersects are not given an Augmented Grid.
                self._region_configs[region_id] = None
                self._region_results[region_id] = None
                continue
            try:
                result = optimizer.optimize(
                    region_table,
                    Workload(region_queries, name=f"region{region_id}"),
                    dimensions=list(table.column_names),
                )
                self._region_configs[region_id] = result.config
                self._region_results[region_id] = result
            except OptimizationError:
                self._region_configs[region_id] = self._default_config(
                    region_table, Workload(region_queries)
                )
                self._region_results[region_id] = None

    @staticmethod
    def _whole_space_node(table: Table) -> GridTreeNode:
        bounds = {}
        for dim in table.column_names:
            low, high = table.bounds(dim)
            bounds[dim] = (float(low), float(high) + 1.0)
        node = GridTreeNode(
            bounds=bounds, depth=0, num_points=table.num_rows, num_queries=0
        )
        node.region_id = 0
        return node

    @staticmethod
    def _int_bounds(node: GridTreeNode) -> dict[str, tuple[int, int]]:
        return {
            dim: (int(np.floor(low)), int(np.ceil(high)) - 1)
            for dim, (low, high) in node.bounds.items()
        }

    # -- layout (clustered reorganization) -----------------------------------------

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        assert self._region_ids is not None
        if self.grid_tree is not None:
            regions = self.grid_tree.leaves
        else:
            regions = [self._whole_space_node(table)]

        self._regions = []
        chunks: list[np.ndarray] = []
        offset = 0
        for node in regions:
            region_id = node.region_id
            row_ids = np.flatnonzero(self._region_ids == region_id)
            config = self._region_configs.get(region_id)
            grid: AugmentedGrid | None = None
            if len(row_ids) > 0 and config is not None:
                region_table = table.subset(row_ids, name=f"{table.name}_r{region_id}")
                plan_cache = (
                    PlanCache(self.config.plan_cache_entries)
                    if self.config.plan_cache_entries > 0
                    else None
                )
                grid = AugmentedGrid(
                    config, planner=self.config.planner, plan_cache=plan_cache
                )
                relative_permutation = grid.fit(region_table)
                chunks.append(row_ids[relative_permutation])
            else:
                chunks.append(row_ids)
            self._regions.append(
                _RegionIndex(
                    node=node,
                    row_offset=offset,
                    num_rows=len(row_ids),
                    grid=grid,
                    optimizer_result=self._region_results.get(region_id),
                )
            )
            offset += len(row_ids)
        if not chunks:
            return None
        return np.concatenate(chunks)

    # -- query processing (§3) -------------------------------------------------------

    def _regions_by_id(self, region_ids: set[int]) -> list[_RegionIndex]:
        return [r for r in self._regions if r.node.region_id in region_ids]

    def _region_ranges(self, query: Query, regions: list[_RegionIndex]) -> list[RowRange]:
        """Row ranges for ``query`` across the given (pre-routed) regions."""
        ranges: list[RowRange] = []
        for region in regions:
            if region.num_rows == 0:
                continue
            if region.grid is None:
                exact = containment_exactness(self._int_bounds(region.node), query)
                ranges.append(
                    RowRange(
                        region.row_offset,
                        region.row_offset + region.num_rows,
                        exact=exact,
                    )
                )
                continue
            ranges.extend(
                region.grid.ranges_for_query(query, offset=region.row_offset)
            )
        return ranges

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        if not self._regions:
            raise IndexBuildError("Tsunami index has not been built")
        if self.grid_tree is not None:
            nodes = self.grid_tree.regions_for_query(query)
            regions = self._regions_by_id({node.region_id for node in nodes})
        else:
            regions = self._regions
        return self._region_ranges(query, regions)

    def _ranges_for_queries(self, queries) -> list[list[RowRange]]:
        """Batch planning: route every query through the Grid Tree in one pass."""
        if not self._regions:
            raise IndexBuildError("Tsunami index has not been built")
        if self.grid_tree is None:
            return [self._region_ranges(query, self._regions) for query in queries]
        routed = self.grid_tree.regions_for_queries(queries)
        return [
            self._region_ranges(
                query, self._regions_by_id({node.region_id for node in nodes})
            )
            for query, nodes in zip(queries, routed)
        ]

    # -- adaptability (§6.4) ------------------------------------------------------------

    def reoptimize(self, workload: Workload) -> float:
        """Re-optimize the layout for a new workload and re-organize the data.

        Returns the wall-clock seconds the re-optimization plus re-organization
        took (the quantity plotted in Fig. 9a).
        """
        table = self.table
        start = time.perf_counter()
        self.build(table, workload)
        return time.perf_counter() - start

    # -- reporting -------------------------------------------------------------------------

    def plan_cache_stats(self) -> PlanCacheStats:
        """Aggregated plan-cache statistics across every region's grid.

        Caches are recreated (empty, zeroed stats) whenever the index is
        rebuilt or :meth:`reoptimize` re-organizes the layout, because cached
        spans address the previous physical row order.
        """
        total = PlanCacheStats()
        for region in self._regions:
            if region.grid is not None and region.grid.plan_cache is not None:
                total.merge(region.grid.plan_cache.stats)
        return total

    def plan_cache_entries(self) -> int:
        """Number of plans currently cached across all regions."""
        return sum(
            len(region.grid.plan_cache)
            for region in self._regions
            if region.grid is not None and region.grid.plan_cache is not None
        )

    def index_size_bytes(self) -> int:
        total = self.grid_tree.size_bytes() if self.grid_tree is not None else 64
        for region in self._regions:
            if region.grid is not None:
                total += region.grid.index_size_bytes()
        return total

    def total_grid_cells(self) -> int:
        """Total number of Augmented Grid cells across all regions (Table 4)."""
        return sum(r.grid.num_cells for r in self._regions if r.grid is not None)

    def describe(self) -> dict:
        """Table 4 statistics of the optimized index."""
        info = super().describe()
        indexed_regions = [r for r in self._regions if r.grid is not None]
        mappings = [r.grid.skeleton.num_functional_mappings for r in indexed_regions]
        conditionals = [r.grid.skeleton.num_conditional_cdfs for r in indexed_regions]
        points = [r.num_rows for r in self._regions if r.num_rows > 0]
        tree_stats = (
            self.grid_tree.describe()
            if self.grid_tree is not None
            else {"num_nodes": 1, "depth": 0, "num_regions": 1}
        )
        info.update(
            {
                "num_grid_tree_nodes": tree_stats["num_nodes"],
                "grid_tree_depth": tree_stats["depth"],
                "num_leaf_regions": tree_stats["num_regions"],
                "min_points_per_region": int(min(points)) if points else 0,
                "median_points_per_region": float(np.median(points)) if points else 0.0,
                "max_points_per_region": int(max(points)) if points else 0,
                "avg_functional_mappings_per_region": float(np.mean(mappings)) if mappings else 0.0,
                "avg_conditional_cdfs_per_region": float(np.mean(conditionals)) if conditionals else 0.0,
                "total_grid_cells": self.total_grid_cells(),
            }
        )
        return info


def make_tsunami(**overrides) -> TsunamiIndex:
    """Convenience constructor: ``make_tsunami(optimizer_iterations=2, ...)``."""
    return TsunamiIndex(TsunamiConfig(**overrides))
