"""Incremental re-optimization of a built Tsunami index (§8).

The published system re-optimizes the *entire* index whenever the workload
changes.  The paper notes the obvious refinement: "Tsunami could be
incrementally adjusted, e.g. by only re-optimizing the Augmented Grids whose
regions saw the most significant workload shift."  This module implements that
extension.

:class:`IncrementalReoptimizer` compares the workload a
:class:`~repro.core.tsunami.TsunamiIndex` was optimized for against a newly
observed workload, scores every Grid Tree region by how much the share of
queries hitting it has shifted, and re-optimizes only the most-shifted
regions' Augmented Grids.  Because each region occupies a contiguous range of
physical rows, the data re-organization is confined to those ranges: rows
outside the re-optimized regions are never touched, which is what makes the
incremental path cheaper than a full :meth:`TsunamiIndex.reoptimize`.

The Grid Tree itself is deliberately left unchanged — revising the region
boundaries requires moving rows across regions and is exactly the full
re-optimization this extension avoids.  When the drift detector
(:mod:`repro.core.drift`) reports a wholesale workload change, a full
re-optimization remains the right tool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import IndexBuildError, OptimizationError
from repro.core.augmented_grid import AugmentedGrid
from repro.core.query_types import PlanCache, cluster_query_types
from repro.core.tsunami import TsunamiIndex
from repro.query.workload import Workload


@dataclass(frozen=True)
class RegionShift:
    """How much one Grid Tree region's share of the workload has moved."""

    region_id: int
    old_fraction: float
    new_fraction: float

    @property
    def shift(self) -> float:
        """Absolute change in the fraction of queries intersecting the region."""
        return abs(self.new_fraction - self.old_fraction)


@dataclass
class IncrementalReport:
    """Outcome of one incremental re-optimization pass."""

    seconds: float
    regions_considered: int
    regions_reoptimized: tuple[int, ...]
    shifts: tuple[RegionShift, ...] = field(default=())

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"re-optimized {len(self.regions_reoptimized)} of "
            f"{self.regions_considered} regions in {self.seconds:.2f}s"
        )


class IncrementalReoptimizer:
    """Re-optimizes only the Augmented Grids whose regions shifted the most.

    Parameters
    ----------
    index:
        A built :class:`TsunamiIndex` (its Grid Tree and physical layout stay
        fixed; only per-region grids and their rows are touched).
    shift_threshold:
        Minimum absolute change in a region's workload share for it to be
        re-optimized.
    max_regions:
        Upper bound on how many regions one pass may re-optimize (the
        most-shifted regions win); ``None`` means no bound.
    """

    def __init__(
        self,
        index: TsunamiIndex,
        shift_threshold: float = 0.05,
        max_regions: int | None = None,
    ) -> None:
        if not index.is_built:
            raise IndexBuildError("IncrementalReoptimizer requires a built TsunamiIndex")
        if shift_threshold < 0:
            raise ValueError(f"shift_threshold must be >= 0, got {shift_threshold}")
        if max_regions is not None and max_regions < 1:
            raise ValueError(f"max_regions must be >= 1, got {max_regions}")
        self.index = index
        self.shift_threshold = shift_threshold
        self.max_regions = max_regions

    # -- shift scoring -----------------------------------------------------------

    def _region_fractions(self, workload: Workload) -> dict[int, float]:
        """Fraction of ``workload`` queries intersecting each leaf region."""
        fractions: dict[int, float] = {}
        total = max(len(workload), 1)
        for region in self.index._regions:
            bounds = self.index._int_bounds(region.node)
            hits = sum(1 for query in workload if query.intersects_box(bounds))
            fractions[region.node.region_id] = hits / total
        return fractions

    def region_shifts(self, new_workload: Workload) -> list[RegionShift]:
        """Per-region workload-share shift, sorted by decreasing shift."""
        old_workload = self.index.typed_workload or Workload([], name="empty")
        old_fractions = self._region_fractions(old_workload)
        new_fractions = self._region_fractions(new_workload)
        shifts = [
            RegionShift(
                region_id=region_id,
                old_fraction=old_fractions.get(region_id, 0.0),
                new_fraction=new_fractions.get(region_id, 0.0),
            )
            for region_id in old_fractions
        ]
        shifts.sort(key=lambda shift: (-shift.shift, shift.region_id))
        return shifts

    def _select_regions(self, shifts: list[RegionShift]) -> list[int]:
        """Region ids to re-optimize, honouring threshold and budget."""
        selected = [shift.region_id for shift in shifts if shift.shift >= self.shift_threshold]
        if self.max_regions is not None:
            selected = selected[: self.max_regions]
        return selected

    # -- re-optimization ------------------------------------------------------------

    def reoptimize(self, new_workload: Workload) -> IncrementalReport:
        """Re-optimize the grids of the most-shifted regions for ``new_workload``.

        Rows inside a re-optimized region are re-clustered by the new grid's
        cell order; all other rows keep their physical position.  The index's
        recorded workload is updated so subsequent passes compare against the
        workload it is now optimized for.
        """
        start = time.perf_counter()
        table = self.index.table
        typed = new_workload
        if len(new_workload) > 0 and any(q.query_type is None for q in new_workload):
            typed = cluster_query_types(
                table,
                new_workload,
                eps=self.index.config.query_type_eps,
                min_samples=self.index.config.query_type_min_samples,
                seed=self.index.config.seed,
            )

        shifts = self.region_shifts(typed)
        selected = set(self._select_regions(shifts))
        if not selected:
            return IncrementalReport(
                seconds=time.perf_counter() - start,
                regions_considered=len(shifts),
                regions_reoptimized=(),
                shifts=tuple(shifts),
            )

        optimizer = self.index._make_optimizer()
        permutation = np.arange(table.num_rows)
        reoptimized: list[int] = []
        for region in self.index._regions:
            region_id = region.node.region_id
            if region_id not in selected or region.num_rows == 0:
                continue
            row_ids = np.arange(region.row_offset, region.row_offset + region.num_rows)
            bounds = self.index._int_bounds(region.node)
            region_queries = [q for q in typed if q.intersects_box(bounds)]
            if not region_queries:
                continue
            region_table = table.subset(row_ids, name=f"{table.name}_r{region_id}")
            try:
                result = optimizer.optimize(
                    region_table,
                    Workload(region_queries, name=f"region{region_id}"),
                    dimensions=list(table.column_names),
                )
            except OptimizationError:
                continue
            # Rebuild the grid with the index's serving configuration so a
            # re-optimized region keeps the vectorized planner and its plan
            # cache (a fresh, empty cache: the old spans address rows that
            # this pass is about to move).
            plan_cache = (
                PlanCache(self.index.config.plan_cache_entries)
                if self.index.config.plan_cache_entries > 0
                else None
            )
            grid = AugmentedGrid(
                result.config,
                planner=self.index.config.planner,
                plan_cache=plan_cache,
            )
            relative_permutation = grid.fit(region_table)
            permutation[row_ids] = row_ids[relative_permutation]
            region.grid = grid
            region.optimizer_result = result
            self.index._region_configs[region_id] = result.config
            self.index._region_results[region_id] = result
            reoptimized.append(region_id)

        if reoptimized:
            table.reorder(permutation)
            # Advance the comparison baseline only when re-optimization work
            # was actually performed.  Advancing it on a no-op pass would let
            # repeated sub-threshold shifts each reset the baseline and never
            # accumulate into a trigger.
            self.index.typed_workload = typed
        return IncrementalReport(
            seconds=time.perf_counter() - start,
            regions_considered=len(shifts),
            regions_reoptimized=tuple(reoptimized),
            shifts=tuple(shifts),
        )
