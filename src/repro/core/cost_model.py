"""The analytic query cost model (§5.3.1).

``Time = w0 * (# cell ranges) + w1 * (# scanned points) * (# filtered dims)``

* The ``w0`` term charges for looking up the first and last cell of each
  contiguous cell range and for the cache miss of jumping to a new location in
  physical storage.
* The ``w1`` term charges for scanning one dimension of one point; a query
  that filters ``k`` dimensions must read ``k`` column values per scanned
  point in the column store.

Aggregation time is deliberately not modelled — it is a fixed cost paid by
every index (§5.3.1).  The default weights are in abstract work units; use
:meth:`CostModel.calibrate` to fit them to measured wall-clock times on a
particular machine, which is how the Fig. 12b "predicted vs actual" comparison
is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class QueryPlanFeatures:
    """The cost-model features of one query plan.

    ``points_scanned`` and ``bytes_scanned`` match the field names of
    :class:`repro.storage.scan.ScanStats`.  ``bytes_scanned`` is optional
    (``0`` when a planner cannot estimate it): it exposes the narrow-dtype
    storage win to the model without changing the paper's two-term formula,
    whose weights the ``scan_work`` term keeps.
    """

    num_cell_ranges: int
    points_scanned: int
    num_filtered_dimensions: int
    bytes_scanned: int = 0

    @property
    def scan_work(self) -> int:
        """The scan term before weighting."""
        return self.points_scanned * max(self.num_filtered_dimensions, 1)


@dataclass(frozen=True)
class CostModel:
    """Linear cost model with weights ``w0`` (per cell range) and ``w1`` (per value).

    ``w_bytes`` weighs ``QueryPlanFeatures.bytes_scanned`` and defaults to
    ``0.0``, preserving the paper's model exactly; setting it lets a
    calibration distinguish narrow-dtype scans from int64 scans.
    """

    w0: float = 50.0
    w1: float = 1.0
    w_bytes: float = 0.0

    def predict(self, features: QueryPlanFeatures) -> float:
        """Predicted cost of a single query plan."""
        return (
            self.w0 * features.num_cell_ranges
            + self.w1 * features.scan_work
            + self.w_bytes * features.bytes_scanned
        )

    def predict_average(self, features: Sequence[QueryPlanFeatures]) -> float:
        """Predicted average cost over a workload's query plans."""
        if not features:
            return 0.0
        return sum(self.predict(f) for f in features) / len(features)

    @classmethod
    def calibrate(
        cls,
        features: Sequence[QueryPlanFeatures],
        measured_times: Sequence[float],
    ) -> "CostModel":
        """Fit ``(w0, w1)`` to measured per-query times by least squares.

        Weights are clamped to be non-negative; degenerate inputs (fewer than
        two observations, or collinear features) fall back to a scan-only
        model scaled to the observed mean.
        """
        if len(features) != len(measured_times):
            raise ValueError("features and measured_times must have the same length")
        if len(features) < 2:
            return cls()
        design = np.array(
            [[f.num_cell_ranges, f.scan_work] for f in features], dtype=np.float64
        )
        target = np.asarray(measured_times, dtype=np.float64)
        solution, residuals, rank, _ = np.linalg.lstsq(design, target, rcond=None)
        if rank < 2:
            scan_work = design[:, 1]
            denominator = float(scan_work.sum())
            w1 = float(target.sum() / denominator) if denominator > 0 else 1.0
            return cls(w0=0.0, w1=max(w1, 0.0))
        w0, w1 = (max(float(value), 0.0) for value in solution)
        return cls(w0=w0, w1=w1)

    def relative_error(
        self,
        features: Sequence[QueryPlanFeatures],
        measured_times: Sequence[float],
    ) -> float:
        """Mean absolute relative error of predictions against measurements."""
        if not features:
            return 0.0
        errors = []
        for feature, measured in zip(features, measured_times):
            if measured <= 0:
                continue
            errors.append(abs(self.predict(feature) - measured) / measured)
        return float(np.mean(errors)) if errors else 0.0
