"""Augmented Grid skeletons: per-dimension partitioning strategies (§5.2).

An Augmented Grid is defined by a *skeleton* — the assignment of one
partitioning strategy to every dimension — plus the number of partitions in
each grid dimension.  Three strategies exist:

* :class:`IndependentCDFStrategy` — partition the dimension uniformly in its
  own CDF (what Flood does for every dimension).
* :class:`FunctionalMappingStrategy` — remove the dimension from the grid and
  rewrite its filters as filters over a *target* dimension via a bounded
  linear mapping (§5.2.1).
* :class:`ConditionalCDFStrategy` — partition the dimension uniformly in its
  CDF conditioned on a *base* dimension's partition (§5.2.2).

The paper restricts which combinations are legal: a mapping's target cannot
itself be mapped, and a conditional's base cannot be mapped or dependent.  We
enforce the slightly stronger (and simpler) rule that targets and bases must
be independently partitioned, which is consistent with every example skeleton
in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.common.errors import OptimizationError


@dataclass(frozen=True)
class IndependentCDFStrategy:
    """Partition the dimension uniformly in ``CDF(X)``."""

    def describe(self, dimension: str) -> str:
        return dimension

    @property
    def references(self) -> str | None:
        """The other dimension this strategy depends on (none)."""
        return None


@dataclass(frozen=True)
class FunctionalMappingStrategy:
    """Remove the dimension from the grid; map its filters onto ``target``."""

    target: str

    def describe(self, dimension: str) -> str:
        return f"{dimension}->{self.target}"

    @property
    def references(self) -> str | None:
        return self.target


@dataclass(frozen=True)
class ConditionalCDFStrategy:
    """Partition the dimension uniformly in ``CDF(X | base)``."""

    base: str

    def describe(self, dimension: str) -> str:
        return f"{dimension}|{self.base}"

    @property
    def references(self) -> str | None:
        return self.base


Strategy = IndependentCDFStrategy | FunctionalMappingStrategy | ConditionalCDFStrategy


class Skeleton:
    """An assignment of a partitioning strategy to every dimension."""

    def __init__(self, strategies: Mapping[str, Strategy]) -> None:
        self._strategies = dict(strategies)
        self._validate()

    # -- validation -----------------------------------------------------------

    def _validate(self) -> None:
        for dimension, strategy in self._strategies.items():
            reference = strategy.references
            if reference is None:
                continue
            if reference == dimension:
                raise OptimizationError(
                    f"dimension {dimension!r} cannot reference itself in strategy "
                    f"{strategy.describe(dimension)}"
                )
            if reference not in self._strategies:
                raise OptimizationError(
                    f"strategy {strategy.describe(dimension)} references unknown "
                    f"dimension {reference!r}"
                )
            referenced = self._strategies[reference]
            if not isinstance(referenced, IndependentCDFStrategy):
                raise OptimizationError(
                    f"strategy {strategy.describe(dimension)} requires {reference!r} "
                    f"to be independently partitioned, but it uses "
                    f"{referenced.describe(reference)}"
                )

    # -- protocol ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Skeleton):
            return NotImplemented
        return self._strategies == other._strategies

    def __hash__(self) -> int:
        return hash(tuple(sorted((d, repr(s)) for d, s in self._strategies.items())))

    def __repr__(self) -> str:
        return f"Skeleton[{self.describe()}]"

    # -- accessors ---------------------------------------------------------------

    @property
    def dimensions(self) -> list[str]:
        """All dimensions covered by the skeleton."""
        return list(self._strategies)

    def strategy_for(self, dimension: str) -> Strategy:
        """The strategy assigned to ``dimension``."""
        try:
            return self._strategies[dimension]
        except KeyError:
            raise OptimizationError(
                f"skeleton has no strategy for dimension {dimension!r}"
            ) from None

    @property
    def grid_dimensions(self) -> list[str]:
        """Dimensions that appear in the grid (everything except mapped dims)."""
        return [
            dim
            for dim, strategy in self._strategies.items()
            if not isinstance(strategy, FunctionalMappingStrategy)
        ]

    @property
    def mapped_dimensions(self) -> list[str]:
        """Dimensions removed from the grid via a functional mapping."""
        return [
            dim
            for dim, strategy in self._strategies.items()
            if isinstance(strategy, FunctionalMappingStrategy)
        ]

    @property
    def conditional_dimensions(self) -> list[str]:
        """Dimensions partitioned by a conditional CDF."""
        return [
            dim
            for dim, strategy in self._strategies.items()
            if isinstance(strategy, ConditionalCDFStrategy)
        ]

    @property
    def num_functional_mappings(self) -> int:
        """Number of functional mappings in the skeleton (Table 4 statistic)."""
        return len(self.mapped_dimensions)

    @property
    def num_conditional_cdfs(self) -> int:
        """Number of conditional CDFs in the skeleton (Table 4 statistic)."""
        return len(self.conditional_dimensions)

    def describe(self) -> str:
        """Compact skeleton notation matching Table 2, e.g. ``[X, Y|X, Z->X]``."""
        parts = [
            self._strategies[dim].describe(dim) for dim in self._strategies
        ]
        return ", ".join(parts)

    def replace(self, dimension: str, strategy: Strategy) -> "Skeleton":
        """Return a new skeleton with ``dimension``'s strategy replaced."""
        updated = dict(self._strategies)
        updated[dimension] = strategy
        return Skeleton(updated)

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def all_independent(cls, dimensions: Sequence[str]) -> "Skeleton":
        """The naive skeleton that partitions every dimension independently."""
        return cls({dim: IndependentCDFStrategy() for dim in dimensions})

    # -- neighbourhood for local search (§5.3.2 step 3) ---------------------------------

    def candidate_strategies(self, dimension: str) -> list[Strategy]:
        """All valid strategies for ``dimension`` holding the other dimensions fixed."""
        others = [d for d in self._strategies if d != dimension]
        candidates: list[Strategy] = [IndependentCDFStrategy()]
        for other in others:
            if isinstance(self._strategies[other], IndependentCDFStrategy):
                candidates.append(FunctionalMappingStrategy(target=other))
                candidates.append(ConditionalCDFStrategy(base=other))
        return candidates

    def one_hop_neighbours(self) -> Iterator["Skeleton"]:
        """Yield every valid skeleton that differs in exactly one dimension."""
        for dimension in self._strategies:
            current = self._strategies[dimension]
            for candidate in self.candidate_strategies(dimension):
                if candidate == current:
                    continue
                try:
                    yield self.replace(dimension, candidate)
                except OptimizationError:
                    # Replacing this dimension's strategy invalidated a
                    # reference from another dimension; skip that neighbour.
                    continue
