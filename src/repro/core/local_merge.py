"""Local (per-region) merge of buffered inserts into a built Tsunami index.

The global merge path in :mod:`repro.core.delta` folds the buffer into the
table and rebuilds the whole wrapped index — O(table) work per merge
regardless of where the inserted rows land.  FlexFlood (arXiv 2411.09205)
shows a learned multi-dimensional index can instead absorb inserts by
reorganizing only the affected cells.  This module implements that idea for
:class:`~repro.core.tsunami.TsunamiIndex`, whose clustered layout makes it
natural: every Grid Tree region owns a contiguous range of physical rows, so
a merge only has to rewrite the ranges of regions that actually received
rows.

The merge runs in two phases:

1. **Compute** (the serving index is never touched): buffered rows are routed
   to their owning region with the same vectorized
   :meth:`~repro.core.grid_tree.GridTree.assign_regions` descent the build
   uses, a merged table is materialized region-by-region (each column lands
   on the narrowest dtype covering the *combined* value range, so an insert
   that overflows a narrow column widens exactly that column — matching the
   rebuild path bit for bit), and every touched region is locally re-sorted:

   * Regions whose pending-row fraction stays at or under ``split_threshold``
     *absorb* the rows — the region's fitted grid folds them in via
     :meth:`~repro.core.augmented_grid.AugmentedGrid.absorb` (only the new
     rows are assigned to cells; existing rows keep their cells under the
     carried-over CDF models, and functional mappings get bound-widened
     copies) and the row range is re-sorted in place via
     :meth:`~repro.storage.table.Table.reorder_rows`.
   * Regions that overflow the threshold (including previously *empty*
     regions, whose pending fraction is infinite) get a **local split**: the
     region's grid configuration is re-optimized from scratch over the merged
     region rows, reusing the same region-repair machinery as
     :class:`~repro.core.incremental.IncrementalReoptimizer`.  A region with
     no intersecting queries (or a failed optimization) falls back to
     absorbing with its old configuration, or stays unindexed.

   Regions that received no rows are not rewritten and keep their fitted
   grids *and their plan caches* — Augmented Grid plans are region-relative
   (offsets are applied after cache lookup), so shifting a region's
   ``row_offset`` does not invalidate its cached plans.

2. **Install** (plain assignments, nothing can fail): the merged table and
   executor replace the old ones, per-region offsets/grids are updated, and
   the bounds of leaves that absorbed out-of-domain values are widened so
   containment checks and query routing stay exact.

A merge that raises during phase 1 therefore leaves the index serving the
old table with the buffer intact, the same atomicity contract as the global
rebuild.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.common.errors import IndexBuildError, OptimizationError
from repro.common.validation import narrowest_dtype
from repro.core.augmented_grid import AugmentedGrid
from repro.core.query_types import PlanCache
from repro.core.tsunami import TsunamiIndex
from repro.query.workload import Workload
from repro.storage.column import Column, StorageMeta
from repro.storage.scan import ScanExecutor
from repro.storage.table import Table

#: Default pending-row fraction above which a touched region is re-optimized
#: (a "local split") instead of refitting its existing grid configuration.
DEFAULT_SPLIT_THRESHOLD = 0.5


@dataclass(frozen=True)
class LocalMergeResult:
    """Outcome of one local merge pass over a built Tsunami index."""

    rows_merged: int
    regions_touched: int
    regions_total: int
    regions_split: int


def supports_local_merge(index: object) -> bool:
    """Whether ``index`` can be merged locally (built Tsunami with regions)."""
    return (
        isinstance(index, TsunamiIndex)
        and index.is_built
        and bool(index._regions)
    )


def _route_rows(
    index: TsunamiIndex, pending: Table
) -> dict[int, np.ndarray]:
    """Buffered row positions per region id, via the build-time descent."""
    if index.grid_tree is not None:
        region_ids = index.grid_tree.assign_regions(pending)
    else:
        region_ids = np.zeros(pending.num_rows, dtype=np.int64)
        region_ids += index._regions[0].node.region_id
    return {
        int(region_id): np.flatnonzero(region_ids == region_id)
        for region_id in np.unique(region_ids)
    }


def _merged_columns(
    old_table: Table,
    buffer_columns: Mapping[str, np.ndarray],
    region_slices: list[tuple[int, int, np.ndarray]],
) -> list[Column]:
    """Materialize merged columns in the new physical region order.

    ``region_slices`` lists, per region in physical order, the old row range
    ``[start, stop)`` and the buffered row positions appended to it.  Each
    column is allocated once on the narrowest dtype covering the combined
    range, so only columns whose inserts overflow the old dtype are widened —
    the same dtype the global rebuild's re-narrowing concatenation lands on.
    """
    columns: list[Column] = []
    for name in old_table.column_names:
        source = old_table.column(name)
        buffered = np.asarray(buffer_columns[name])
        low = int(buffered.min())
        high = int(buffered.max())
        if len(source):
            low = min(low, source.min())
            high = max(high, source.max())
        dtype = narrowest_dtype(low, high)
        merged = np.empty(old_table.num_rows + buffered.shape[0], dtype=dtype)
        old_values = source.values
        position = 0
        for start, stop, new_rows in region_slices:
            merged[position : position + (stop - start)] = old_values[start:stop]
            position += stop - start
            if len(new_rows):
                merged[position : position + len(new_rows)] = buffered[new_rows]
                position += len(new_rows)
        columns.append(
            Column(
                name,
                merged,
                dictionary=source.dictionary,
                scaler=source.scaler,
                meta=StorageMeta(dtype=dtype, min_value=low, max_value=high),
            )
        )
    return columns


def _widened_bounds(
    node_bounds: Mapping[str, tuple[float, float]],
    pending: Table,
    new_rows: np.ndarray,
) -> dict[str, tuple[float, float]]:
    """Leaf bounds grown to cover the region's newly absorbed rows.

    Bounds are half-open floats; a stored integer ``v`` is covered when
    ``high >= v + 1``.  Widening (never shrinking) keeps
    ``containment_exactness`` sound: a query that contains the widened box
    still contains every row in the region.
    """
    bounds = {}
    for dim, (low, high) in node_bounds.items():
        values = pending.values(dim)[new_rows]
        bounds[dim] = (
            min(low, float(values.min())),
            max(high, float(values.max()) + 1.0),
        )
    return bounds


def local_merge(
    index: TsunamiIndex,
    buffer_columns: Mapping[str, np.ndarray],
    *,
    split_threshold: float = DEFAULT_SPLIT_THRESHOLD,
) -> LocalMergeResult:
    """Fold buffered rows into ``index`` by reorganizing only touched regions.

    ``buffer_columns`` maps every table column to an equal-length int64 array
    of storage-domain values (the live prefix of a
    :class:`~repro.core.delta.DeltaBuffer`).  The caller is responsible for
    checking :func:`supports_local_merge` first and for resetting its buffer
    afterwards.
    """
    old_table = index.table
    pending = Table(
        f"{old_table.name}_pending",
        [
            Column(name, np.asarray(buffer_columns[name]), narrow=False)
            for name in old_table.column_names
        ],
    )
    rows_by_region = _route_rows(index, pending)

    # -- phase 1: compute the merged table without touching the index ------
    region_slices = []
    new_offsets = []
    offset = 0
    for region in index._regions:
        new_rows = rows_by_region.get(region.node.region_id, np.empty(0, dtype=np.int64))
        region_slices.append(
            (region.row_offset, region.row_offset + region.num_rows, new_rows)
        )
        new_offsets.append(offset)
        offset += region.num_rows + len(new_rows)
    merged_table = Table(old_table.name, _merged_columns(old_table, buffer_columns, region_slices))

    typed = index.typed_workload or Workload([], name="empty")
    optimizer = None
    updates: list[dict] = []
    regions_split = 0
    for position, region in enumerate(index._regions):
        new_rows = region_slices[position][2]
        if not len(new_rows):
            continue
        start = new_offsets[position]
        stop = start + region.num_rows + len(new_rows)
        bounds = _widened_bounds(region.node.bounds, pending, new_rows)
        update: dict = {"position": position, "bounds": bounds}

        config = index._region_configs.get(region.node.region_id)
        overflow = (
            math.inf
            if region.num_rows == 0
            else len(new_rows) / region.num_rows
        ) > split_threshold
        result = None
        if overflow:
            int_bounds = {
                dim: (int(math.floor(low)), int(math.ceil(high)) - 1)
                for dim, (low, high) in bounds.items()
            }
            region_queries = [q for q in typed if q.intersects_box(int_bounds)]
            if region_queries:
                if optimizer is None:
                    optimizer = index._make_optimizer()
                region_subset = merged_table.subset(
                    np.arange(start, stop),
                    name=f"{merged_table.name}_r{region.node.region_id}",
                )
                try:
                    result = optimizer.optimize(
                        region_subset,
                        Workload(region_queries, name=f"region{region.node.region_id}"),
                        dimensions=list(merged_table.column_names),
                    )
                    config = result.config
                    regions_split += 1
                except OptimizationError:
                    result = None

        if config is not None:
            # Either way the region gets a fresh grid object (the serving one
            # is never touched before phase 2) with a fresh, empty plan
            # cache: the old cached spans address the row order this merge is
            # about to rewrite.
            plan_cache = (
                PlanCache(index.config.plan_cache_entries)
                if index.config.plan_cache_entries > 0
                else None
            )
            grid = None
            if not overflow and region.grid is not None:
                # Absorb: the region keeps its configuration, so the fitted
                # grid folds the appended rows in without re-assigning the
                # old ones (cells and CDF models carry over) — the
                # size-proportional model sweeps a full refit pays are what
                # would otherwise make merge cost grow with the table.
                appended = merged_table.subset(
                    np.arange(start + region.num_rows, stop),
                    name=f"{merged_table.name}_r{region.node.region_id}_new",
                )
                try:
                    grid, relative_permutation = region.grid.absorb(
                        appended, plan_cache=plan_cache
                    )
                except IndexBuildError:
                    grid = None
            if grid is None:
                # Local split (or a region without a reusable fitted grid):
                # refit from scratch over the merged region rows.
                grid = AugmentedGrid(
                    config, planner=index.config.planner, plan_cache=plan_cache
                )
                region_subset = merged_table.subset(
                    np.arange(start, stop),
                    name=f"{merged_table.name}_r{region.node.region_id}",
                )
                relative_permutation = grid.fit(region_subset)
            merged_table.reorder_rows(relative_permutation, start, stop)
            update["grid"] = grid
            update["config"] = config
            update["result"] = result
        updates.append(update)

    # -- phase 2: install (plain assignments; nothing here can fail) -------
    for update in updates:
        region = index._regions[update["position"]]
        region.node.bounds = update["bounds"]
        if "grid" in update:
            region.grid = update["grid"]
            index._region_configs[region.node.region_id] = update["config"]
            if update["result"] is not None:
                region.optimizer_result = update["result"]
                index._region_results[region.node.region_id] = update["result"]
    for position, region in enumerate(index._regions):
        added = len(region_slices[position][2])
        region.row_offset = new_offsets[position]
        region.num_rows += added
        region.node.num_points += added
    index._region_ids = np.repeat(
        [region.node.region_id for region in index._regions],
        [region.num_rows for region in index._regions],
    )
    index._table = merged_table
    index._executor = ScanExecutor(merged_table)
    return LocalMergeResult(
        rows_merged=pending.num_rows,
        regions_touched=len(updates),
        regions_total=len(index._regions),
        regions_split=regions_split,
    )
