"""Query skew, the skew tree, and split-value selection (§4.2–§4.3.2).

Skew of a query set over a range in one dimension is the Earth Mover's
Distance between the empirical PDF of query mass over histogram bins and the
uniform distribution over the same bins.  Query mass is *not* normalized
across types: skew is computed per query type and summed (§4.3.1), and the
split-acceptance threshold is expressed as a fraction of ``|Q|``, so skew here
is measured in units of query mass (bin distances are normalized by the number
of bins in the range).

The :class:`SkewTree` is the balanced binary tree used only at optimization
time to find the set of split values that minimizes combined skew (Fig. 4),
via the two-pass dynamic program described in §4.3.2, followed by the merge
pass that removes superfluous splits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.histogram import query_histogram


def mass_emd(mass: np.ndarray) -> float:
    """EMD between a mass vector and the uniform vector with the same total.

    Bin distance is normalized by the number of bins, so the result is in
    units of query mass (at most the total mass), which keeps the paper's
    "5% of |Q|" acceptance threshold meaningful.
    """
    mass = np.asarray(mass, dtype=np.float64)
    if mass.size <= 1:
        return 0.0
    uniform = np.full(mass.shape, mass.sum() / mass.size)
    return float(np.abs(np.cumsum(mass - uniform)).sum() / mass.size)


def range_skew(type_histograms: list[np.ndarray], first: int, last: int) -> float:
    """Combined skew of all query types over the bin range ``[first, last)``.

    ``type_histograms`` holds one mass vector per query type over a shared set
    of bins (§4.3.1: skew is computed independently per type and summed).
    """
    if last - first <= 1:
        return 0.0
    return sum(mass_emd(hist[first:last]) for hist in type_histograms)


@dataclass
class SkewTreeNode:
    """One node of the skew tree, covering histogram bins ``[first, last)``."""

    first: int
    last: int
    skew: float
    left: "SkewTreeNode | None" = None
    right: "SkewTreeNode | None" = None
    best_subtree_skew: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


@dataclass(frozen=True)
class SplitCandidate:
    """Result of evaluating one dimension as a Grid Tree split candidate."""

    dimension: str
    split_values: tuple[float, ...]
    total_skew: float
    residual_skew: float

    @property
    def skew_reduction(self) -> float:
        """``R_i``: how much combined skew the split removes (§4.3.2)."""
        return self.total_skew - self.residual_skew


class SkewTree:
    """Balanced binary tree over histogram bins used to choose split values."""

    def __init__(
        self,
        type_histograms: list[np.ndarray],
        edges: np.ndarray,
        min_leaf_bins: int = 2,
        merge_tolerance: float = 0.10,
    ) -> None:
        if not type_histograms:
            raise ValueError("at least one query-type histogram is required")
        lengths = {len(hist) for hist in type_histograms}
        if len(lengths) != 1:
            raise ValueError("all query-type histograms must share the same bins")
        self._histograms = [np.asarray(hist, dtype=np.float64) for hist in type_histograms]
        self._edges = np.asarray(edges, dtype=np.float64)
        self._num_bins = lengths.pop()
        if len(self._edges) != self._num_bins + 1:
            raise ValueError("edges must have one more entry than each histogram")
        self._min_leaf_bins = max(1, min_leaf_bins)
        self._merge_tolerance = merge_tolerance
        self.root = self._build(0, self._num_bins)

    # -- construction -----------------------------------------------------------

    def _build(self, first: int, last: int) -> SkewTreeNode:
        node = SkewTreeNode(
            first=first, last=last, skew=range_skew(self._histograms, first, last)
        )
        if last - first <= self._min_leaf_bins:
            node.best_subtree_skew = node.skew
            return node
        middle = (first + last) // 2
        node.left = self._build(first, middle)
        node.right = self._build(middle, last)
        # First (bottom-up) pass of the DP: the best achievable combined skew
        # over this node's subtree is either keeping the node whole or taking
        # the best covers of its two halves.
        node.best_subtree_skew = min(
            node.skew, node.left.best_subtree_skew + node.right.best_subtree_skew
        )
        return node

    # -- covering set ---------------------------------------------------------------

    def _collect_cover(self, node: SkewTreeNode, out: list[SkewTreeNode]) -> None:
        # Second (top-down) pass: a node is in the optimal covering set when
        # keeping it whole achieves its subtree's best skew.
        if node.is_leaf or node.skew <= node.best_subtree_skew + 1e-12:
            out.append(node)
            return
        self._collect_cover(node.left, out)
        self._collect_cover(node.right, out)

    def optimal_cover(self) -> list[SkewTreeNode]:
        """The covering set with minimum combined skew, in bin order."""
        cover: list[SkewTreeNode] = []
        self._collect_cover(self.root, cover)
        return cover

    def _merge_cover(self, cover: list[SkewTreeNode]) -> list[tuple[int, int, float]]:
        """Greedy ordered merge pass over the covering set (§4.3.2, final step)."""
        merged: list[tuple[int, int, float]] = []
        for node in cover:
            if not merged:
                merged.append((node.first, node.last, node.skew))
                continue
            first, last, skew = merged[-1]
            combined_skew = range_skew(self._histograms, first, node.last)
            if combined_skew <= (skew + node.skew) * (1.0 + self._merge_tolerance):
                merged[-1] = (first, node.last, combined_skew)
            else:
                merged.append((node.first, node.last, node.skew))
        return merged

    def best_split(self) -> tuple[list[float], float]:
        """Return ``(split values, residual skew)`` for this dimension.

        Split values are the value-domain boundaries between the merged
        covering-set ranges; residual skew is the combined skew that remains
        after splitting at those values.
        """
        cover = self.optimal_cover()
        merged = self._merge_cover(cover)
        residual = sum(skew for _, _, skew in merged)
        split_values = [float(self._edges[first]) for first, _, _ in merged[1:]]
        return split_values, residual

    @property
    def total_skew(self) -> float:
        """Combined skew of the whole range before any split."""
        return self.root.skew


def build_type_histograms(
    per_type_intervals: dict[int, list[tuple[float, float]]],
    low: float,
    high: float,
    num_bins: int = 128,
    unique_values: np.ndarray | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Build one query-mass histogram per query type over a shared set of bins.

    If the dimension has fewer than ``num_bins`` distinct values inside the
    range, one bin per distinct value is used (§4.3.2), in which case there is
    no skew within a bin by construction.
    """
    edges: np.ndarray | None = None
    if unique_values is not None:
        inside = np.asarray(unique_values, dtype=np.float64)
        inside = inside[(inside >= low) & (inside < high)]
        if 0 < inside.size <= num_bins:
            edges = np.append(np.sort(inside), high)
    histograms = []
    for intervals in per_type_intervals.values():
        histogram = query_histogram(intervals, low, high, num_bins=num_bins, edges=edges)
        if edges is None:
            edges = histogram.edges
        histograms.append(histogram.counts)
    if edges is None:
        edges = np.linspace(low, high, num_bins + 1)
    return histograms, edges


def evaluate_split_dimension(
    dimension: str,
    per_type_intervals: dict[int, list[tuple[float, float]]],
    low: float,
    high: float,
    num_bins: int = 128,
    unique_values: np.ndarray | None = None,
    merge_tolerance: float = 0.10,
) -> SplitCandidate:
    """Evaluate one dimension as a Grid Tree split candidate (§4.3.2).

    Builds per-type query histograms over the node's extent in the dimension,
    constructs the skew tree, extracts the best split values, and reports both
    the dimension's total skew and the residual skew after splitting.
    """
    if high <= low:
        return SplitCandidate(dimension, (), 0.0, 0.0)
    histograms, edges = build_type_histograms(
        per_type_intervals, low, high, num_bins=num_bins, unique_values=unique_values
    )
    if not histograms or all(hist.sum() == 0 for hist in histograms):
        return SplitCandidate(dimension, (), 0.0, 0.0)
    min_leaf_bins = 1 if (len(edges) - 1) < num_bins else 2
    tree = SkewTree(
        histograms, edges, min_leaf_bins=min_leaf_bins, merge_tolerance=merge_tolerance
    )
    split_values, residual = tree.best_split()
    return SplitCandidate(
        dimension=dimension,
        split_values=tuple(split_values),
        total_skew=tree.total_skew,
        residual_skew=residual,
    )
