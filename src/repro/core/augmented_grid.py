"""The Augmented Grid: a correlation-aware grid index over one region (§5).

An Augmented Grid generalizes Flood's grid.  Every dimension uses one of three
partitioning strategies (see :mod:`repro.core.skeleton`):

* independent CDF partitioning (Flood's behaviour),
* a functional mapping that removes the dimension from the grid and rewrites
  its filters onto a target dimension (§5.2.1),
* conditional-CDF partitioning given a base dimension (§5.2.2), which
  staggers partition boundaries so cells stay equally sized under correlation.

The grid owns the physical order of its rows: :meth:`AugmentedGrid.fit`
computes a cell id per row and returns the permutation that clusters rows by
cell.  Queries are planned by enumerating intersecting cells (respecting the
conditional-CDF dependency structure), converted to contiguous cell ranges,
and either executed against the table or returned as cost-model features —
the optimizer (§5.3) uses the same planning code on a data sample.

Two planners produce identical spans:

* ``planner="vectorized"`` (default) computes every per-dimension partition
  window once, expands the cross product of the *outer* dimensions with numpy
  stride arithmetic, and emits one coalesced span per outer-dimension prefix
  — cells consecutive in the innermost dimension occupy contiguous physical
  rows, so no per-cell Python work is needed.
* ``planner="reference"`` is the original per-cell recursive enumeration,
  kept for differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import IndexBuildError, OptimizationError
from repro.core.cost_model import QueryPlanFeatures
from repro.core.outliers import OutlierBoundedMapping
from repro.core.query_types import PlanCache
from repro.core.skeleton import (
    ConditionalCDFStrategy,
    FunctionalMappingStrategy,
    IndependentCDFStrategy,
    Skeleton,
)
from repro.query.query import Query
from repro.stats.cdf import ConditionalCDF, EmpiricalCDF
from repro.stats.correlation import BoundedLinearModel
from repro.storage.scan import RowRange
from repro.storage.table import Table

#: Hard ceiling on the number of grid cells a single Augmented Grid may have.
#: Protects the lookup table from exploding when an optimizer proposes an
#: unreasonable partition vector (§5.1 discusses exactly this space blow-up).
DEFAULT_MAX_CELLS = 1 << 20


@dataclass(frozen=True)
class AugmentedGridConfig:
    """A concrete Augmented Grid instantiation: skeleton plus partition counts.

    ``outlier_aware_mappings`` enables the §8 extension implemented in
    :mod:`repro.core.outliers`: functional mappings buffer extreme rows
    separately so a handful of outliers cannot inflate the mapping's error
    bounds.  ``outlier_fraction`` caps how many rows may be buffered per
    mapping.
    """

    skeleton: Skeleton
    partitions: dict[str, int]
    max_cells: int = DEFAULT_MAX_CELLS
    cdf_knots: int = 64
    conditional_knots: int = 32
    outlier_aware_mappings: bool = False
    outlier_fraction: float = 0.05

    def validated(self) -> "AugmentedGridConfig":
        """Check partition counts against the skeleton and the cell budget."""
        grid_dims = self.skeleton.grid_dimensions
        missing = [dim for dim in grid_dims if dim not in self.partitions]
        if missing:
            raise OptimizationError(
                f"partition counts missing for grid dimensions {missing}"
            )
        for dim in grid_dims:
            if self.partitions[dim] < 1:
                raise OptimizationError(
                    f"dimension {dim!r} has invalid partition count "
                    f"{self.partitions[dim]}"
                )
        total_cells = 1
        for dim in grid_dims:
            total_cells *= self.partitions[dim]
        if total_cells > self.max_cells:
            raise OptimizationError(
                f"configuration would create {total_cells} cells, exceeding the "
                f"budget of {self.max_cells}"
            )
        return self

    @property
    def total_cells(self) -> int:
        """Number of cells this configuration creates."""
        total = 1
        for dim in self.skeleton.grid_dimensions:
            total *= self.partitions[dim]
        return total


@dataclass
class _CellHit:
    """One intersecting cell during query planning."""

    cell_id: int
    exact: bool


#: Valid values of :class:`AugmentedGrid`'s ``planner`` argument.
PLANNERS = ("vectorized", "reference")


class AugmentedGrid:
    """A fitted Augmented Grid over one region's rows.

    ``planner`` selects the query-planning implementation (see module
    docstring); ``plan_cache`` optionally memoizes planned spans under the
    query's type and quantized (partition-window) bounds so skewed workloads
    reuse plans instead of re-planning.  The cache is cleared by :meth:`fit`
    because spans are offsets into the clustered row order.
    """

    def __init__(
        self,
        config: AugmentedGridConfig,
        planner: str = "vectorized",
        plan_cache: PlanCache | None = None,
    ) -> None:
        if planner not in PLANNERS:
            raise ValueError(f"unknown planner {planner!r}; expected one of {PLANNERS}")
        self.planner = planner
        self.plan_cache = plan_cache
        self.config = config.validated()
        self.skeleton = config.skeleton
        # Grid-dimension order: independents first so conditional dimensions
        # always see their base's partition during enumeration and fitting.
        independents = [
            dim
            for dim in self.skeleton.dimensions
            if isinstance(self.skeleton.strategy_for(dim), IndependentCDFStrategy)
        ]
        conditionals = [
            dim
            for dim in self.skeleton.dimensions
            if isinstance(self.skeleton.strategy_for(dim), ConditionalCDFStrategy)
        ]
        self.grid_dimensions: list[str] = independents + conditionals
        # Independent dimensions some conditional dimension partitions against;
        # the vectorized planner tracks partition assignments only for these.
        self._base_dims: set[str] = {
            self.skeleton.strategy_for(dim).base for dim in conditionals
        }
        self._strides: dict[str, int] = {}
        self._cdf_models: dict[str, EmpiricalCDF] = {}
        self._conditional_models: dict[str, ConditionalCDF] = {}
        self._mapping_models: dict[str, BoundedLinearModel | OutlierBoundedMapping] = {}
        self._offsets: np.ndarray | None = None
        self._num_rows = 0
        self._fitted = False

    # -- fitting -----------------------------------------------------------------

    def fit(self, table: Table, model_cache: dict | None = None) -> np.ndarray:
        """Fit all models, assign rows to cells, and return the clustering permutation.

        The returned permutation orders the table's rows by cell id; the
        internal lookup table assumes that order, so the caller must apply the
        permutation (or an equivalent global reordering) before executing
        queries through this grid.

        ``model_cache`` lets the optimizer reuse per-dimension models across
        the many candidate configurations it evaluates on the *same* sample
        table; it must not be shared across different tables.
        """
        if table.num_rows == 0:
            raise IndexBuildError("cannot fit an Augmented Grid over zero rows")
        for dim in self.skeleton.dimensions:
            if dim not in table:
                raise IndexBuildError(
                    f"skeleton dimension {dim!r} is not a column of table {table.name!r}"
                )
        self._num_rows = table.num_rows
        partition_ids: dict[str, np.ndarray] = {}
        cache = model_cache if model_cache is not None else {}

        # Independent dimensions first: their CDF models and partition ids are
        # needed by both conditional dimensions and functional mappings.
        # Dimensions with a single partition need no model at all: every row
        # lands in partition 0.
        for dim in self.grid_dimensions:
            strategy = self.skeleton.strategy_for(dim)
            if not isinstance(strategy, IndependentCDFStrategy):
                continue
            count = self.config.partitions[dim]
            if count == 1:
                partition_ids[dim] = np.zeros(table.num_rows, dtype=np.int64)
                continue
            # Model resolution only needs to resolve ``count`` partition
            # boundaries, so size the knot budget proportionally.
            knots = min(self.config.cdf_knots, max(8, 4 * count))
            key = ("cdf", dim, knots)
            model = cache.get(key)
            if model is None:
                model = EmpiricalCDF(table.values(dim), max_knots=knots)
                cache[key] = model
            self._cdf_models[dim] = model
            partition_ids[dim] = model.partitions_of(table.values(dim), count)

        # Conditional dimensions: one CDF per base partition.
        for dim in self.grid_dimensions:
            strategy = self.skeleton.strategy_for(dim)
            if not isinstance(strategy, ConditionalCDFStrategy):
                continue
            base = strategy.base
            count = self.config.partitions[dim]
            if count == 1:
                partition_ids[dim] = np.zeros(table.num_rows, dtype=np.int64)
                continue
            knots = min(self.config.conditional_knots, max(4, 4 * count))
            key = ("cond", dim, base, self.config.partitions[base], knots)
            model = cache.get(key)
            if model is None:
                model = ConditionalCDF(
                    base_partitions=partition_ids[base],
                    dependent_values=table.values(dim),
                    num_base_partitions=self.config.partitions[base],
                    max_knots=knots,
                )
                cache[key] = model
            self._conditional_models[dim] = model
            partition_ids[dim] = model.partitions_of(
                table.values(dim), partition_ids[base], count
            )

        # Mapped dimensions: fit the bounded regression predicting the target.
        # With ``outlier_aware_mappings`` the §8 extension is used instead:
        # extreme rows go to a per-mapping outlier buffer so they cannot
        # inflate the error bounds (see repro.core.outliers).
        for dim in self.skeleton.mapped_dimensions:
            strategy = self.skeleton.strategy_for(dim)
            assert isinstance(strategy, FunctionalMappingStrategy)
            key = ("map", dim, strategy.target, self.config.outlier_aware_mappings)
            model = cache.get(key)
            if model is None:
                if self.config.outlier_aware_mappings:
                    model = OutlierBoundedMapping.fit(
                        mapped_values=table.values(dim),
                        target_values=table.values(strategy.target),
                        max_outlier_fraction=self.config.outlier_fraction,
                    )
                else:
                    model = BoundedLinearModel.fit(
                        mapped_values=table.values(dim),
                        target_values=table.values(strategy.target),
                    )
                cache[key] = model
            self._mapping_models[dim] = model

        # Row-major cell ids over the grid dimensions.
        self._strides = {}
        stride = 1
        for dim in reversed(self.grid_dimensions):
            self._strides[dim] = stride
            stride *= self.config.partitions[dim]
        total_cells = stride if self.grid_dimensions else 1

        cell_ids = np.zeros(table.num_rows, dtype=np.int64)
        for dim in self.grid_dimensions:
            cell_ids += partition_ids[dim] * self._strides[dim]

        permutation = np.argsort(cell_ids, kind="stable")
        sorted_cells = cell_ids[permutation]
        counts = np.bincount(sorted_cells, minlength=total_cells)
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._fitted = True
        if self.plan_cache is not None:
            # Cached spans are offsets into the previous clustered order.
            self.plan_cache.clear()
        return permutation

    def absorb(
        self, appended: Table, plan_cache: PlanCache | None = None
    ) -> tuple["AugmentedGrid", np.ndarray]:
        """Fold rows appended after this grid's rows into a new fitted grid.

        Returns the new grid plus the stable clustering permutation over the
        combined rows (this grid's rows first, ``appended`` after them);
        ``self`` is never mutated, so a caller that fails mid-merge keeps a
        consistent serving grid.

        The existing rows are *not* re-assigned: the new grid shares this
        grid's CDF and conditional-CDF models, under which their partition
        ids are unchanged, so only the appended rows are pushed through the
        models and merged into the sorted-by-cell order.  That makes absorb
        cost proportional to the appended rows (plus one O(region) stable
        merge), not to the quantile sweeps a full refit pays.  Reused CDFs
        stay correct because row assignment and query planning go through
        the same model — a stale boundary shifts cells, never answers.
        Functional mappings are the exception: their error bounds must cover
        every row they serve, so the new grid gets bound-widened copies
        (:meth:`~repro.stats.correlation.BoundedLinearModel.widened`)
        covering the appended rows' residuals.
        """
        self._require_fitted()
        assert self._offsets is not None
        num_appended = appended.num_rows
        grid = AugmentedGrid(self.config, planner=self.planner, plan_cache=plan_cache)
        grid._cdf_models = dict(self._cdf_models)
        grid._conditional_models = dict(self._conditional_models)
        grid._strides = dict(self._strides)

        partition_ids: dict[str, np.ndarray] = {}
        for dim in self.grid_dimensions:
            strategy = self.skeleton.strategy_for(dim)
            count = self.config.partitions[dim]
            if count == 1:
                partition_ids[dim] = np.zeros(num_appended, dtype=np.int64)
            elif isinstance(strategy, IndependentCDFStrategy):
                partition_ids[dim] = self._cdf_models[dim].partitions_of(
                    appended.values(dim), count
                )
            else:
                assert isinstance(strategy, ConditionalCDFStrategy)
                partition_ids[dim] = self._conditional_models[dim].partitions_of(
                    appended.values(dim), partition_ids[strategy.base], count
                )
        for dim, model in self._mapping_models.items():
            strategy = self.skeleton.strategy_for(dim)
            assert isinstance(strategy, FunctionalMappingStrategy)
            grid._mapping_models[dim] = model.widened(
                appended.values(dim), appended.values(strategy.target)
            )

        appended_cells = np.zeros(num_appended, dtype=np.int64)
        for dim in self.grid_dimensions:
            appended_cells += partition_ids[dim] * self._strides[dim]
        counts = np.diff(self._offsets)
        existing_cells = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        permutation = np.argsort(
            np.concatenate([existing_cells, appended_cells]), kind="stable"
        )
        counts = counts + np.bincount(appended_cells, minlength=counts.size)
        grid._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        grid._num_rows = self._num_rows + num_appended
        grid._fitted = True
        return grid, permutation

    # -- planning ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted or self._offsets is None:
            raise IndexBuildError("AugmentedGrid has not been fitted")

    def _effective_bounds(self, query: Query) -> dict[str, tuple[float, float]]:
        """Per-grid-dimension filter bounds after applying functional mappings.

        A filter over a mapped dimension is rewritten (via the mapping's error
        bounds) into a covering range over its target dimension and intersected
        with any direct filter over the target.
        """
        bounds: dict[str, tuple[float, float]] = {}
        for dim in self.grid_dimensions:
            predicate = query.predicate_for(dim)
            if predicate is not None:
                bounds[dim] = (float(predicate.low), float(predicate.high))
        for dim in self.skeleton.mapped_dimensions:
            predicate = query.predicate_for(dim)
            if predicate is None:
                continue
            strategy = self.skeleton.strategy_for(dim)
            assert isinstance(strategy, FunctionalMappingStrategy)
            mapped_low, mapped_high = self._mapping_models[dim].map_range(
                float(predicate.low), float(predicate.high)
            )
            if strategy.target in bounds:
                existing_low, existing_high = bounds[strategy.target]
                bounds[strategy.target] = (
                    max(existing_low, mapped_low),
                    min(existing_high, mapped_high),
                )
            else:
                bounds[strategy.target] = (mapped_low, mapped_high)
        return bounds

    def _partition_window(
        self,
        dim: str,
        bounds: dict[str, tuple[float, float]],
        assignment: dict[str, int],
    ) -> tuple[int, int]:
        """Inclusive partition-id window of ``dim`` given bounds and base assignments."""
        num_partitions = self.config.partitions[dim]
        if dim not in bounds or num_partitions == 1:
            return 0, num_partitions - 1
        low, high = bounds[dim]
        if high < low:
            return 1, 0  # empty window
        strategy = self.skeleton.strategy_for(dim)
        if isinstance(strategy, IndependentCDFStrategy):
            return self._cdf_models[dim].partition_range(low, high, num_partitions)
        assert isinstance(strategy, ConditionalCDFStrategy)
        base_partition = assignment[strategy.base]
        return self._conditional_models[dim].partition_range(
            low, high, base_partition, num_partitions
        )

    def _window_table(
        self, query: Query
    ) -> dict[str, tuple[int, int] | tuple[np.ndarray, np.ndarray]]:
        """Every grid dimension's partition window(s) for ``query``.

        Independent dimensions map to one inclusive ``(first, last)`` window.
        Conditional dimensions map to two parallel int arrays holding one
        window per base partition inside the base dimension's own window
        (empty windows are encoded as ``first > last``).  This table is the
        query's *quantized bounds*: it fully determines the planned spans, so
        it doubles as the plan-cache key material.
        """
        bounds = self._effective_bounds(query)
        windows: dict[str, tuple[int, int] | tuple[np.ndarray, np.ndarray]] = {}
        for dim in self.grid_dimensions:
            strategy = self.skeleton.strategy_for(dim)
            if isinstance(strategy, IndependentCDFStrategy):
                windows[dim] = self._partition_window(dim, bounds, {})
                continue
            assert isinstance(strategy, ConditionalCDFStrategy)
            base_window = windows[strategy.base]
            base_first, base_last = base_window  # bases are independent
            num_base = max(int(base_last) - int(base_first) + 1, 0)
            count = self.config.partitions[dim]
            if dim not in bounds or count == 1:
                firsts = np.zeros(num_base, dtype=np.int64)
                lasts = np.full(num_base, count - 1, dtype=np.int64)
            else:
                low, high = bounds[dim]
                firsts = np.empty(num_base, dtype=np.int64)
                lasts = np.empty(num_base, dtype=np.int64)
                if high < low:
                    firsts[:] = 1
                    lasts[:] = 0
                else:
                    model = self._conditional_models[dim]
                    for position, base_partition in enumerate(
                        range(int(base_first), int(base_last) + 1)
                    ):
                        first, last = model.partition_range(
                            low, high, base_partition, count
                        )
                        firsts[position] = first
                        lasts[position] = last
            windows[dim] = (firsts, lasts)
        return windows

    def _plan_key(self, query: Query, windows: dict) -> tuple:
        """Plan-cache key: query type + filtered dims + quantized bounds."""
        signature = []
        for dim in self.grid_dimensions:
            window = windows[dim]
            if isinstance(window[0], np.ndarray):
                signature.append((tuple(window[0].tolist()), tuple(window[1].tolist())))
            else:
                signature.append((int(window[0]), int(window[1])))
        return (
            query.query_type,
            tuple(sorted(query.filtered_dimensions)),
            tuple(signature),
        )

    def _vectorized_spans(
        self, query: Query, windows: dict
    ) -> list[tuple[int, int, bool]]:
        """Coalesced ``(start, stop, exact)`` spans, without per-cell work.

        The cross product of the outer dimensions' windows is expanded with
        numpy broadcasting (ragged conditional windows via ``np.repeat``); the
        innermost dimension's window then yields at most three spans per
        prefix — the two boundary cells and the exact interior run — because
        consecutive innermost cells are physically contiguous.  Output is
        byte-identical to the reference recursive planner.
        """
        assert self._offsets is not None
        offsets = self._offsets
        dims = self.grid_dimensions
        filtered_dims = set(query.filtered_dimensions)
        exactness_possible = filtered_dims.issubset(set(dims))

        if not dims:
            start, stop = int(offsets[0]), int(offsets[1])
            if stop <= start:
                return []
            return [(start, stop, exactness_possible)]

        cell_base = np.zeros(1, dtype=np.int64)
        exact = np.full(1, exactness_possible)
        part_ids: dict[str, np.ndarray] = {}

        for dim in dims[:-1]:
            stride = self._strides[dim]
            query_filters_dim = dim in filtered_dims
            strategy = self.skeleton.strategy_for(dim)
            if isinstance(strategy, IndependentCDFStrategy):
                first, last = windows[dim]
                if first > last:
                    return []
                parts = np.arange(first, last + 1, dtype=np.int64)
                width = parts.size
                if query_filters_dim:
                    interior = (parts > first) & (parts < last)
                    exact = (exact[:, None] & interior[None, :]).reshape(-1)
                else:
                    exact = np.repeat(exact, width)
                previous_size = cell_base.size
                cell_base = (cell_base[:, None] + parts[None, :] * stride).reshape(-1)
                part_ids = {d: np.repeat(a, width) for d, a in part_ids.items()}
                if dim in self._base_dims:
                    part_ids[dim] = np.tile(parts, previous_size)
            else:
                firsts_w, lasts_w = windows[dim]
                base = strategy.base
                base_first = int(windows[base][0])
                index = part_ids[base] - base_first
                firsts = firsts_w[index]
                lasts = lasts_w[index]
                lengths = np.maximum(lasts - firsts + 1, 0)
                total = int(lengths.sum())
                if total == 0:
                    return []
                repeats = np.repeat(np.arange(cell_base.size), lengths)
                run_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
                parts = np.arange(total) - run_starts[repeats] + firsts[repeats]
                if query_filters_dim:
                    exact = exact[repeats] & (parts > firsts[repeats]) & (parts < lasts[repeats])
                else:
                    exact = exact[repeats]
                cell_base = cell_base[repeats] + parts * stride
                part_ids = {d: a[repeats] for d, a in part_ids.items()}

        innermost = dims[-1]
        strategy = self.skeleton.strategy_for(innermost)
        if isinstance(strategy, IndependentCDFStrategy):
            first, last = windows[innermost]
            if first > last:
                return []
            firsts = np.full(cell_base.size, first, dtype=np.int64)
            lasts = np.full(cell_base.size, last, dtype=np.int64)
        else:
            firsts_w, lasts_w = windows[innermost]
            base = strategy.base
            base_first = int(windows[base][0])
            index = part_ids[base] - base_first
            firsts = firsts_w[index]
            lasts = lasts_w[index]
            valid = lasts >= firsts
            if not valid.all():
                cell_base = cell_base[valid]
                exact = exact[valid]
                firsts = firsts[valid]
                lasts = lasts[valid]
        if cell_base.size == 0:
            return []

        # The innermost stride is 1: cells [base+first, base+last] are one
        # contiguous physical run.  A prefix whose exactness survived emits
        # its two boundary cells inexactly and the interior exactly; any
        # other prefix is a single span.
        query_filters_innermost = innermost in filtered_dims
        low_cell = cell_base + firsts
        high_cell = cell_base + lasts + 1
        decomposed = exact & query_filters_innermost
        multi = decomposed & (lasts > firsts)

        num_prefixes = cell_base.size
        span_lo = np.zeros((num_prefixes, 3), dtype=np.int64)
        span_hi = np.zeros((num_prefixes, 3), dtype=np.int64)
        span_exact = np.zeros((num_prefixes, 3), dtype=bool)
        span_lo[:, 0] = low_cell
        span_hi[:, 0] = np.where(decomposed, low_cell + 1, high_cell)
        span_exact[:, 0] = np.where(decomposed, False, exact)
        span_lo[:, 1] = np.where(multi, low_cell + 1, 0)
        span_hi[:, 1] = np.where(multi, high_cell - 1, 0)
        span_exact[:, 1] = multi
        span_lo[:, 2] = np.where(multi, high_cell - 1, 0)
        span_hi[:, 2] = np.where(multi, high_cell, 0)

        cell_lo = span_lo.reshape(-1)
        cell_hi = span_hi.reshape(-1)
        flags = span_exact.reshape(-1)
        keep = cell_lo < cell_hi
        cell_lo, cell_hi, flags = cell_lo[keep], cell_hi[keep], flags[keep]

        row_start = offsets[cell_lo]
        row_stop = offsets[cell_hi]
        keep = row_start < row_stop
        row_start, row_stop, flags = row_start[keep], row_stop[keep], flags[keep]
        if row_start.size == 0:
            return []

        # Coalesce row-contiguous spans agreeing on exactness (the candidates
        # are already sorted and non-overlapping by construction).
        breaks = np.empty(row_start.size, dtype=bool)
        breaks[0] = True
        breaks[1:] = (row_start[1:] != row_stop[:-1]) | (flags[1:] != flags[:-1])
        first_index = np.flatnonzero(breaks)
        last_index = np.append(first_index[1:], row_start.size) - 1
        return list(
            zip(
                row_start[first_index].tolist(),
                row_stop[last_index].tolist(),
                flags[first_index].tolist(),
            )
        )

    def _enumerate_cells(self, query: Query) -> list[_CellHit]:
        """All cells intersecting ``query``, with per-cell exactness flags."""
        bounds = self._effective_bounds(query)
        filtered_dims = set(query.filtered_dimensions)
        # The exact-range optimization is only safe when every filtered
        # dimension is constrained by the grid itself (mapped dimensions are
        # not: their cells can contain rows outside the mapped filter).
        exactness_possible = filtered_dims.issubset(set(self.grid_dimensions))

        hits: list[_CellHit] = []

        def recurse(position: int, cell_base: int, assignment: dict[str, int], exact: bool) -> None:
            if position == len(self.grid_dimensions):
                hits.append(_CellHit(cell_id=cell_base, exact=exact))
                return
            dim = self.grid_dimensions[position]
            first, last = self._partition_window(dim, bounds, assignment)
            if first > last:
                return
            stride = self._strides[dim]
            query_filters_dim = dim in filtered_dims
            for partition in range(first, last + 1):
                # A partition strictly inside the window only contains values
                # inside the filter range (CDF monotonicity), so it preserves
                # exactness; boundary partitions may straddle the filter edge.
                interior = first < partition < last
                child_exact = exact and (not query_filters_dim or interior)
                assignment[dim] = partition
                recurse(position + 1, cell_base + partition * stride, assignment, child_exact)
            del assignment[dim]

        recurse(0, 0, {}, exactness_possible)
        return hits

    def _hits_to_ranges(self, hits: list[_CellHit]) -> list[tuple[int, int, bool]]:
        """Convert cell hits to coalesced relative row ranges ``(start, stop, exact)``."""
        assert self._offsets is not None
        spans: list[tuple[int, int, bool]] = []
        for hit in sorted(hits, key=lambda h: h.cell_id):
            start = int(self._offsets[hit.cell_id])
            stop = int(self._offsets[hit.cell_id + 1])
            if stop <= start:
                continue
            if spans and spans[-1][1] == start and spans[-1][2] == hit.exact:
                spans[-1] = (spans[-1][0], stop, hit.exact)
            else:
                spans.append((start, stop, hit.exact))
        return spans

    def plan(self, query: Query) -> tuple[list[tuple[int, int, bool]], QueryPlanFeatures]:
        """Plan ``query``: relative row ranges plus cost-model features."""
        self._require_fitted()
        if self.planner == "reference":
            spans = self._hits_to_ranges(self._enumerate_cells(query))
        else:
            windows = self._window_table(query)
            if self.plan_cache is not None:
                key = self._plan_key(query, windows)
                spans = self.plan_cache.get(key)
                if spans is None:
                    spans = self._vectorized_spans(query, windows)
                    self.plan_cache.put(key, spans)
            else:
                spans = self._vectorized_spans(query, windows)
        features = QueryPlanFeatures(
            num_cell_ranges=len(spans),
            points_scanned=sum(stop - start for start, stop, _ in spans),
            num_filtered_dimensions=query.num_filtered_dimensions,
        )
        return spans, features

    def ranges_for_query(self, query: Query, offset: int = 0) -> list[RowRange]:
        """Physical row ranges for ``query``, shifted by the region's ``offset``."""
        spans, _ = self.plan(query)
        return [
            RowRange(offset + start, offset + stop, exact=exact)
            for start, stop, exact in spans
        ]

    # -- reporting ---------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows this grid indexes."""
        return self._num_rows

    @property
    def num_cells(self) -> int:
        """Total number of grid cells (including empty ones)."""
        return self.config.total_cells

    @property
    def num_nonempty_cells(self) -> int:
        """Number of grid cells containing at least one row."""
        self._require_fitted()
        assert self._offsets is not None
        return int(np.count_nonzero(np.diff(self._offsets)))

    def cell_sizes(self) -> np.ndarray:
        """Number of rows in every cell (length ``num_cells``)."""
        self._require_fitted()
        assert self._offsets is not None
        return np.diff(self._offsets)

    def index_size_bytes(self) -> int:
        """Lookup table plus all per-dimension models (§5.1 space accounting)."""
        self._require_fitted()
        total = self.num_cells * 8  # lookup table: one offset per cell
        for model in self._cdf_models.values():
            total += model.size_bytes()
        for conditional in self._conditional_models.values():
            total += conditional.size_bytes()
        for mapping in self._mapping_models.values():
            total += mapping.size_bytes()
        return total

    def describe(self) -> dict:
        """Structural statistics used by Table 4 and the drill-down benchmarks."""
        return {
            "skeleton": self.skeleton.describe(),
            "partitions": dict(self.config.partitions),
            "num_cells": self.num_cells,
            "num_nonempty_cells": self.num_nonempty_cells if self._fitted else 0,
            "num_functional_mappings": self.skeleton.num_functional_mappings,
            "num_conditional_cdfs": self.skeleton.num_conditional_cdfs,
            "size_bytes": self.index_size_bytes() if self._fitted else 0,
        }
