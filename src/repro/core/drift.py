"""Workload-shift detection (§8, "Data and Workload Shift").

The paper notes that Tsunami re-optimizes quickly but "does not currently have
a way to detect when the workload characteristics have changed sufficiently to
merit re-optimization", and sketches how it could: detect when an existing
query type disappears, a new query type appears, or the relative frequencies
of query types change.  This module implements that detector as an optional
extension.

:class:`WorkloadDriftDetector` is fitted on the workload an index was
optimized for.  Feeding it a window of recently observed queries yields a
:class:`DriftReport` saying whether re-optimization is warranted and why.
Detection works on the same query-type embedding the Grid Tree optimization
uses (per-dimension filter selectivities, §4.3.1), so no extra statistics need
to be maintained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query_types import cluster_query_types, queries_by_type
from repro.query.query import Query
from repro.query.selectivity import selectivity_vector
from repro.query.workload import Workload
from repro.storage.table import Table


@dataclass(frozen=True)
class DriftReport:
    """The detector's verdict on a window of recently observed queries."""

    drifted: bool
    new_type_fraction: float
    disappeared_types: tuple[int, ...]
    frequency_shift: float
    reasons: tuple[str, ...]

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.drifted:
            return "no significant workload drift detected"
        return "workload drift detected: " + "; ".join(self.reasons)

    def as_dict(self) -> dict:
        """JSON-serializable form (used by the lifecycle benchmark reports)."""
        return {
            "drifted": self.drifted,
            "new_type_fraction": self.new_type_fraction,
            "disappeared_types": list(self.disappeared_types),
            "frequency_shift": self.frequency_shift,
            "reasons": list(self.reasons),
        }


@dataclass
class WorkloadDriftDetector:
    """Detects when the observed workload has drifted from the optimized one.

    Parameters
    ----------
    new_type_threshold:
        Fraction of observed queries that fail to match any known query type
        above which drift is declared (a "new query type appeared").
    frequency_threshold:
        Total variation distance between the old and new query-type frequency
        distributions above which drift is declared.
    match_tolerance:
        Maximum Euclidean distance (in selectivity-embedding space) for an
        observed query to be considered an instance of a known type; matches
        the DBSCAN ``eps`` used for type clustering by default.
    """

    new_type_threshold: float = 0.25
    frequency_threshold: float = 0.30
    match_tolerance: float = 0.2
    sample_rows: int = 20_000
    seed: int = 53

    _table: Table | None = field(default=None, init=False, repr=False)
    _sample: Table | None = field(default=None, init=False, repr=False)
    _type_centroids: dict[int, tuple[tuple[str, ...], np.ndarray]] = field(
        default_factory=dict, init=False, repr=False
    )
    _type_frequencies: dict[int, float] = field(default_factory=dict, init=False, repr=False)

    # -- fitting -----------------------------------------------------------------

    def fit(self, table: Table, workload: Workload) -> "WorkloadDriftDetector":
        """Learn the query types and their frequencies of the optimized workload."""
        if len(workload) == 0:
            raise ValueError("cannot fit a drift detector on an empty workload")
        self._table = table
        self._sample = table
        if table.num_rows > self.sample_rows:
            self._sample = table.sample_rows(self.sample_rows, np.random.default_rng(self.seed))
        typed = workload
        if any(query.query_type is None for query in workload):
            typed = cluster_query_types(table, workload, seed=self.seed)
        groups = queries_by_type(typed)
        total = sum(len(queries) for queries in groups.values())
        self._type_centroids = {}
        self._type_frequencies = {}
        for type_id, queries in groups.items():
            dims, centroid = self._centroid(queries)
            self._type_centroids[type_id] = (dims, centroid)
            self._type_frequencies[type_id] = len(queries) / total
        return self

    def refit(self, workload: Workload, table: Table | None = None) -> "WorkloadDriftDetector":
        """Re-learn the baseline after the index was re-optimized for ``workload``.

        Uses the previously fitted table unless a new one is given (e.g. after
        a delta-buffer merge changed the data).  The lifecycle loop calls this
        so that repeated observations compare against the workload the index
        is *now* optimized for rather than the original one.
        """
        if table is None:
            if self._table is None:
                raise ValueError("detector has not been fitted")
            table = self._table
        return self.fit(table, workload)

    def _centroid(self, queries: list[Query]) -> tuple[tuple[str, ...], np.ndarray]:
        """Mean selectivity embedding of a query type (over its filtered dims)."""
        assert self._sample is not None
        dims = tuple(sorted(queries[0].filtered_dimensions))
        embeddings = []
        for query in queries:
            vector = selectivity_vector(self._sample, query)
            embeddings.append([vector.get(dim, 1.0) for dim in dims])
        return dims, np.mean(np.array(embeddings), axis=0) if embeddings else np.zeros(len(dims))

    # -- detection ----------------------------------------------------------------

    def _match_type(self, query: Query) -> int | None:
        """The known query type this query belongs to, or ``None`` if novel."""
        assert self._sample is not None
        dims = tuple(sorted(query.filtered_dimensions))
        vector = selectivity_vector(self._sample, query)
        embedding = np.array([vector.get(dim, 1.0) for dim in dims])
        best: tuple[float, int] | None = None
        for type_id, (type_dims, centroid) in self._type_centroids.items():
            if type_dims != dims:
                continue
            distance = float(np.linalg.norm(embedding - centroid))
            if best is None or distance < best[0]:
                best = (distance, type_id)
        if best is None or best[0] > self.match_tolerance:
            return None
        return best[1]

    def observe(self, queries: Workload | list[Query]) -> DriftReport:
        """Compare a window of observed queries against the fitted workload."""
        if self._table is None:
            raise ValueError("detector has not been fitted")
        observed = list(queries)
        if not observed:
            return DriftReport(False, 0.0, (), 0.0, ())

        matches = [self._match_type(query) for query in observed]
        unmatched = sum(1 for match in matches if match is None)
        new_type_fraction = unmatched / len(observed)

        observed_frequencies = {type_id: 0.0 for type_id in self._type_frequencies}
        for match in matches:
            if match is not None:
                observed_frequencies[match] += 1.0 / len(observed)
        disappeared = tuple(
            type_id
            for type_id, old_frequency in self._type_frequencies.items()
            if old_frequency > 0.05 and observed_frequencies.get(type_id, 0.0) == 0.0
        )
        # Total variation distance between old and observed type frequencies
        # (the unmatched mass counts as frequency shift too).
        frequency_shift = 0.5 * (
            sum(
                abs(self._type_frequencies[type_id] - observed_frequencies.get(type_id, 0.0))
                for type_id in self._type_frequencies
            )
            + new_type_fraction
        )

        reasons = []
        if new_type_fraction > self.new_type_threshold:
            reasons.append(
                f"{new_type_fraction:.0%} of observed queries match no known query type"
            )
        if disappeared:
            reasons.append(f"query types {list(disappeared)} disappeared from the workload")
        if frequency_shift > self.frequency_threshold:
            reasons.append(
                f"query-type frequencies shifted by {frequency_shift:.0%} (total variation)"
            )
        return DriftReport(
            drifted=bool(reasons),
            new_type_fraction=new_type_fraction,
            disappeared_types=disappeared,
            frequency_shift=frequency_shift,
            reasons=tuple(reasons),
        )
