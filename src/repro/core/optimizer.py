"""Augmented Grid optimization: AGD and the alternatives from Fig. 12b (§5.3.2).

The optimization problem is to find the skeleton ``S`` and per-dimension
partition counts ``P`` minimizing the cost model's predicted average query
time over a sample workload.  Four optimizers are provided:

* :class:`AdaptiveGradientDescent` (AGD) — the paper's method: heuristic
  initialization of ``(S0, P0)``, then alternating numerical-gradient steps
  over ``P`` and a one-hop local search over skeletons.
* :class:`GradientDescentOnly` (GD) — same initialization, never changes the
  skeleton.
* AGD-NI — :class:`AdaptiveGradientDescent` with ``naive_init=True``: the
  initial skeleton partitions every dimension independently.
* :class:`BlackBoxOptimizer` — SciPy basin hopping over a continuous encoding
  of ``(S, P)``, as the paper's black-box comparison point.

All of them evaluate candidate configurations by fitting an Augmented Grid on
a row *sample* and planning the sample workload's queries through it, exactly
as §5.3.1 prescribes ("the number of scanned points is estimated using q,
(S, P), and a sample of D").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize as scipy_optimize

from repro.common.errors import OptimizationError
from repro.common.rng import make_rng
from repro.core.augmented_grid import DEFAULT_MAX_CELLS, AugmentedGrid, AugmentedGridConfig
from repro.core.cost_model import CostModel, QueryPlanFeatures
from repro.core.skeleton import (
    ConditionalCDFStrategy,
    FunctionalMappingStrategy,
    IndependentCDFStrategy,
    Skeleton,
)
from repro.query.query import Query
from repro.query.selectivity import average_dimension_selectivity
from repro.query.workload import Workload
from repro.stats.cdf import EmpiricalCDF
from repro.stats.correlation import BoundedLinearModel, empty_cell_fraction
from repro.storage.table import Table

#: Relative error bound below which a functional mapping is used (§5.3.2).
MAPPING_ERROR_THRESHOLD = 0.10
#: Empty-cell fraction above which a conditional CDF is used (§5.3.2).
EMPTY_CELL_THRESHOLD = 0.25
#: Partition counts used when probing the empty-cell fraction heuristic.
_PROBE_PARTITIONS = 16


@dataclass
class OptimizerResult:
    """Outcome of one optimization run."""

    config: AugmentedGridConfig
    predicted_cost: float
    iterations: int
    evaluations: int
    history: list[float] = field(default_factory=list)
    method: str = "agd"


class ConfigurationEvaluator:
    """Evaluates ``(S, P)`` candidates on a row sample with the cost model."""

    def __init__(
        self,
        table: Table,
        workload: Workload,
        cost_model: CostModel | None = None,
        sample_rows: int = 20_000,
        max_cells: int = DEFAULT_MAX_CELLS,
        max_evaluation_queries: int = 40,
        seed: int = 23,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.max_cells = max_cells
        self.full_rows = table.num_rows
        if table.num_rows > sample_rows:
            self.sample = table.sample_rows(sample_rows, make_rng(seed))
        else:
            self.sample = table
        self.scale = self.full_rows / max(self.sample.num_rows, 1)
        queries = list(workload)
        if len(queries) > max_evaluation_queries:
            rng = make_rng(seed + 1)
            chosen = sorted(
                rng.choice(len(queries), size=max_evaluation_queries, replace=False)
            )
            queries = [queries[i] for i in chosen]
        self.queries: list[Query] = queries
        self.filtered_dimensions: set[str] = {
            dim for query in self.queries for dim in query.filtered_dimensions
        }
        self.evaluations = 0
        self._cache: dict[tuple, float] = {}
        # Per-dimension models depend only on the sample, not on (S, P); reuse
        # them across the many candidate configurations evaluated below.
        self._model_cache: dict = {}

    def _cache_key(self, skeleton: Skeleton, partitions: dict[str, int]) -> tuple:
        return (skeleton, tuple(sorted(partitions.items())))

    def features_for(
        self, skeleton: Skeleton, partitions: dict[str, int]
    ) -> list[QueryPlanFeatures]:
        """Plan every workload query on a sample grid and scale the features."""
        config = AugmentedGridConfig(
            skeleton=skeleton, partitions=dict(partitions), max_cells=self.max_cells
        )
        grid = AugmentedGrid(config)
        grid.fit(self.sample, model_cache=self._model_cache)
        features = []
        for query in self.queries:
            _, raw = grid.plan(query)
            features.append(
                QueryPlanFeatures(
                    num_cell_ranges=raw.num_cell_ranges,
                    points_scanned=int(round(raw.points_scanned * self.scale)),
                    num_filtered_dimensions=raw.num_filtered_dimensions,
                )
            )
        return features

    def evaluate(self, skeleton: Skeleton, partitions: dict[str, int]) -> float:
        """Predicted average query cost of a configuration (``inf`` if infeasible)."""
        key = self._cache_key(skeleton, partitions)
        if key in self._cache:
            return self._cache[key]
        self.evaluations += 1
        try:
            features = self.features_for(skeleton, partitions)
            cost = self.cost_model.predict_average(features)
        except OptimizationError:
            cost = float("inf")
        self._cache[key] = cost
        return cost


# ---------------------------------------------------------------------------
# Initialization heuristics (§5.3.2 step 1)
# ---------------------------------------------------------------------------


def initialize_skeleton(
    table: Table,
    dimensions: list[str] | None = None,
    sample_rows: int = 10_000,
    seed: int = 29,
) -> Skeleton:
    """Heuristic initial skeleton: mappings for tight correlations, conditionals
    for pairs whose independent grid would be mostly empty, independent otherwise."""
    dims = dimensions or list(table.column_names)
    sample = table
    if table.num_rows > sample_rows:
        sample = table.sample_rows(sample_rows, make_rng(seed))

    strategies: dict[str, object] = {dim: IndependentCDFStrategy() for dim in dims}
    referenced: set[str] = set()
    values = {dim: sample.values(dim).astype(np.float64) for dim in dims}
    domains = {dim: float(max(np.ptp(values[dim]), 1.0)) for dim in dims}
    cdfs = {dim: EmpiricalCDF(values[dim], max_knots=128) for dim in dims}

    for dim in dims:
        if dim in referenced:
            continue  # targets and bases must stay independently partitioned
        best_mapping: tuple[str, float] | None = None
        best_conditional: tuple[str, float] | None = None
        for other in dims:
            if other == dim or other in strategies and not isinstance(
                strategies[other], IndependentCDFStrategy
            ):
                continue
            if other == dim:
                continue
            model = BoundedLinearModel.fit(values[dim], values[other])
            relative = model.relative_error(domains[other])
            if relative < MAPPING_ERROR_THRESHOLD and (
                best_mapping is None or relative < best_mapping[1]
            ):
                best_mapping = (other, relative)
            empty = empty_cell_fraction(
                cdfs[other].partitions_of(values[other], _PROBE_PARTITIONS),
                cdfs[dim].partitions_of(values[dim], _PROBE_PARTITIONS),
                _PROBE_PARTITIONS,
                _PROBE_PARTITIONS,
            )
            if empty > EMPTY_CELL_THRESHOLD and (
                best_conditional is None or empty > best_conditional[1]
            ):
                best_conditional = (other, empty)
        if best_mapping is not None:
            target = best_mapping[0]
            strategies[dim] = FunctionalMappingStrategy(target=target)
            referenced.add(target)
        elif best_conditional is not None:
            base = best_conditional[0]
            strategies[dim] = ConditionalCDFStrategy(base=base)
            referenced.add(base)

    # Any dimension that ended up referenced must be independent; drop the
    # non-independent strategy of a referenced dimension if a conflict slipped
    # through (possible when dim A chose B before B chose its own strategy).
    for dim in dims:
        if dim in referenced and not isinstance(strategies[dim], IndependentCDFStrategy):
            strategies[dim] = IndependentCDFStrategy()
    return Skeleton(strategies)


def initialize_partitions(
    skeleton: Skeleton,
    table: Table,
    workload: Workload,
    target_points_per_cell: int = 256,
    max_partitions_per_dimension: int = 1024,
    max_cells: int = DEFAULT_MAX_CELLS,
    sample_rows: int = 10_000,
    seed: int = 31,
) -> dict[str, int]:
    """Initial partition counts proportional to average filter selectivity (§5.3.2).

    Grid dimensions with more selective filters receive more partitions; the
    total cell count targets roughly ``num_rows / target_points_per_cell``.
    """
    grid_dims = skeleton.grid_dimensions
    if not grid_dims:
        return {}
    sample = table
    if table.num_rows > sample_rows:
        sample = table.sample_rows(sample_rows, make_rng(seed))
    queries = list(workload)
    weights = {}
    for dim in grid_dims:
        selectivity = average_dimension_selectivity(sample, queries, dim)
        weights[dim] = 1.0 / max(selectivity, 1e-3)
    target_cells = max(1, min(max_cells, table.num_rows // max(target_points_per_cell, 1)))
    log_weight_sum = sum(math.log(w) for w in weights.values())
    # Solve prod(w_i * s) = target_cells for the shared scale s.
    scale = math.exp((math.log(target_cells) - log_weight_sum) / len(grid_dims))
    partitions = {}
    for dim in grid_dims:
        count = int(round(weights[dim] * scale))
        partitions[dim] = int(np.clip(count, 1, max_partitions_per_dimension))
    return _enforce_cell_budget(partitions, max_cells)


def _enforce_cell_budget(partitions: dict[str, int], max_cells: int) -> dict[str, int]:
    """Scale partition counts down until their product fits the cell budget."""
    result = dict(partitions)
    while result and math.prod(result.values()) > max_cells:
        largest = max(result, key=result.get)
        if result[largest] == 1:
            break
        result[largest] = max(1, result[largest] // 2)
    return result


def adapt_partitions(
    partitions: dict[str, int],
    skeleton: Skeleton,
    defaults: dict[str, int],
    max_cells: int = DEFAULT_MAX_CELLS,
) -> dict[str, int]:
    """Adapt a partition vector to a (possibly different) skeleton's grid dims."""
    adapted = {}
    for dim in skeleton.grid_dimensions:
        adapted[dim] = partitions.get(dim, defaults.get(dim, 2))
    return _enforce_cell_budget(adapted, max_cells)


# ---------------------------------------------------------------------------
# Adaptive Gradient Descent (§5.3.2)
# ---------------------------------------------------------------------------


@dataclass
class AdaptiveGradientDescent:
    """The paper's AGD optimizer (set ``naive_init=True`` for the AGD-NI variant)."""

    cost_model: CostModel = field(default_factory=CostModel)
    max_iterations: int = 5
    gradient_step: float = 0.5
    min_relative_improvement: float = 1e-3
    naive_init: bool = False
    search_skeleton: bool = True
    target_points_per_cell: int = 256
    sample_rows: int = 20_000
    max_cells: int = DEFAULT_MAX_CELLS
    seed: int = 37
    method_name: str = "agd"

    def optimize(
        self,
        table: Table,
        workload: Workload,
        dimensions: list[str] | None = None,
    ) -> OptimizerResult:
        """Run the optimization and return the best configuration found."""
        if len(workload) == 0:
            raise OptimizationError("cannot optimize an Augmented Grid with no queries")
        dims = dimensions or list(table.column_names)
        evaluator = ConfigurationEvaluator(
            table,
            workload,
            cost_model=self.cost_model,
            sample_rows=self.sample_rows,
            max_cells=self.max_cells,
            seed=self.seed,
        )
        if self.naive_init:
            skeleton = Skeleton.all_independent(dims)
        else:
            skeleton = initialize_skeleton(table, dimensions=dims, seed=self.seed)
        defaults = initialize_partitions(
            Skeleton.all_independent(dims),
            table,
            workload,
            target_points_per_cell=self.target_points_per_cell,
            max_cells=self.max_cells,
            seed=self.seed,
        )
        partitions = adapt_partitions(defaults, skeleton, defaults, self.max_cells)
        cost = evaluator.evaluate(skeleton, partitions)
        history = [cost]

        for iteration in range(self.max_iterations):
            improved = False

            # Step 2: one numerical-gradient step over P.
            new_partitions, new_cost = self._gradient_step(
                evaluator, skeleton, partitions, cost
            )
            if new_cost < cost * (1.0 - self.min_relative_improvement):
                partitions, cost, improved = new_partitions, new_cost, True

            # Step 3: local search over skeletons one hop away.
            if self.search_skeleton:
                new_skeleton, new_partitions, new_cost = self._skeleton_search(
                    evaluator, skeleton, partitions, defaults, cost
                )
                if new_cost < cost * (1.0 - self.min_relative_improvement):
                    skeleton, partitions, cost = new_skeleton, new_partitions, new_cost
                    improved = True

            history.append(cost)
            if not improved:
                break

        config = AugmentedGridConfig(
            skeleton=skeleton, partitions=partitions, max_cells=self.max_cells
        )
        if self.method_name != "agd":
            method = self.method_name
        else:
            method = "agd-ni" if self.naive_init else "agd"
        return OptimizerResult(
            config=config,
            predicted_cost=cost,
            iterations=len(history) - 1,
            evaluations=evaluator.evaluations,
            history=history,
            method=method,
        )

    # -- internals ------------------------------------------------------------------

    def _gradient_step(
        self,
        evaluator: ConfigurationEvaluator,
        skeleton: Skeleton,
        partitions: dict[str, int],
        current_cost: float,
    ) -> tuple[dict[str, int], float]:
        """One descent step over the partition vector using numerical gradients."""
        grid_dims = skeleton.grid_dimensions
        if not grid_dims:
            return partitions, current_cost
        gradient: dict[str, float] = {}
        for dim in grid_dims:
            delta = max(1, int(round(partitions[dim] * 0.25)))
            upper = dict(partitions)
            upper[dim] = partitions[dim] + delta
            lower = dict(partitions)
            lower[dim] = max(1, partitions[dim] - delta)
            cost_up = evaluator.evaluate(skeleton, upper)
            cost_down = evaluator.evaluate(skeleton, lower)
            span = upper[dim] - lower[dim]
            gradient[dim] = (cost_up - cost_down) / span if span else 0.0

        norm = math.sqrt(sum(g * g for g in gradient.values()))
        if norm == 0:
            return partitions, current_cost

        step = self.gradient_step
        for _ in range(4):  # backtracking line search
            proposal = {}
            for dim in grid_dims:
                relative_move = -step * gradient[dim] / norm
                new_count = partitions[dim] * (1.0 + relative_move)
                proposal[dim] = int(np.clip(round(new_count), 1, 4096))
            proposal = _enforce_cell_budget(proposal, self.max_cells)
            cost = evaluator.evaluate(skeleton, proposal)
            if cost < current_cost:
                return proposal, cost
            step /= 2.0
        return partitions, current_cost

    def _skeleton_search(
        self,
        evaluator: ConfigurationEvaluator,
        skeleton: Skeleton,
        partitions: dict[str, int],
        defaults: dict[str, int],
        current_cost: float,
    ) -> tuple[Skeleton, dict[str, int], float]:
        """Local search over skeletons one hop away from the current skeleton.

        Only hops that change the strategy of a dimension the workload actually
        filters are evaluated: changing how an unfiltered dimension is
        partitioned cannot affect any query plan, so evaluating those
        neighbours would only waste optimization time.
        """
        best = (skeleton, partitions, current_cost)
        for candidate in skeleton.one_hop_neighbours():
            changed = [
                dim
                for dim in skeleton.dimensions
                if skeleton.strategy_for(dim) != candidate.strategy_for(dim)
            ]
            if changed and changed[0] not in evaluator.filtered_dimensions:
                continue
            candidate_partitions = adapt_partitions(
                partitions, candidate, defaults, self.max_cells
            )
            cost = evaluator.evaluate(candidate, candidate_partitions)
            if cost < best[2]:
                best = (candidate, candidate_partitions, cost)
        return best


def GradientDescentOnly(**kwargs) -> AdaptiveGradientDescent:
    """The GD baseline of Fig. 12b: AGD initialization without skeleton search."""
    kwargs.setdefault("search_skeleton", False)
    kwargs.setdefault("method_name", "gd")
    return AdaptiveGradientDescent(**kwargs)


# ---------------------------------------------------------------------------
# Black-box baseline (basin hopping, §6.6)
# ---------------------------------------------------------------------------


@dataclass
class BlackBoxOptimizer:
    """Basin-hopping over a continuous encoding of ``(S, P)`` (Fig. 12b baseline)."""

    cost_model: CostModel = field(default_factory=CostModel)
    iterations: int = 50
    target_points_per_cell: int = 256
    sample_rows: int = 20_000
    max_cells: int = DEFAULT_MAX_CELLS
    seed: int = 41

    def _decode(
        self, vector: np.ndarray, dims: list[str], defaults: dict[str, int]
    ) -> tuple[Skeleton, dict[str, int]]:
        """Decode a continuous vector into a valid (skeleton, partitions) pair."""
        num_dims = len(dims)
        strategies: dict[str, object] = {}
        referenced: set[str] = set()
        for index, dim in enumerate(dims):
            choice = int(np.clip(round(vector[index]), 0, 2 * (num_dims - 1)))
            if choice == 0 or dim in referenced:
                strategies[dim] = IndependentCDFStrategy()
                continue
            partner_index = (choice - 1) // 2
            partner = [d for d in dims if d != dim][partner_index % (num_dims - 1)]
            already = strategies.get(partner)
            if partner in referenced or (
                already is not None and not isinstance(already, IndependentCDFStrategy)
            ):
                strategies[dim] = IndependentCDFStrategy()
                continue
            if (choice - 1) % 2 == 0:
                strategies[dim] = FunctionalMappingStrategy(target=partner)
            else:
                strategies[dim] = ConditionalCDFStrategy(base=partner)
            referenced.add(partner)
        for dim in dims:
            if dim in referenced:
                strategies[dim] = IndependentCDFStrategy()
        skeleton = Skeleton(strategies)
        partitions = {}
        for index, dim in enumerate(dims):
            if dim not in skeleton.grid_dimensions:
                continue
            log_count = float(vector[num_dims + index])
            partitions[dim] = int(np.clip(round(2.0**log_count), 1, 4096))
        partitions = adapt_partitions(partitions, skeleton, defaults, self.max_cells)
        return skeleton, partitions

    def optimize(
        self,
        table: Table,
        workload: Workload,
        dimensions: list[str] | None = None,
    ) -> OptimizerResult:
        """Run basin hopping and return the best decoded configuration."""
        if len(workload) == 0:
            raise OptimizationError("cannot optimize an Augmented Grid with no queries")
        dims = dimensions or list(table.column_names)
        evaluator = ConfigurationEvaluator(
            table,
            workload,
            cost_model=self.cost_model,
            sample_rows=self.sample_rows,
            max_cells=self.max_cells,
            seed=self.seed,
        )
        skeleton0 = initialize_skeleton(table, dimensions=dims, seed=self.seed)
        defaults = initialize_partitions(
            Skeleton.all_independent(dims),
            table,
            workload,
            target_points_per_cell=self.target_points_per_cell,
            max_cells=self.max_cells,
            seed=self.seed,
        )
        partitions0 = adapt_partitions(defaults, skeleton0, defaults, self.max_cells)

        # Encode the initial configuration: strategy choice per dim, log2(P) per dim.
        x0 = np.zeros(2 * len(dims))
        for index, dim in enumerate(dims):
            strategy = skeleton0.strategy_for(dim)
            partner_list = [d for d in dims if d != dim]
            if isinstance(strategy, FunctionalMappingStrategy):
                x0[index] = 1 + 2 * partner_list.index(strategy.target)
            elif isinstance(strategy, ConditionalCDFStrategy):
                x0[index] = 2 + 2 * partner_list.index(strategy.base)
            count = partitions0.get(dim, defaults.get(dim, 2))
            x0[len(dims) + index] = math.log2(max(count, 1))

        history: list[float] = []

        def objective(vector: np.ndarray) -> float:
            skeleton, partitions = self._decode(vector, dims, defaults)
            cost = evaluator.evaluate(skeleton, partitions)
            history.append(cost)
            return cost if math.isfinite(cost) else 1e18

        result = scipy_optimize.basinhopping(
            objective,
            x0,
            niter=self.iterations,
            seed=self.seed,
            # Cap the local minimizer's function evaluations: every evaluation
            # fits a sample grid, so an unbounded Powell run would dominate the
            # optimization budget without improving the decoded configuration.
            minimizer_kwargs={
                "method": "Powell",
                "options": {"maxiter": 2, "maxfev": 40},
            },
            stepsize=1.0,
        )
        best_skeleton, best_partitions = self._decode(result.x, dims, defaults)
        best_cost = evaluator.evaluate(best_skeleton, best_partitions)
        # Basin hopping can wander off; never return something worse than the start.
        start_cost = evaluator.evaluate(skeleton0, partitions0)
        if start_cost < best_cost:
            best_skeleton, best_partitions, best_cost = skeleton0, partitions0, start_cost
        config = AugmentedGridConfig(
            skeleton=best_skeleton, partitions=best_partitions, max_cells=self.max_cells
        )
        return OptimizerResult(
            config=config,
            predicted_cost=best_cost,
            iterations=self.iterations,
            evaluations=evaluator.evaluations,
            history=history,
            method="blackbox",
        )
