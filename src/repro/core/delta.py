"""Insert support via delta buffers (§8, "Data and Workload Shift").

Tsunami as published is read-only.  The paper sketches how insertions could be
supported: "each leaf node in the Grid Tree could maintain a sibling node that
acts as a delta index [39] in which updates are buffered and periodically
merged into the main node."  :class:`DeltaBufferedIndex` implements that idea
one level up, wrapping *any* clustered index in the repository:

* Inserted rows are appended to an in-memory delta buffer kept in storage
  units (the same 64-bit integer domain the main index uses).
* Queries are answered by combining the main index's result with a scan of the
  delta buffer, so reads always see every insert immediately.
* Once the buffer exceeds ``merge_threshold`` rows (or on an explicit
  :meth:`merge` call), the buffered rows are folded into the table and the
  wrapped index is rebuilt — the "periodic merge" of the differential-file
  technique the paper cites.

The wrapper exposes the same ``execute`` / ``execute_workload`` /
``index_size_bytes`` / ``describe`` surface as :class:`ClusteredIndex`, so the
benchmark harness can measure it like any other index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.baselines.base import ClusteredIndex, QueryResult
from repro.common.errors import IndexBuildError, QueryError, SchemaError
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.column import Column
from repro.storage.scan import ScanStats
from repro.storage.table import Table

IndexFactory = Callable[[], ClusteredIndex]


@dataclass
class MergeReport:
    """Outcome of folding the delta buffer into the main index."""

    rows_merged: int
    rebuild_seconds: float
    total_rows: int


class DeltaBufferedIndex:
    """A clustered index plus an insert buffer that is periodically merged.

    Parameters
    ----------
    index_factory:
        Zero-argument callable producing a fresh instance of the wrapped
        index; used for the initial build and for every merge-triggered
        rebuild.
    merge_threshold:
        Number of buffered rows at which :meth:`insert` triggers an automatic
        merge.  Set to ``0`` to merge after every insert, or a large value to
        manage merges manually via :meth:`merge`.
    """

    name = "delta-buffered"

    def __init__(self, index_factory: IndexFactory, merge_threshold: int = 10_000) -> None:
        if merge_threshold < 0:
            raise ValueError(f"merge_threshold must be >= 0, got {merge_threshold}")
        self._index_factory = index_factory
        self.merge_threshold = merge_threshold
        self._index: ClusteredIndex | None = None
        self._workload: Workload | None = None
        self._buffer: dict[str, list[int]] = {}
        self._merges: list[MergeReport] = []

    # -- build ----------------------------------------------------------------------

    def build(self, table: Table, workload: Workload | None = None) -> "DeltaBufferedIndex":
        """Build the wrapped index over ``table`` (optionally workload-optimized)."""
        self._index = self._index_factory()
        self._index.build(table, workload)
        self._workload = workload
        self._buffer = {name: [] for name in table.column_names}
        return self

    def _require_built(self) -> ClusteredIndex:
        if self._index is None or not self._index.is_built:
            raise IndexBuildError("DeltaBufferedIndex has not been built yet")
        return self._index

    # -- inserts ----------------------------------------------------------------------

    @property
    def base_index(self) -> ClusteredIndex:
        """The wrapped clustered index (rebuilt on every merge)."""
        return self._require_built()

    @property
    def num_pending(self) -> int:
        """Number of inserted rows not yet merged into the main index."""
        if not self._buffer:
            return 0
        return len(next(iter(self._buffer.values())))

    @property
    def num_rows(self) -> int:
        """Total rows visible to queries (main table plus pending inserts)."""
        return self._require_built().table.num_rows + self.num_pending

    def insert(self, row: Mapping[str, object]) -> None:
        """Insert one row given as ``{column: user-facing value}``.

        Values are converted to the storage domain through each column's
        existing encoding; a categorical value not present in the column's
        dictionary is rejected (extending dictionaries online is out of scope
        for this extension and the paper's).
        """
        index = self._require_built()
        table = index.table
        missing = [name for name in table.column_names if name not in row]
        if missing:
            raise SchemaError(f"insert is missing values for columns {missing}")
        converted = {}
        for name in table.column_names:
            column = table.column(name)
            try:
                converted[name] = int(column.to_storage(row[name]))
            except (KeyError, ValueError, TypeError) as exc:
                raise SchemaError(
                    f"value {row[name]!r} cannot be stored in column {name!r}: {exc}"
                ) from exc
        for name, value in converted.items():
            self._buffer[name].append(value)
        if self.merge_threshold and self.num_pending >= self.merge_threshold:
            self.merge()

    def insert_many(self, rows: Sequence[Mapping[str, object]]) -> None:
        """Insert several rows (see :meth:`insert`)."""
        for row in rows:
            self.insert(row)

    # -- merging ----------------------------------------------------------------------

    def merge(self) -> MergeReport | None:
        """Fold every pending insert into the table and rebuild the main index.

        Returns the merge report, or ``None`` if the buffer was empty.
        """
        index = self._require_built()
        pending = self.num_pending
        if pending == 0:
            return None
        old_table = index.table
        start = time.perf_counter()
        columns = []
        for name in old_table.column_names:
            source = old_table.column(name)
            merged_values = np.concatenate(
                [source.values, np.asarray(self._buffer[name], dtype=np.int64)]
            )
            columns.append(
                Column(
                    name,
                    merged_values,
                    dictionary=source.dictionary,
                    scaler=source.scaler,
                )
            )
        merged_table = Table(old_table.name, columns)
        self._index = self._index_factory()
        self._index.build(merged_table, self._workload)
        self._buffer = {name: [] for name in merged_table.column_names}
        report = MergeReport(
            rows_merged=pending,
            rebuild_seconds=time.perf_counter() - start,
            total_rows=merged_table.num_rows,
        )
        self._merges.append(report)
        return report

    @property
    def merge_history(self) -> list[MergeReport]:
        """Every merge performed so far, in order."""
        return list(self._merges)

    # -- queries ----------------------------------------------------------------------

    def _scan_buffer(self, query: Query) -> tuple[float, float, int, ScanStats]:
        """Evaluate ``query`` over the delta buffer.

        Returns ``(sum, min_or_max_or_nan, matched_count, stats)`` with the
        pieces the aggregate combination in :meth:`execute` needs.
        """
        pending = self.num_pending
        stats = ScanStats(dims_accessed=query.num_filtered_dimensions)
        if pending == 0:
            return 0.0, float("nan"), 0, stats
        stats.points_scanned = pending
        stats.cell_ranges = 1
        mask = np.ones(pending, dtype=bool)
        for dim, (low, high) in query.filters().items():
            if dim not in self._buffer:
                raise QueryError(f"query filters unknown dimension {dim!r}")
            values = np.asarray(self._buffer[dim], dtype=np.int64)
            mask &= (values >= low) & (values <= high)
        matched = int(mask.sum())
        stats.rows_matched = matched
        if matched == 0 or query.aggregate == "count":
            return 0.0, float("nan"), matched, stats
        target = np.asarray(self._buffer[query.aggregate_column], dtype=np.int64)[mask]
        if query.aggregate in {"sum", "avg"}:
            return float(target.sum()), float("nan"), matched, stats
        if query.aggregate == "min":
            return 0.0, float(target.min()), matched, stats
        return 0.0, float(target.max()), matched, stats

    def execute(self, query: Query) -> QueryResult:
        """Answer ``query`` over the main index plus the delta buffer."""
        index = self._require_built()
        buffer_sum, buffer_extreme, buffer_matched, buffer_stats = self._scan_buffer(query)

        if query.aggregate == "avg":
            # Averages cannot be combined from two averages; ask the main
            # index for its sum and count separately and recombine.
            sum_query = Query(
                predicates=query.predicates,
                aggregate="sum",
                aggregate_column=query.aggregate_column,
                query_type=query.query_type,
            )
            count_query = Query(predicates=query.predicates, query_type=query.query_type)
            sum_result = index.execute(sum_query)
            count_result = index.execute(count_query)
            stats = ScanStats()
            stats.merge(sum_result.stats)
            stats.merge(buffer_stats)
            total_sum = sum_result.value + buffer_sum
            total_count = count_result.value + buffer_matched
            value = total_sum / total_count if total_count else float("nan")
            return QueryResult(value=value, stats=stats)

        main_result = index.execute(query)
        stats = ScanStats()
        stats.merge(main_result.stats)
        stats.merge(buffer_stats)
        if query.aggregate in {"count", "sum"}:
            extra = buffer_matched if query.aggregate == "count" else buffer_sum
            return QueryResult(value=main_result.value + extra, stats=stats)
        # min / max: combine, treating NaN as "no rows on that side".
        candidates = [
            candidate
            for candidate in (main_result.value, buffer_extreme)
            if not np.isnan(candidate)
        ]
        if not candidates:
            return QueryResult(value=float("nan"), stats=stats)
        combined = min(candidates) if query.aggregate == "min" else max(candidates)
        return QueryResult(value=combined, stats=stats)

    def execute_workload(self, workload: Workload) -> tuple[list[QueryResult], ScanStats]:
        """Execute every query in ``workload`` and return results plus total work."""
        results = []
        total = ScanStats()
        for query in workload:
            result = self.execute(query)
            results.append(result)
            total.merge(result.stats)
        return results, total

    # -- reporting --------------------------------------------------------------------

    def index_size_bytes(self) -> int:
        """Main index size plus the delta buffer (8 bytes per buffered value)."""
        buffered_values = self.num_pending * len(self._buffer)
        return self._require_built().index_size_bytes() + 8 * buffered_values

    def describe(self) -> dict:
        """Structural statistics of the wrapper and the current main index."""
        return {
            "name": self.name,
            "pending_inserts": self.num_pending,
            "merge_threshold": self.merge_threshold,
            "num_merges": len(self._merges),
            "total_rows": self.num_rows,
            "base_index": self._require_built().describe(),
        }
